//! Property-based integration tests: the injection machinery is total,
//! deterministic, and faithful under arbitrary fault specifications.

use proptest::prelude::*;
use swifi_campaign::runner::{execute, FailureMode};
use swifi_campaign::RunSession;
use swifi_core::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
use swifi_core::injector::{Injector, TriggerMode};
use swifi_lang::compile;
use swifi_programs::{program, Family, TestInput};
use swifi_vm::machine::{Machine, MachineConfig};

fn arb_error_op() -> impl Strategy<Value = ErrorOp> {
    prop_oneof![
        any::<u32>().prop_map(ErrorOp::Xor),
        any::<u32>().prop_map(ErrorOp::And),
        any::<u32>().prop_map(ErrorOp::Or),
        any::<i32>().prop_map(ErrorOp::Add),
        any::<u32>().prop_map(ErrorOp::Replace),
        Just(ErrorOp::ReplaceRandom),
    ]
}

fn arb_target() -> impl Strategy<Value = Target> {
    prop_oneof![
        Just(Target::InstrBus),
        Just(Target::InstrMemory),
        Just(Target::DataBusLoad),
        Just(Target::DataBusStore),
        Just(Target::LoadAddress),
        Just(Target::StoreAddress),
        (0u8..32).prop_map(Target::Gpr),
    ]
}

fn arb_firing() -> impl Strategy<Value = Firing> {
    prop_oneof![
        Just(Firing::First),
        Just(Firing::EveryTime),
        (1u64..50).prop_map(Firing::Nth)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Injecting ANY single fault anywhere in JB.team11's code never
    /// panics the host: every outcome is one of the four failure modes.
    /// (This is the safety property the whole campaign rests on.)
    #[test]
    fn arbitrary_faults_are_total(
        word_index in 0usize..600,
        op in arb_error_op(),
        target in arb_target(),
        when in arb_firing(),
        seed in any::<u64>(),
    ) {
        let p = program("JB.team11").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let addr = swifi_vm::CODE_BASE
            + ((word_index % compiled.image.code.len()) as u32) * 4;
        let spec = FaultSpec { what: op, target, trigger: Trigger::OpcodeFetch(addr), when };
        let input = TestInput::JamesB { seed: 7, line: b"property test".to_vec() };
        let (mode, _) = execute(&compiled, Family::JamesB, &input, Some(&spec), seed);
        prop_assert!(FailureMode::ALL.contains(&mode));
    }

    /// Identical (spec, input, seed) triples give identical outcomes —
    /// the determinism that makes campaigns reproducible.
    #[test]
    fn injection_is_deterministic(
        word_index in 0usize..600,
        op in arb_error_op(),
        seed in any::<u64>(),
    ) {
        let p = program("JB.team6").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let addr = swifi_vm::CODE_BASE
            + ((word_index % compiled.image.code.len()) as u32) * 4;
        let spec = FaultSpec {
            what: op,
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(addr),
            when: Firing::EveryTime,
        };
        let input = TestInput::JamesB { seed: 1, line: b"determinism".to_vec() };
        let a = execute(&compiled, Family::JamesB, &input, Some(&spec), seed);
        let b = execute(&compiled, Family::JamesB, &input, Some(&spec), seed);
        prop_assert_eq!(a, b);
    }

    /// A fault whose trigger address is never fetched stays dormant and
    /// leaves the outcome untouched.
    #[test]
    fn dormant_faults_do_not_perturb(op in arb_error_op(), seed in any::<u64>()) {
        let p = program("JB.team11").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        // Trigger far past the code segment (data area): never fetched.
        let addr = swifi_vm::CODE_BASE + compiled.image.code.len() as u32 * 4 + 0x400;
        let spec = FaultSpec {
            what: op,
            target: Target::DataBusStore,
            trigger: Trigger::OpcodeFetch(addr),
            when: Firing::EveryTime,
        };
        let input = TestInput::JamesB { seed: 2, line: b"dormant".to_vec() };
        let (mode, fired) = execute(&compiled, Family::JamesB, &input, Some(&spec), seed);
        prop_assert!(!fired);
        prop_assert_eq!(mode, FailureMode::Correct);
    }

    /// XOR-mask instruction-bus faults are self-inverse: applying the mask
    /// twice (two identical faults on the same fetch) restores behaviour.
    #[test]
    fn xor_faults_cancel_pairwise(mask in 1u32..=u32::MAX, word_index in 0usize..100) {
        let p = program("JB.team11").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let addr = swifi_vm::CODE_BASE
            + ((word_index % compiled.image.code.len()) as u32) * 4;
        let mk_spec = || FaultSpec {
            what: ErrorOp::Xor(mask),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(addr),
            when: Firing::EveryTime,
        };
        let input = TestInput::JamesB { seed: 3, line: b"xor".to_vec() };
        let run = |specs: Vec<FaultSpec>| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&compiled.image);
            m.set_input(input.to_tape());
            let mut inj = Injector::new(specs, TriggerMode::IntrusiveTraps, 0).unwrap();
            inj.prepare(&mut m).unwrap();
            m.run(&mut inj).output().to_vec()
        };
        let clean = run(vec![]);
        let double = run(vec![mk_spec(), mk_spec()]);
        prop_assert_eq!(clean, double);
    }

    /// Warm reboots are invisible: replaying a (fault, input, seed) triple
    /// through a *reused* [`RunSession`] — after earlier runs have dirtied
    /// memory, consumed input, and (for memory-resident faults) patched the
    /// code image in place — gives exactly the outcome a cold boot gives.
    /// This is the invariant the whole snapshot/restore engine rests on.
    #[test]
    fn warm_reboot_matches_cold_boot(
        word_index in 0usize..600,
        op in arb_error_op(),
        target in arb_target(),
        when in arb_firing(),
        seed in any::<u64>(),
    ) {
        let p = program("JB.team11").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let addr = swifi_vm::CODE_BASE
            + ((word_index % compiled.image.code.len()) as u32) * 4;
        let spec = FaultSpec { what: op, target, trigger: Trigger::OpcodeFetch(addr), when };
        // A guaranteed memory-resident fault used to deliberately scar the
        // session between measured runs: `prepare()` patches the code image,
        // so restore must undo real damage, not just register state.
        let scar = FaultSpec {
            what: ErrorOp::Xor(0xFFFF_FFFF),
            target: Target::InstrMemory,
            trigger: Trigger::OpcodeFetch(addr),
            when: Firing::First,
        };
        let inputs = [
            TestInput::JamesB { seed: 7, line: b"warm boot one".to_vec() },
            TestInput::JamesB { seed: 9, line: b"warm boot two".to_vec() },
        ];
        let mut session = RunSession::new(&compiled, Family::JamesB);
        for input in &inputs {
            // Dirty the session: a clean run, then a code-patching run.
            let _ = session.run(input, None, seed);
            let _ = session.run(input, Some(&scar), seed ^ 0xA5A5);
            let warm = session.run(input, Some(&spec), seed);
            let cold = execute(&compiled, Family::JamesB, input, Some(&spec), seed);
            prop_assert_eq!(warm, cold);
        }
    }

    /// Differential property for the translation cache: a warm session on
    /// the cached interpreter and a warm session on the seed
    /// decode-every-fetch reference interpreter classify every (fault,
    /// input, seed) triple identically — including code-patch faults
    /// (`Target::InstrMemory`) applied *mid-campaign* through
    /// [`Injector`]'s reset/prepare path after the cache is already warm,
    /// which is exactly where a stale decoded line would diverge.
    #[test]
    fn cached_interpreter_matches_reference(
        word_index in 0usize..600,
        op in arb_error_op(),
        target in arb_target(),
        when in arb_firing(),
        seed in any::<u64>(),
    ) {
        let p = program("JB.team11").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let addr = swifi_vm::CODE_BASE
            + ((word_index % compiled.image.code.len()) as u32) * 4;
        let spec = FaultSpec { what: op, target, trigger: Trigger::OpcodeFetch(addr), when };
        // Guaranteed code patch: prepare() pokes the flipped word straight
        // into instruction memory while the session's decode cache still
        // holds lines built by the preceding clean run.
        let patch = FaultSpec {
            what: ErrorOp::Xor(0x0000_FFFF),
            target: Target::InstrMemory,
            trigger: Trigger::OpcodeFetch(addr),
            when: Firing::First,
        };
        let input = TestInput::JamesB { seed: 4, line: b"differential".to_vec() };
        // Three warm sessions, one per fetch-pipeline tier: translated
        // blocks (the default), predecoded lines only, and the seed
        // decode-every-fetch reference.
        let mut blocks = RunSession::new(&compiled, Family::JamesB);
        let mut cached = RunSession::new(&compiled, Family::JamesB);
        cached.set_block_cache(false);
        let mut reference = RunSession::new(&compiled, Family::JamesB);
        reference.set_reference_interp(true);
        let schedule: [(Option<&FaultSpec>, u64); 4] = [
            (None, seed),                       // warms the decode cache
            (Some(&patch), seed ^ 0x5A5A),      // mid-campaign code patch
            (Some(&spec), seed),                // the random fault under test
            (None, seed ^ 1),                   // restore must be clean again
        ];
        for (i, (fault, s)) in schedule.iter().enumerate() {
            let blk = blocks.run(&input, *fault, *s);
            let warm = cached.run(&input, *fault, *s);
            let refr = reference.run(&input, *fault, *s);
            prop_assert_eq!(warm, refr, "run {} diverged (lines vs reference)", i);
            prop_assert_eq!(blk, refr, "run {} diverged (blocks vs reference)", i);
            prop_assert_eq!(blocks.last_retired(), reference.last_retired(),
                "run {} retired diverged", i);
        }
    }

    /// Fetch-time corruption (`Target::InstrBus`) lives on the slow path:
    /// the armed trigger PC is pinned out of the decode cache, so
    /// `on_fetch` still sees — and may corrupt — the fetched word. The raw
    /// [`swifi_vm::machine::RunOutcome`], fired flag, and retired
    /// instruction count must all be bit-identical across interpreters.
    #[test]
    fn fetch_corruption_identical_across_interpreters(
        word_index in 0usize..600,
        op in arb_error_op(),
        when in arb_firing(),
        seed in any::<u64>(),
    ) {
        let p = program("JB.team6").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let addr = swifi_vm::CODE_BASE
            + ((word_index % compiled.image.code.len()) as u32) * 4;
        let spec = FaultSpec {
            what: op,
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(addr),
            when,
        };
        let input = TestInput::JamesB { seed: 6, line: b"fetch corruption".to_vec() };
        let run = |reference: bool| {
            let mut m = Machine::new(MachineConfig::default());
            m.set_reference_interp(reference);
            m.load(&compiled.image);
            m.set_input(input.to_tape());
            let mut inj = Injector::new(vec![spec], TriggerMode::IntrusiveTraps, seed).unwrap();
            inj.prepare(&mut m).unwrap();
            let out = m.run(&mut inj);
            (out, inj.any_fired(), m.retired())
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// The prefix-fork oracle: for arbitrary (fault, firing policy, seed)
    /// triples — including `Firing::Nth` occurrences that land before,
    /// on, and past the golden run's trigger count — a fork-enabled
    /// session produces *bit-identical* failure-mode classifications,
    /// fired flags, and full-run retired-instruction counts vs both a
    /// fork-free warm session and a cold boot. Each triple runs twice on
    /// the forked session so both fork paths are exercised: the first
    /// pass captures (or finishes as the golden run), the second resumes
    /// from the cached snapshot (or dormant-short-circuits).
    #[test]
    fn forked_runs_match_full_runs(
        word_index in 0usize..600,
        op in arb_error_op(),
        target in arb_target(),
        when in arb_firing(),
        seed in any::<u64>(),
    ) {
        let p = program("JB.team11").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let addr = swifi_vm::CODE_BASE
            + ((word_index % compiled.image.code.len()) as u32) * 4;
        let spec = FaultSpec { what: op, target, trigger: Trigger::OpcodeFetch(addr), when };
        let input = TestInput::JamesB { seed: 5, line: b"prefix fork".to_vec() };
        let mut full = RunSession::new(&compiled, Family::JamesB);
        let mut forked = RunSession::new(&compiled, Family::JamesB);
        forked.set_prefix_cache(Some(swifi_campaign::PrefixCache::shared()));

        let want = full.run(&input, Some(&spec), seed);
        let want_retired = full.last_retired();
        let cold = execute(&compiled, Family::JamesB, &input, Some(&spec), seed);
        prop_assert_eq!(want, cold, "warm/cold baseline diverged");
        for pass in ["capture", "fork"] {
            let got = forked.run(&input, Some(&spec), seed);
            prop_assert_eq!(got, want, "{} pass diverged", pass);
            prop_assert_eq!(
                forked.last_retired(), want_retired,
                "{} pass retired-count diverged", pass
            );
        }
    }

    /// The trace-guided pruning oracle: for arbitrary (fault, firing
    /// policy, seed) triples, a pruning session — def-use watch list
    /// armed, provable-dormancy skips and outcome-equivalence collapse
    /// live, sampling oracle at 100% — classifies identically to an
    /// unpruned session, with identical fired flags and retired counts.
    /// Each triple runs twice on the pruned side: the first pass gathers
    /// the evidence (traced clean run, collapse-class recording), the
    /// second answers from proof (dormant skip or collapse hit). The
    /// 100% sampling re-executes every skipped run in full and asserts
    /// the predicted outcome, so a single misprediction fails the test.
    #[test]
    fn pruned_runs_match_unpruned_runs(
        word_index in 0usize..600,
        op in arb_error_op(),
        target in arb_target(),
        when in arb_firing(),
        seed in any::<u64>(),
    ) {
        let p = program("JB.team11").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let addr = swifi_vm::CODE_BASE
            + ((word_index % compiled.image.code.len()) as u32) * 4;
        let spec = FaultSpec { what: op, target, trigger: Trigger::OpcodeFetch(addr), when };
        let input = TestInput::JamesB { seed: 8, line: b"trace prune".to_vec() };

        let mut plain = RunSession::new(&compiled, Family::JamesB);
        plain.set_prefix_cache(Some(swifi_campaign::PrefixCache::shared()));
        let cache = swifi_campaign::PrefixCache::shared();
        cache.set_watch_pcs(vec![addr]);
        let mut pruned = RunSession::new(&compiled, Family::JamesB);
        pruned.set_prefix_cache(Some(cache));
        pruned.set_prune(true, 100);

        let want = plain.run(&input, Some(&spec), seed);
        let want_retired = plain.last_retired();
        for pass in ["evidence", "memoized"] {
            let got = pruned.run(&input, Some(&spec), seed);
            prop_assert_eq!(got, want, "{} pass diverged", pass);
            prop_assert_eq!(
                pruned.last_retired(), want_retired,
                "{} pass retired-count diverged", pass
            );
        }
        let stats = pruned.stats();
        prop_assert_eq!(stats.prune_sample_mispredicts, 0, "sampling oracle misprediction");
    }

    /// The generated error sets scale linearly with chosen locations: the
    /// §6.3 accounting identity (`faults = Σ applicable types`).
    #[test]
    fn error_set_accounting(n_assign in 0usize..12, n_check in 0usize..12, seed in any::<u64>()) {
        let p = program("C.team8").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let set = swifi_core::locations::generate_error_set(
            &compiled.debug, n_assign, n_check, seed);
        prop_assert_eq!(
            set.assign_faults.len(),
            set.plan.chosen_assign.len() * 4,
            "four error types per assignment location"
        );
        let expected: usize = set
            .plan
            .chosen_check
            .iter()
            .map(|&i| compiled.debug.checks[i].mutations.len())
            .sum();
        prop_assert_eq!(set.check_faults.len(), expected);
    }
}
