//! Integration tests for the fault-tolerant campaign engine: JSONL
//! checkpoint/resume, the per-run wall-clock watchdog, and
//! panic-to-`Abnormal` recovery. The seed-determinism report equality
//! (`ProgramCampaign`/`Throughput` `PartialEq`) is the oracle throughout:
//! a resumed campaign must be indistinguishable from an uninterrupted one.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;
use swifi_campaign::section6::{class_campaign_with, CampaignScale};
use swifi_campaign::shard::{merge_checkpoints, merged_path, run_sharded, shard_paths};
use swifi_campaign::source::{source_campaign_with, SourceScale};
use swifi_campaign::{CampaignOptions, Shard};
use swifi_programs::program;
use swifi_trace::{Telemetry, TelemetryConfig};

/// Campaign options with every telemetry pillar live (trace events,
/// metrics registry, guest-PC profiler) plus a non-default watchdog poll
/// interval — the most-instrumented configuration a CLI user can reach.
fn instrumented() -> CampaignOptions {
    CampaignOptions {
        telemetry: Some(Telemetry::shared(TelemetryConfig {
            trace: true,
            metrics: true,
            profile: true,
            ..TelemetryConfig::default()
        })),
        watchdog_poll: Some(16),
        ..CampaignOptions::default()
    }
}

fn temp_path(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "swifi-resilience-{tag}-{}-{n}.jsonl",
        std::process::id()
    ))
}

/// Keep the checkpoint header plus the first `keep` records, then append a
/// torn partial line — the on-disk state a `kill -9` mid-append leaves.
fn truncate_checkpoint(path: &PathBuf, keep: usize) {
    let text = std::fs::read_to_string(path).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap().to_string();
    let kept: Vec<&str> = lines.take(keep).collect();
    let mut f = std::fs::File::create(path).unwrap();
    writeln!(f, "{header}").unwrap();
    for l in kept {
        writeln!(f, "{l}").unwrap();
    }
    write!(f, "{{\"phase\":\"assign\",\"ind").unwrap();
}

#[test]
fn killed_campaign_resumes_to_an_equal_report() {
    let target = program("JB.team11").unwrap();
    let scale = CampaignScale {
        inputs_per_fault: 2,
    };
    let seed = 41;

    // The reference: one uninterrupted run, no checkpoint at all.
    let uninterrupted =
        class_campaign_with(&target, scale, seed, &CampaignOptions::default()).unwrap();

    // The same campaign recorded to a checkpoint, then "killed": only the
    // first 7 completed records (plus a torn partial line) survive.
    let path = temp_path("resume");
    let full = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&path, false),
    )
    .unwrap();
    assert_eq!(full, uninterrupted, "checkpointing must not perturb");
    truncate_checkpoint(&path, 7);

    // Resume: the 7 recorded faults replay from disk, the rest re-run.
    let resumed = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&path, true),
    )
    .unwrap();
    assert_eq!(resumed, uninterrupted, "resumed report must be equal");

    // A second resume replays everything and still folds to equality.
    let replayed = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&path, true),
    )
    .unwrap();
    assert_eq!(replayed, uninterrupted);

    std::fs::remove_file(&path).ok();
}

#[test]
fn killed_campaign_resumes_equally_under_either_prune_flag() {
    let target = program("JB.team11").unwrap();
    let scale = CampaignScale {
        inputs_per_fault: 2,
    };
    let seed = 43;

    // The reference: pruning disabled, no checkpoint. Pruning is an
    // execution strategy — every comparison below must fold to this.
    let unpruned = CampaignOptions {
        no_prune: true,
        ..CampaignOptions::default()
    };
    let reference = class_campaign_with(&target, scale, seed, &unpruned).unwrap();

    // Pruning on with the sampling oracle at 100%: every dormant skip
    // and collapse hit re-executes in full and checks the prediction.
    let sampled = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions {
            prune_sample: 100,
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert_eq!(sampled, reference, "pruning must not perturb the report");
    assert!(
        sampled.throughput.prune_sample_checks > 0,
        "oracle checked nothing"
    );
    assert_eq!(
        sampled.throughput.prune_sample_mispredicts, 0,
        "sampling oracle caught a misprediction"
    );

    // Kill+resume across the flag, both directions: the checkpoint
    // records outcomes, never the execution strategy, so a campaign
    // checkpointed with pruning on resumes equally with it off — and
    // vice versa.
    let path = temp_path("prune-resume");
    let _ = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&path, false),
    )
    .unwrap();
    truncate_checkpoint(&path, 5);
    let resumed_off = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions {
            no_prune: true,
            ..CampaignOptions::with_checkpoint(&path, true)
        },
    )
    .unwrap();
    assert_eq!(resumed_off, reference, "pruned checkpoint, unpruned resume");

    let mirror = temp_path("prune-resume-mirror");
    let _ = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions {
            no_prune: true,
            ..CampaignOptions::with_checkpoint(&mirror, false)
        },
    )
    .unwrap();
    truncate_checkpoint(&mirror, 5);
    let resumed_on = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&mirror, true),
    )
    .unwrap();
    assert_eq!(resumed_on, reference, "unpruned checkpoint, pruned resume");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&mirror).ok();
}

#[test]
fn killed_source_campaign_resumes_to_an_equal_report() {
    // The same kill/resume contract holds for the source-mutation driver:
    // a campaign killed mid-append and resumed must report byte-equal to
    // an uninterrupted one (same Throughput-equality oracle — mutant
    // selection, compilation and run accounting all replay from disk).
    let target = program("JB.team11").unwrap();
    let scale = SourceScale {
        mutant_budget: 6,
        inputs_per_mutant: 2,
    };
    let seed = 41;

    let uninterrupted =
        source_campaign_with(&target, scale, seed, &CampaignOptions::default()).unwrap();

    let path = temp_path("source-resume");
    let full = source_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&path, false),
    )
    .unwrap();
    assert_eq!(full, uninterrupted, "checkpointing must not perturb");
    truncate_checkpoint(&path, 3);

    // Resume: 3 mutants replay from disk, the rest recompile and re-run.
    let resumed = source_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&path, true),
    )
    .unwrap();
    assert_eq!(resumed, uninterrupted, "resumed report must be equal");

    // A second resume replays everything and still folds to equality.
    let replayed = source_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&path, true),
    )
    .unwrap();
    assert_eq!(replayed, uninterrupted);

    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_under_a_different_seed_is_refused() {
    let target = program("JB.team11").unwrap();
    let scale = CampaignScale {
        inputs_per_fault: 1,
    };
    let path = temp_path("seed-mismatch");
    class_campaign_with(
        &target,
        scale,
        3,
        &CampaignOptions::with_checkpoint(&path, false),
    )
    .unwrap();
    let err = class_campaign_with(
        &target,
        scale,
        4,
        &CampaignOptions::with_checkpoint(&path, true),
    )
    .unwrap_err();
    assert!(err.contains("different campaign"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn watchdog_zero_budget_classifies_every_run_as_hang() {
    let target = program("JB.team11").unwrap();
    let scale = CampaignScale {
        inputs_per_fault: 2,
    };
    let opts = CampaignOptions {
        watchdog: Some(Duration::ZERO),
        ..CampaignOptions::default()
    };
    let c = class_campaign_with(&target, scale, 9, &opts).unwrap();
    // Every run blew its (zero) wall-clock budget before retiring an
    // instruction: all hangs, nothing fired, nothing abnormal.
    assert!(c.total_runs > 0);
    assert_eq!(c.assign_modes.hang, c.assign_modes.total());
    assert_eq!(c.check_modes.hang, c.check_modes.total());
    assert_eq!(c.dormant_runs, c.total_runs);
    assert!(c.abnormal.is_empty());

    // A generous watchdog leaves the report identical to no watchdog.
    let generous = CampaignOptions {
        watchdog: Some(Duration::from_secs(3600)),
        ..CampaignOptions::default()
    };
    let a = class_campaign_with(&target, scale, 9, &generous).unwrap();
    let b = class_campaign_with(&target, scale, 9, &CampaignOptions::default()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn mid_campaign_panic_becomes_one_abnormal_record() {
    let target = program("JB.team6").unwrap();
    let scale = CampaignScale {
        inputs_per_fault: 2,
    };
    let seed = 17;
    let clean = class_campaign_with(&target, scale, seed, &CampaignOptions::default()).unwrap();

    // Chaos: the worker processing campaign item #3 panics mid-campaign.
    let opts = CampaignOptions {
        chaos_panic: Some(3),
        ..CampaignOptions::default()
    };
    let c = class_campaign_with(&target, scale, seed, &opts).unwrap();
    assert_eq!(c.abnormal.len(), 1, "exactly one abnormal record");
    assert_eq!(c.abnormal[0].phase, "assign");
    assert_eq!(c.abnormal[0].index, 3);
    assert!(
        c.abnormal[0].message.contains("chaos-panic"),
        "{:?}",
        c.abnormal[0]
    );
    assert!(!c.abnormal[0].detail.is_empty());
    // Completed results are NOT discarded: everything except the panicked
    // fault's runs is still accounted for.
    assert_eq!(
        c.total_runs,
        clean.total_runs - scale.inputs_per_fault as u64
    );
    assert_eq!(c.check_modes, clean.check_modes, "other phase untouched");
}

#[test]
fn abnormal_records_replay_on_resume() {
    let target = program("JB.team6").unwrap();
    let scale = CampaignScale {
        inputs_per_fault: 2,
    };
    let seed = 23;
    let path = temp_path("abnormal-replay");
    let chaos = CampaignOptions {
        chaos_panic: Some(2),
        ..CampaignOptions::with_checkpoint(&path, false)
    };
    let first = class_campaign_with(&target, scale, seed, &chaos).unwrap();
    assert_eq!(first.abnormal.len(), 1);

    // Resume with chaos DISABLED: the abnormal record replays from disk
    // (nothing re-runs), so the report still carries it — a resumed
    // campaign is equal to the uninterrupted one, abnormal bucket and all.
    let resumed = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&path, true),
    )
    .unwrap();
    assert_eq!(resumed, first);
    assert_eq!(resumed.abnormal, first.abnormal);

    std::fs::remove_file(&path).ok();
}

#[test]
fn telemetry_is_a_pure_observer_of_class_campaigns() {
    // The no-op contract, in-process: a campaign with every telemetry
    // pillar live must report *equal* (run counts, failure-mode tables,
    // abnormal records — everything `PartialEq` covers) to the same seed
    // with telemetry absent. The trace/metrics/profile sinks observe;
    // they never steer.
    let target = program("JB.team11").unwrap();
    let scale = CampaignScale {
        inputs_per_fault: 2,
    };
    let seed = 41;

    let plain = class_campaign_with(&target, scale, seed, &CampaignOptions::default()).unwrap();

    let opts = instrumented();
    let hub = opts.telemetry.clone().unwrap();
    let traced = class_campaign_with(&target, scale, seed, &opts).unwrap();

    assert_eq!(traced, plain, "telemetry must not perturb the report");
    assert_eq!(
        traced.throughput.equality_key(),
        plain.throughput.equality_key()
    );

    // And the instrumentation genuinely ran: events were buffered, the
    // run-span count matches the report's run count, metrics accumulated,
    // and the profiler attributed samples.
    assert!(hub.event_count() > 0, "trace events must have been emitted");
    let trace = hub.render_chrome_trace();
    let summary = swifi_trace::validate_chrome_trace(&trace).unwrap();
    assert_eq!(summary.runs, plain.total_runs as usize);
    assert!(summary.phases >= 2, "assign + check phase spans expected");
    let metrics = hub.metrics_json();
    assert!(metrics.contains("\"run_latency_us\""), "{metrics}");
    assert!(metrics.contains("\"retired_instrs_per_run\""), "{metrics}");
    assert!(
        hub.profile_snapshot().total() > 0,
        "profiler sampled no PCs"
    );
}

#[test]
fn telemetry_is_a_pure_observer_of_source_campaigns() {
    let target = program("JB.team11").unwrap();
    let scale = SourceScale {
        mutant_budget: 6,
        inputs_per_mutant: 2,
    };
    let seed = 41;

    let plain = source_campaign_with(&target, scale, seed, &CampaignOptions::default()).unwrap();

    let opts = instrumented();
    let hub = opts.telemetry.clone().unwrap();
    let traced = source_campaign_with(&target, scale, seed, &opts).unwrap();

    assert_eq!(traced, plain, "telemetry must not perturb the report");
    assert!(hub.event_count() > 0, "trace events must have been emitted");
}

#[test]
fn resume_under_tracing_matches_uninterrupted_run() {
    // Crash-resilience and observability compose: a campaign checkpointed
    // with full telemetry on, killed, then *resumed* with full telemetry
    // on must still fold to the same report as an uninterrupted,
    // uninstrumented run. Replayed-from-disk records skip execution, so
    // the resumed trace is smaller — but the report cannot differ.
    let target = program("JB.team11").unwrap();
    let scale = CampaignScale {
        inputs_per_fault: 2,
    };
    let seed = 41;

    let uninterrupted =
        class_campaign_with(&target, scale, seed, &CampaignOptions::default()).unwrap();

    let path = temp_path("trace-resume");
    let record = CampaignOptions {
        checkpoint: Some(path.clone()),
        ..instrumented()
    };
    let full = class_campaign_with(&target, scale, seed, &record).unwrap();
    assert_eq!(
        full, uninterrupted,
        "tracing + checkpointing must not perturb"
    );
    truncate_checkpoint(&path, 7);

    let resume = CampaignOptions {
        checkpoint: Some(path.clone()),
        resume: true,
        ..instrumented()
    };
    let hub = resume.telemetry.clone().unwrap();
    let resumed = class_campaign_with(&target, scale, seed, &resume).unwrap();
    assert_eq!(resumed, uninterrupted, "traced resume must be equal");
    assert!(hub.event_count() > 0, "resume still traces re-run items");

    std::fs::remove_file(&path).ok();
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = temp_path(tag).with_extension("d");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The shard-equality oracle under arbitrary (seed, shard count):
    /// splitting a class campaign into N shard passes and folding the
    /// merged checkpoint reports *equal* — everything `PartialEq`
    /// covers — to the uninterrupted single-process run. This is the
    /// same oracle `scripts/server_smoke.sh` checks across real worker
    /// processes.
    #[test]
    fn sharded_campaigns_fold_to_the_direct_report(
        seed in 0u64..1_000_000,
        count in 1u64..6,
    ) {
        let target = program("JB.team11").unwrap();
        let scale = CampaignScale { inputs_per_fault: 1 };
        let direct =
            class_campaign_with(&target, scale, seed, &CampaignOptions::default()).unwrap();
        let dir = temp_dir("shard-prop");
        let (sharded, summary) = run_sharded(
            &CampaignOptions::default(),
            count,
            &dir,
            "prop",
            |opts| class_campaign_with(&target, scale, seed, opts),
        )
        .unwrap();
        prop_assert_eq!(&sharded, &direct, "seed {} x {} shards", seed, count);
        prop_assert_eq!(summary.duplicates, 0);
        prop_assert_eq!(summary.shards_missing, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn killed_shard_campaign_recovers_through_merge_and_resume() {
    // The server's worker-loss story, driven at the library layer: of
    // three shard passes one is "killed" (its checkpoint deleted) and
    // another is torn mid-append. The merge tolerates both, and the
    // final resume pass re-executes exactly the lost work — the report
    // is equal to an uninterrupted run's.
    let target = program("JB.team11").unwrap();
    let scale = CampaignScale {
        inputs_per_fault: 2,
    };
    let seed = 61;
    let direct = class_campaign_with(&target, scale, seed, &CampaignOptions::default()).unwrap();

    let dir = temp_dir("shard-kill");
    let paths = shard_paths(&dir, "kill", 3);
    for (k, path) in paths.iter().enumerate() {
        let opts = CampaignOptions {
            checkpoint: Some(path.clone()),
            shard: Some(Shard::new(k as u64, 3).unwrap()),
            ..CampaignOptions::default()
        };
        class_campaign_with(&target, scale, seed, &opts).unwrap();
    }
    std::fs::remove_file(&paths[1]).unwrap();
    truncate_checkpoint(&paths[2], 1);

    let merged = merged_path(&dir, "kill");
    let summary = merge_checkpoints(&paths, &merged).unwrap();
    assert_eq!(summary.shards_missing, 1, "the killed shard");
    assert_eq!(summary.shards_read, 2);

    let resumed = class_campaign_with(
        &target,
        scale,
        seed,
        &CampaignOptions::with_checkpoint(&merged, true),
    )
    .unwrap();
    assert_eq!(resumed, direct, "lost shards must cost nothing but time");
    std::fs::remove_dir_all(&dir).ok();
}
