//! Cross-crate integration: metrics over the vendored programs, ODC
//! apportioning driving location selection, and debug-info consistency
//! between the compiler and the injector.

use swifi_core::locations::{choose_locations, generate_error_set, restrict_to_functions};
use swifi_lang::compile;
use swifi_lang::parser::parse;
use swifi_metrics::{allocate, measure, AllocationStrategy};
use swifi_odc::{DefectType, FieldDistribution};
use swifi_programs::all_programs;

/// Metrics over the roster reproduce the Table 2 feature matrix.
#[test]
fn metrics_match_roster_features() {
    for p in all_programs() {
        let ast = parse(p.source_correct).unwrap();
        let m = measure(p.source_correct, &ast);
        match p.name {
            "C.team1" | "C.team10" => assert!(m.any_recursive(), "{} recursive", p.name),
            "C.team9" => assert!(m.uses_dynamic_structures()),
            "SOR" => {
                assert!(!m.any_recursive());
                assert!(m.functions.len() >= 15, "SOR is heavily decomposed");
            }
            _ => {}
        }
        assert!(m.loc > 0);
        assert!(
            m.total_cyclomatic() >= m.functions.len(),
            "every function is at least 1"
        );
    }
}

/// SOR is the largest program, as in the paper's Table 2.
#[test]
fn sor_is_largest() {
    let locs: Vec<(String, usize)> = all_programs()
        .iter()
        .map(|p| {
            let ast = parse(p.source_correct).unwrap();
            (p.name.to_string(), measure(p.source_correct, &ast).loc)
        })
        .collect();
    let sor = locs.iter().find(|(n, _)| n == "SOR").unwrap().1;
    for (name, loc) in &locs {
        assert!(name == "SOR" || *loc < sor, "{name} ({loc}) >= SOR ({sor})");
    }
}

/// Debug-info sites always point at real instructions of the right shape
/// (stores for assignments, branches for checks) in every program.
#[test]
fn debug_sites_point_at_correct_instructions() {
    use swifi_vm::isa::{decode, Instr};
    for p in all_programs() {
        let compiled = compile(p.source_correct).unwrap();
        let word_at = |addr: u32| compiled.image.code[((addr - swifi_vm::CODE_BASE) / 4) as usize];
        for a in &compiled.debug.assigns {
            let i = decode(word_at(a.store_addr)).expect("valid instruction");
            match (a.is_byte, i) {
                (true, Instr::Stb { .. }) | (false, Instr::Stw { .. }) => {}
                other => panic!("{}: assignment site is {other:?}", p.name),
            }
        }
        for c in &compiled.debug.checks {
            let i = decode(word_at(c.branch_addr)).expect("valid instruction");
            assert!(
                matches!(i, Instr::Bc { .. }),
                "{}: check site at {:#x} is `{}`",
                p.name,
                c.branch_addr,
                i
            );
        }
    }
}

/// Every debug site belongs to the function debug info says it does.
#[test]
fn sites_lie_within_their_functions() {
    for p in all_programs() {
        let compiled = compile(p.source_correct).unwrap();
        for a in &compiled.debug.assigns {
            let f = compiled
                .debug
                .function_at(a.store_addr)
                .expect("inside a function");
            assert_eq!(f.name, a.func, "{}", p.name);
        }
        for c in &compiled.debug.checks {
            let f = compiled
                .debug
                .function_at(c.branch_addr)
                .expect("inside a function");
            assert_eq!(f.name, c.func, "{}", p.name);
        }
    }
}

/// ODC field-data apportioning and metrics-guided allocation compose with
/// location selection into runnable fault sets.
#[test]
fn field_data_to_locations_pipeline() {
    let dist = FieldDistribution::approx_field_data();
    let parts = dist.apportion(100);
    let assignment_share = parts
        .iter()
        .find(|(t, _)| *t == DefectType::Assignment)
        .unwrap()
        .1;
    assert!(assignment_share > 0);

    let p = swifi_programs::program("C.team8").unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let ast = parse(p.source_correct).unwrap();
    let metrics = measure(p.source_correct, &ast);
    let alloc = allocate(
        &metrics,
        &AllocationStrategy::MetricsGuided,
        assignment_share,
    );
    // Use the allocation to restrict location choice per function.
    let mut planned = 0;
    for (func, n) in alloc {
        if n == 0 {
            continue;
        }
        let mut plan = choose_locations(&compiled.debug, n, 0, 7);
        restrict_to_functions(&compiled.debug, &mut plan, &[func]);
        planned += plan.chosen_assign.len();
    }
    assert!(planned > 0, "the pipeline must yield injectable locations");
}

/// Error sets generated from different programs never alias: every fault
/// spec's trigger address lies inside its own program's code.
#[test]
fn error_sets_are_program_local() {
    for p in all_programs() {
        let compiled = compile(p.source_correct).unwrap();
        let set = generate_error_set(&compiled.debug, 6, 6, 5);
        let code_end = swifi_vm::CODE_BASE + compiled.image.code.len() as u32 * 4;
        for f in set.assign_faults.iter().chain(&set.check_faults) {
            match f.spec.trigger {
                swifi_core::fault::Trigger::OpcodeFetch(a) => {
                    assert!(
                        (swifi_vm::CODE_BASE..code_end).contains(&a),
                        "{}: trigger outside code",
                        p.name
                    );
                }
                other => panic!("unexpected trigger {other:?}"),
            }
        }
    }
}

/// The exposure model quantifies why error injection over-accelerates:
/// a typical real fault here has a tiny p1·p2·p3 product.
#[test]
fn exposure_model_quantifies_acceleration() {
    use swifi_odc::ExposureModel;
    // The JB.team6 fault: faulty code always executes (p1 = 1), errors are
    // generated only on 80-char lines (p2 ≈ 0.001), and generated errors
    // nearly always corrupt the checksum (p3 ≈ 0.996).
    let m = ExposureModel::new(1.0, 0.001, 0.996).unwrap();
    assert!(m.failure_probability() < 0.0011);
    let accel = m.acceleration_factor().unwrap();
    assert!(accel > 900.0, "injection inflates exposure ~1000x: {accel}");
}

/// The paper notes interface faults (wrong interactions at call
/// boundaries) are "somehow similar to assignment faults and some of them
/// can be emulated". Demonstrate: swapping two call arguments produces a
/// small word-level diff that the emulation planner classifies as
/// hardware-emulable.
#[test]
fn interface_fault_swapped_arguments_is_emulable() {
    use swifi_core::emulate::{emulation_faults, EmulationStrategy, EmulationVerdict};
    use swifi_core::injector::{Injector, TriggerMode};
    use swifi_vm::machine::{Machine, MachineConfig};
    use swifi_vm::Noop;

    let corrected = compile(
        "int sub2(int a, int b) { return a - b; }
         void main() { print_int(sub2(10, 3)); }",
    )
    .unwrap();
    let faulty = compile(
        "int sub2(int a, int b) { return a - b; }
         void main() { print_int(sub2(3, 10)); }",
    )
    .unwrap();
    match swifi_core::emulate::plan_emulation(&corrected.image, &faulty.image) {
        EmulationVerdict::Emulable { diffs } => {
            assert!(
                diffs.len() <= 2,
                "swapped literals are a small diff: {diffs:?}"
            );
            // And the emulation really reproduces the faulty behaviour.
            let specs = emulation_faults(&diffs, EmulationStrategy::FetchCorruption);
            let mut inj = Injector::new(specs, TriggerMode::Hardware, 0).unwrap();
            let mut m = Machine::new(MachineConfig::default());
            m.load(&corrected.image);
            inj.prepare(&mut m).unwrap();
            assert_eq!(m.run(&mut inj).output(), b"-7");
            let mut m2 = Machine::new(MachineConfig::default());
            m2.load(&faulty.image);
            assert_eq!(m2.run(&mut Noop).output(), b"-7");
        }
        other => panic!("expected class A for a swapped-argument interface fault, got {other:?}"),
    }
}

/// Composing the injector with the tracer shows error propagation: after
/// a random-value pointer corruption, the wild address is visible in the
/// trace before the crash.
#[test]
fn tracer_captures_error_propagation() {
    use swifi_core::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
    use swifi_core::injector::{Injector, TriggerMode};
    use swifi_vm::machine::{Machine, MachineConfig, RunOutcome};
    use swifi_vm::trace::{Pair, TraceFilter, Tracer};

    let p = compile(
        "struct n { int v; struct n *next; };
         void main() {
           struct n *a;
           a = malloc(8);
           a->v = 5;
           a->next = 0;
           print_int(a->v);
           free(a);
         }",
    )
    .unwrap();
    // Corrupt the pointer assignment's store data with a random value.
    let site = p
        .debug
        .assigns
        .iter()
        .find(|a| a.is_pointer)
        .expect("pointer assignment");
    let spec = FaultSpec {
        what: ErrorOp::Replace(0x7FFF_FF00),
        target: Target::DataBusStore,
        trigger: Trigger::OpcodeFetch(site.store_addr),
        when: Firing::EveryTime,
    };
    let mut inj = Injector::new(vec![spec], TriggerMode::Hardware, 1).unwrap();
    let mut tracer = Tracer::new(TraceFilter::memory_only(), 64);
    let mut m = Machine::new(MachineConfig::default());
    m.load(&p.image);
    inj.prepare(&mut m).unwrap();
    let outcome = {
        let mut pair = Pair {
            primary: &mut inj,
            secondary: &mut tracer,
        };
        m.run(&mut pair)
    };
    // `a = malloc(8)` got the wild pointer; the store *through* it traps.
    assert!(
        matches!(outcome, RunOutcome::Trapped { .. }),
        "expected a crash: {outcome:?}"
    );
    let wild = tracer.events().find(|e| {
        matches!(
            e,
            swifi_vm::trace::Event::Store {
                value: 0x7FFF_FF00,
                ..
            }
        )
    });
    assert!(
        wild.is_some(),
        "the corrupted store must be visible in the trace"
    );
}
