//! Workspace integration tests: the full pipeline from MiniC source to
//! classified fault-injection outcomes, spanning every crate.

use swifi_campaign::runner::{execute, FailureMode};
use swifi_campaign::section6::{class_campaign, CampaignScale};
use swifi_core::emulate::{plan_emulation, EmulationVerdict};
use swifi_core::locations::generate_error_set;
use swifi_lang::compile;
use swifi_programs::{all_programs, program, Family, TestInput};

/// The §5 experiment's headline result, end to end: every real fault is
/// classified as the paper classified its class.
#[test]
fn real_faults_classify_per_paper() {
    use swifi_odc::DefectType;
    for p in all_programs() {
        let Some(faulty_src) = p.source_faulty else {
            continue;
        };
        let corrected = compile(p.source_correct).unwrap();
        let faulty = compile(faulty_src).unwrap();
        let verdict = plan_emulation(&corrected.image, &faulty.image);
        let fault = p.real_fault.unwrap();
        match fault.defect_type {
            DefectType::Algorithm => {
                assert!(
                    matches!(verdict, EmulationVerdict::NotEmulable { .. }),
                    "{}: algorithm faults are class C, got {verdict:?}",
                    p.name
                );
            }
            DefectType::Assignment | DefectType::Checking => {
                assert!(
                    matches!(
                        verdict,
                        EmulationVerdict::Emulable { .. }
                            | EmulationVerdict::BreakpointBudgetExceeded { .. }
                    ),
                    "{}: assignment/checking faults are emulable in principle, got {verdict:?}",
                    p.name
                );
            }
            other => panic!("unexpected fault class {other:?}"),
        }
    }
}

/// Injected faults have much stronger impact than real software faults —
/// the paper's central §6 observation, tested end to end on one program.
#[test]
fn injected_faults_hit_harder_than_real_ones() {
    let target = program("JB.team6").unwrap();

    // Real fault: failure rate over random inputs is tiny.
    let faulty = compile(target.source_faulty.unwrap()).unwrap();
    let inputs = Family::JamesB.test_case(150, 5);
    let real_failures = inputs
        .iter()
        .filter(|i| execute(&faulty, Family::JamesB, i, None, 0).0 != FailureMode::Correct)
        .count();

    // Injected faults: a small campaign on the corrected program.
    let campaign = class_campaign(
        &target,
        CampaignScale {
            inputs_per_fault: 5,
        },
        3,
    );
    let injected_total = campaign.total_runs;
    let injected_noncorrect =
        injected_total - campaign.assign_modes.correct - campaign.check_modes.correct;

    let real_rate = real_failures as f64 / inputs.len() as f64;
    let injected_rate = injected_noncorrect as f64 / injected_total as f64;
    assert!(
        injected_rate > real_rate + 0.2,
        "injected {injected_rate:.2} vs real {real_rate:.2}: injected faults should hit much harder"
    );
}

/// Each failure mode is reachable through injection on the dynamic
/// structures program (the crash-prone C.team9).
#[test]
fn all_failure_modes_reachable() {
    let target = program("C.team9").unwrap();
    let compiled = compile(target.source_correct).unwrap();
    let set = generate_error_set(&compiled.debug, 9, 9, 17);
    let inputs = Family::Camelot.test_case(3, 17);
    let mut seen = std::collections::HashSet::new();
    'outer: for f in set.assign_faults.iter().chain(&set.check_faults) {
        for input in &inputs {
            let (mode, _) = execute(&compiled, Family::Camelot, input, Some(&f.spec), 1);
            seen.insert(mode);
            if seen.len() == 4 {
                break 'outer;
            }
        }
    }
    for mode in FailureMode::ALL {
        assert!(
            seen.contains(&mode),
            "mode {mode:?} never observed; saw {seen:?}"
        );
    }
}

/// SOR runs correctly on 4 cores and its injected faults produce the
/// crash-sensitivity the paper reports for checking faults.
#[test]
fn sor_parallel_campaign_smoke() {
    let target = program("SOR").unwrap();
    let campaign = class_campaign(
        &target,
        CampaignScale {
            inputs_per_fault: 3,
        },
        41,
    );
    assert!(campaign.total_runs > 0);
    // Injected faults must disturb the parallel execution: crashes from
    // wild values (random assignment errors into band bounds/indices) or
    // hangs from broken loop controls. (The paper saw checking faults
    // crash its 2400-line SOR; our Table-3 checking mutations on this
    // smaller SOR are semantically gentler, so the disturbance arrives
    // mostly through assignment faults — recorded in EXPERIMENTS.md.)
    let total_crash_hang = campaign.check_modes.crash
        + campaign.check_modes.hang
        + campaign.assign_modes.crash
        + campaign.assign_modes.hang;
    assert!(
        total_crash_hang > 0,
        "SOR injections should disturb the parallel execution: {campaign:?}"
    );
}

/// The roster's corrected programs all agree with the oracle (sampled).
#[test]
fn oracle_agreement_sampled() {
    for p in all_programs() {
        let compiled = compile(p.source_correct).unwrap();
        for input in p.family.test_case(4, 99) {
            let (mode, fired) = execute(&compiled, p.family, &input, None, 0);
            assert_eq!(mode, FailureMode::Correct, "{} on {input:?}", p.name);
            assert!(!fired);
        }
    }
}

/// A single input can be pushed through every family.
#[test]
fn manual_inputs_work_for_every_family() {
    let cases = vec![
        (
            "C.team8",
            TestInput::Camelot {
                pieces: vec![(3, 3), (0, 0), (7, 7)],
            },
        ),
        (
            "JB.team11",
            TestInput::JamesB {
                seed: 42,
                line: b"end to end".to_vec(),
            },
        ),
        (
            "SOR",
            TestInput::Sor {
                n: 8,
                iters: 6,
                boundary: [1000, 2000, 3000, 4000],
            },
        ),
    ];
    for (name, input) in cases {
        let p = program(name).unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let (mode, _) = execute(&compiled, p.family, &input, None, 0);
        assert_eq!(mode, FailureMode::Correct, "{name}");
    }
}

/// The parallel SOR result is independent of the scheduler's quantum —
/// the red-black decomposition makes phases conflict-free, so any core
/// interleaving yields the same matrix. (This is the property that lets a
/// sequential oracle check a parallel program.)
#[test]
fn sor_is_quantum_independent() {
    use swifi_vm::machine::{Machine, MachineConfig};
    use swifi_vm::Noop;
    let p = program("SOR").unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let input = TestInput::Sor {
        n: 10,
        iters: 8,
        boundary: [7_000, 55_000, 13_000, 90_000],
    };
    let run_with_quantum = |quantum: u32| {
        let mut m = Machine::new(MachineConfig {
            num_cores: 4,
            quantum,
            budget: Family::Sor.run_budget(),
            ..MachineConfig::default()
        });
        m.load(&compiled.image);
        m.set_input(input.to_tape());
        m.run(&mut Noop).output().to_vec()
    };
    let reference = run_with_quantum(64);
    assert_eq!(reference, input.expected_output());
    for q in [1, 3, 17, 1000] {
        assert_eq!(
            run_with_quantum(q),
            reference,
            "quantum {q} changed the SOR result"
        );
    }
}

/// Real faults stay invisible to the contest-style acceptance test but
/// are caught by the oracle-checked intensive test — the paper's framing
/// for why its fault set is interesting ("only bugs found in programs
/// that passed the test cases were considered").
#[test]
fn faulty_programs_pass_a_weak_acceptance_test() {
    // A fixed 3-input acceptance suite, like the contest judges'.
    let acceptance: Vec<TestInput> = vec![
        TestInput::Camelot {
            pieces: vec![(2, 2), (4, 4)],
        },
        TestInput::Camelot {
            pieces: vec![(0, 0), (3, 3), (5, 5)],
        },
        TestInput::Camelot {
            pieces: vec![(1, 6), (6, 1), (2, 2), (7, 0)],
        },
    ];
    for name in ["C.team1", "C.team4"] {
        let p = program(name).unwrap();
        let faulty = compile(p.source_faulty.unwrap()).unwrap();
        for input in &acceptance {
            let (mode, _) = execute(&faulty, Family::Camelot, input, None, 0);
            assert_eq!(
                mode,
                FailureMode::Correct,
                "{name} should pass the weak acceptance test on {input:?}"
            );
        }
    }
}
