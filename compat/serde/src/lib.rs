//! Offline stand-in for `serde`.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal serde-shaped serialization framework. Instead of serde's
//! visitor architecture, everything round-trips through an owned
//! [`Value`] tree (the same data model as JSON). The derive macros in the
//! companion `serde_derive` stand-in generate [`Serialize`]/[`Deserialize`]
//! impls that follow serde_json's *externally tagged* conventions:
//!
//! - struct `S { a, b }`      → `{"a": .., "b": ..}`
//! - unit enum variant `E::V` → `"V"`
//! - newtype variant `E::V(x)`→ `{"V": x}`
//! - tuple variant `E::V(x,y)`→ `{"V": [x, y]}`
//! - struct variant           → `{"V": {"f": ..}}`
//!
//! Only the API surface this repository uses is provided.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The self-describing data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64`'s range
    /// or originated from an unsigned type).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object (list of key/value pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Convert `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the data-model tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a field in an object, for derive-generated code.
pub fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError(format!("expected bool, found {v:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range")))?,
                    _ => return Err(DeError(format!("expected integer, found {v:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range")))?,
                    _ => return Err(DeError(format!("expected integer, found {v:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    _ => Err(DeError(format!("expected number, found {v:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError(format!("expected single-char string, found {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError(format!("expected string, found {v:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError(format!("expected array, found {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError(format!("expected array, found {v:?}")))?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected {N}-element array, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError("array length mismatch".to_string()))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array()
                    .ok_or_else(|| DeError(format!("expected tuple array, found {v:?}")))?;
                let expect = [$(stringify!($idx)),+].len();
                if items.len() != expect {
                    return Err(DeError(format!(
                        "expected {expect}-tuple, found {} elements", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Turn a serialized map key into the string JSON requires.
fn key_string(key: Value) -> String {
    match key {
        Value::Str(s) => s,
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key does not serialize to a string: {other:?}"),
    }
}

/// Parse a stringified map key back into a value the key type understands.
fn key_value(key: &str) -> Value {
    if let Ok(n) = key.parse::<u64>() {
        Value::U64(n)
    } else if let Ok(n) = key.parse::<i64>() {
        Value::I64(n)
    } else {
        Value::Str(key.to_string())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError(format!("expected object, found {v:?}")))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_value(&key_value(k))?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, as serde_json users often rely on
        // map ordering only through BTreeMap; sorting keeps snapshots stable.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError(format!("expected object, found {v:?}")))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_value(&key_value(k))?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i16::from_value(&(-3i16).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(char::from_value(&'ω'.to_value()).unwrap(), 'ω');
    }

    #[test]
    fn signed_unsigned_cross_accept() {
        // A small positive i64 deserializes into unsigned types and back.
        assert_eq!(u8::from_value(&Value::I64(7)).unwrap(), 7);
        assert_eq!(i32::from_value(&Value::U64(7)).unwrap(), 7);
        assert!(u8::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(String::from("a"), 1usize), (String::from("b"), 2usize)];
        let back: Vec<(String, usize)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let arr = [(1u8, 2.5f64); 3];
        let back: [(u8, f64); 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn maps_round_trip() {
        let mut m = HashMap::new();
        m.insert("f".to_string(), 0.25f64);
        let back: HashMap<String, f64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
