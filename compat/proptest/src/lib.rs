//! Offline stand-in for `proptest`.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal property-testing harness exposing the subset of proptest's API
//! that this repository's tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_filter_map`/`boxed`, range and tuple strategies,
//! [`Just`], [`any`], `collection::vec`, `array::uniform6`, and the
//! `proptest!`, `prop_compose!`, `prop_oneof!`, and `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted for a test
//! harness that must build offline:
//!
//! - **No shrinking.** A failing case panics with the sampled inputs
//!   visible in the assertion message rather than a minimised example.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs; set
//!   `PROPTEST_CASES` to change the case count globally.

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 RNG used to drive all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an explicit value.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed deterministically from a test name (FNV-1a hash).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Subset of proptest's run configuration: just the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Apply the `PROPTEST_CASES` environment override, if set.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate defaults to 256; 64 keeps offline CI fast while
        // still exercising each property broadly. Override with
        // PROPTEST_CASES for deeper runs.
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values the function maps to `Some`, resampling otherwise.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Keep only values satisfying the predicate, resampling otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(u) = (self.f)(self.inner.sample(rng)) {
                return u;
            }
        }
        panic!(
            "prop_filter_map({:?}) rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy defined by an arbitrary sampling closure; the expansion
/// target of `prop_compose!`.
pub struct SampledWith<T, F: Fn(&mut TestRng) -> T>(F);

impl<T, F: Fn(&mut TestRng) -> T> SampledWith<T, F> {
    /// Wrap a sampling closure.
    pub fn new(f: F) -> SampledWith<T, F> {
        SampledWith(f)
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for SampledWith<T, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed alternatives; the expansion target of
/// `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait ArbValue: Sized {
    /// Draw an arbitrary value.
    fn arb(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arb_int {
    ($($t:ty),*) => {$(
        impl ArbValue for $t {
            fn arb(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbValue for bool {
    fn arb(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbValue for char {
    fn arb(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32(rng.next_u32() % 0x11_0000) {
                return c;
            }
        }
    }
}

impl ArbValue for f64 {
    fn arb(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e9;
        mag + rng.unit_f64()
    }
}

impl ArbValue for f32 {
    fn arb(rng: &mut TestRng) -> f32 {
        f64::arb(rng) as f32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

/// Full-domain strategy for a primitive type.
pub fn any<T: ArbValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generate vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform_fn {
        ($name:ident, $n:expr) => {
            /// Strategy for `[T; N]` sampling each element independently.
            pub fn $name<S: Strategy>(element: S) -> Uniform<S, $n> {
                Uniform { element }
            }
        };
    }

    /// Array strategy produced by the `uniformN` constructors.
    pub struct Uniform<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    uniform_fn!(uniform2, 2);
    uniform_fn!(uniform3, 3);
    uniform_fn!(uniform4, 4);
    uniform_fn!(uniform6, 6);
    uniform_fn!(uniform8, 8);
}

// ---------------------------------------------------------------------------
// Case-context plumbing for failure reporting
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_CASE: Cell<u64> = const { Cell::new(0) };
}

/// Record the current case index (used by the `proptest!` expansion so
/// panic messages identify the failing case).
pub fn set_current_case(i: u64) {
    CURRENT_CASE.with(|c| c.set(i));
}

/// The case index most recently recorded on this thread.
pub fn current_case() -> u64 {
    CURRENT_CASE.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each test function in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.resolved_cases() {
                $crate::set_current_case(__case as u64);
                $(
                    let $arg = {
                        let __s = $strat;
                        $crate::Strategy::sample(&__s, &mut __rng)
                    };
                )+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Define a named strategy-building function from sampled bindings.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($earg:ident : $ety:ty),* $(,)?)
                 ($($arg:ident in $strat:expr),+ $(,)?)
                 -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($earg: $ety),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::SampledWith::new(move |__rng: &mut $crate::TestRng| {
                $(
                    let $arg = {
                        let __s = $strat;
                        $crate::Strategy::sample(&__s, __rng)
                    };
                )+
                $body
            })
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert within a property; failure panics with the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed (case {})", $crate::current_case())
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b, "property failed (case {})", $crate::current_case())
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b, "property failed (case {})", $crate::current_case())
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        ArbValue, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..500 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let neg = (-(1i32 << 25)..(1i32 << 25)).sample(&mut rng);
            assert!((-(1i32 << 25)..(1i32 << 25)).contains(&neg));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)];
        let mut rng = crate::TestRng::new(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            match s.sample(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                5 => seen[2] = true,
                6 => seen[3] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn filter_map_resamples() {
        let s = (0u32..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let s = crate::collection::vec((any::<bool>(), 1u32..512), 1..200);
        let mut rng = crate::TestRng::new(4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..200).contains(&v.len()));
            assert!(v.iter().all(|&(_, n)| (1..512).contains(&n)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself works end to end.
        #[test]
        fn macro_surface(a in 0usize..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(u8::from(b), b as u8);
        }
    }

    prop_compose! {
        fn arb_pair()(x in 0u8..4, y in 0u8..4) -> (u8, u8) {
            (x, y)
        }
    }

    proptest! {
        #[test]
        fn compose_surface(p in arb_pair()) {
            prop_assert!(p.0 < 4 && p.1 < 4);
        }
    }
}
