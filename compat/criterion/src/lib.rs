//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's `[[bench]]` targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`],
//! and the `criterion_group!`/`criterion_main!` macros — backed by a
//! simple wall-clock timer: warm up, pick an iteration count targeting a
//! fixed measurement window, report mean time per iteration (and derived
//! element/byte throughput).
//!
//! No statistics, plots, or saved baselines; the point is that
//! `cargo bench` runs offline and prints honest numbers.

use std::time::{Duration, Instant};

/// Measurement window per benchmark. Kept short: these benches run in CI.
const MEASURE_WINDOW: Duration = Duration::from_millis(400);

/// Work-rate annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Measure `f`, storing the mean wall-clock time per call.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up and calibration: time a single call.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (mean_ns / 1e9);
            format!("  ({per_sec:.0} elem/s)")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (mean_ns / 1e9) / (1 << 20) as f64;
            format!("  ({per_sec:.1} MiB/s)")
        }
        None => String::new(),
    };
    println!("{name:<50} time: {}{rate}", human_time(mean_ns));
}

/// Top-level benchmark registry and driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(name, b.mean_ns, None);
        self
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{name}", self.name), b.mean_ns, self.throughput);
        self
    }

    /// Finish the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
