//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal, dependency-free implementation of exactly the surface this
//! repository uses: `StdRng` seeded via [`SeedableRng::seed_from_u64`],
//! [`RngCore::next_u32`]/[`RngCore::next_u64`], [`Rng::gen_range`] over
//! integer ranges, and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is a SplitMix64 generator: deterministic, fast, and of
//! ample quality for fault-site sampling. It does **not** reproduce the
//! byte streams of the real `rand` crate — campaign results are
//! deterministic per seed within this workspace, which is the property the
//! experiments rely on.

/// Core random-number generation, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng` (only the
/// `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — the reference PRNG used
            // to seed xoshiro; passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
