//! Offline stand-in for `serde_json`.
//!
//! Serializes the `serde` stand-in's [`Value`](serde::Value) tree to JSON
//! text and parses JSON text back. Covers the workspace's needs:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].

use serde::{DeError, Deserialize, Serialize, Value};

/// Error type shared by serialization and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest representation that parses
                // back exactly; integral floats keep a `.0` suffix so the
                // parser reproduces an F64.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    let s = format!("{f}");
                    if s.contains('.') {
                        out.push_str(&s);
                    } else {
                        // Display never uses exponent notation; huge
                        // integral floats would render as bare integers
                        // and reparse as (overflowing) u64. LowerExp
                        // keeps them floats and round-trips exactly.
                        out.push_str(&format!("{f:e}"));
                    }
                }
            } else {
                // Like serde_json, non-finite numbers become null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("bad escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(Error("lone high surrogate".to_string()));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("bad low surrogate".to_string()));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad codepoint {code:#x}")))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8".to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("bad \\u escape".to_string()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".to_string()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad number: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\nwith \"quotes\" and \\ backslash ω".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn vectors_and_pretty_round_trip() {
        let v = vec![(String::from("a"), 1usize), (String::from("b"), 2usize)];
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<(String, usize)>>(&compact).unwrap(), v);
        assert_eq!(from_str::<Vec<(String, usize)>>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn float_precision_survives() {
        let xs = vec![0.1f64, 1.0 / 3.0, 2.5e-10, 1e300];
        let json = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), xs);
    }
}
