//! Offline stand-in for `serde_derive`.
//!
//! The real crate depends on `syn`/`quote`, which are unavailable without
//! registry access, so this macro parses the derive input token stream by
//! hand. It supports exactly the shapes this workspace derives on:
//!
//! - structs with named fields (no generics),
//! - enums with unit, tuple, and struct variants (no generics).
//!
//! Generated impls target the Value-tree model of the companion `serde`
//! stand-in and follow serde_json's externally-tagged enum conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct variant with these field names.
    Struct(Vec<String>),
}

/// The parsed derive input.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive stand-in generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive stand-in generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stand-in: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stand-in: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic type `{name}` is not supported");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("serde_derive stand-in: `{name}` has no braced body"),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    }
}

/// Skip attributes (`#[...]`), visibility (`pub`, `pub(crate)`), and
/// default/const qualifiers before the item keyword.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` named fields, returning the names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stand-in: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stand-in: expected `:` after `{name}`, found {other}"),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Parse enum variants.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stand-in: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Count tuple-variant fields: top-level commas (angle-depth 0) delimit them.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut pairs = String::new();
    for f in fields {
        pairs.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{pairs}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::field(__obj, \"{f}\")?)?,"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                     format!(\"expected object for {name}, found {{__v:?}}\")))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
            )),
            VariantKind::Tuple(1) => arms.push_str(&format!(
                "{name}::{vn}(__f0) => ::serde::Value::Object(vec![\
                     (::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),"
            )),
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                         (::std::string::String::from(\"{vn}\"), \
                          ::serde::Value::Array(vec![{}]))]),",
                    binds.join(","),
                    elems.join(",")
                ));
            }
            VariantKind::Struct(fields) => {
                let binds = fields.join(",");
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                         (::std::string::String::from(\"{vn}\"), \
                          ::serde::Value::Object(vec![{}]))]),",
                    pairs.join(",")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
            )),
            VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__payload)?)),"
            )),
            VariantKind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let __arr = __payload.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array payload for {name}::{vn}\"))?;\n\
                         if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"wrong payload arity for {name}::{vn}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vn}({}))\n\
                     }},",
                    elems.join(",")
                ));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::field(__obj, \"{f}\")?)?"
                        )
                    })
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let __obj = __payload.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object payload for {name}::{vn}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                     }},",
                    inits.join(",")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__k, __payload) = &__pairs[0];\n\
                         match __k.as_str() {{\n\
                             {payload_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         format!(\"bad value for enum {name}: {{__other:?}}\"))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
