#!/usr/bin/env bash
# Server smoke test: start `swifi serve`, submit a small §6 campaign
# sharded 3 ways across real worker processes, and require the merged
# report to equal the single-process `swifi campaign` output. Also
# checks the streamed progress events, the merged telemetry artifacts,
# ping, and graceful shutdown.
#
# crates/server/tests/service.rs pins the same protocol in-process;
# this script exercises the real binary: serve accept loop, shard-exec
# worker processes, checkpoint merge, and the client event stream.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/swifi
if [[ ! -x "$BIN" ]]; then
  cargo build --release -p swifi-cli
fi

TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

# Strip the wall-clock- and cache-strategy-dependent lines (a merge
# pass replays shard records instead of re-executing them, so its
# timing lines legitimately differ); everything else in the campaign
# report is seed-deterministic. Also drop the local command's banner
# and the client's artifact notices — neither is part of the report.
report() {
  grep -v -e '^throughput:' -e '^icache:' -e '^prefix-fork:' -e '^blocks:' \
          -e '^phases:' -e '^prune:' -e '^campaign on' -e '^metrics:' -e '^trace:'
}

# The reference: the single-process CLI command.
"$BIN" campaign JB.team11 --inputs 3 --seed 7 | report > "$TMP/direct.txt"

# Start the server on a free port and learn the address it picked.
"$BIN" serve --workdir "$TMP/work" > "$TMP/serve.log" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^serving on //p' "$TMP/serve.log")"
  [[ -n "$ADDR" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$TMP/serve.log"; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "server never announced its address"; exit 1; }

"$BIN" submit --ping --addr "$ADDR"

# The shard-equality oracle: a campaign sharded 3 ways across worker
# processes must report identically to the single-process run.
"$BIN" submit JB.team11 --addr "$ADDR" --inputs 3 --seed 7 --shards 3 --pool 2 \
  2> "$TMP/progress.log" | report > "$TMP/sharded.txt"
diff -u "$TMP/direct.txt" "$TMP/sharded.txt"

# The progress stream told the whole story: every shard ran and the
# checkpoints merged without losing a shard.
for k in 0 1 2; do
  grep -q "shard $k: done" "$TMP/progress.log"
done
grep -q '^merged: .*(0 missing, 0 duplicate(s))' "$TMP/progress.log"

# A second submission with telemetry: the merged trace must be
# schema-valid and timestamp-ordered, the merged metrics parseable.
"$BIN" submit JB.team11 --addr "$ADDR" --inputs 3 --seed 7 --shards 3 --pool 3 \
  --trace-out "$TMP/trace.json" --metrics-out "$TMP/metrics.json" \
  2>/dev/null | report > "$TMP/sharded2.txt"
diff -u "$TMP/direct.txt" "$TMP/sharded2.txt"
"$BIN" trace-validate "$TMP/trace.json"
grep -q 'run_latency_us' "$TMP/metrics.json"

# Graceful shutdown: the server answers, then exits on its own.
"$BIN" submit --shutdown --addr "$ADDR"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "server did not exit after shutdown"
  exit 1
fi
SERVER_PID=""

echo "server smoke: OK"
