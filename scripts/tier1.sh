#!/usr/bin/env bash
# Tier-1 gate: offline-friendly build + test, then formatting, lints,
# and the checkpoint/resume smoke test.
#
# The workspace vendors all external dependencies under compat/, so every
# step below runs without registry or network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
./scripts/resume_smoke.sh
./scripts/mutation_smoke.sh
./scripts/perf_smoke.sh equivalence
./scripts/perf_smoke.sh prune
./scripts/trace_smoke.sh
./scripts/server_smoke.sh
