#!/usr/bin/env bash
# Perf smoke: non-gating sanity check that the predecoded translation
# cache actually outruns the reference decode-every-fetch interpreter.
#
# Runs the count_instr example in `compare` mode, which
#   1. asserts both interpreters retire identical instruction counts on
#      every probe program (a cheap correctness differential), and
#   2. prints the per-program and total wall-clock speedup.
# The speedup floor below is deliberately loose (shared CI boxes are
# noisy) — this script exists to catch the cache being *disabled or
# pessimised by an order of magnitude*, not to re-certify the headline
# number in BENCH_translation_cache.json (use `cargo bench -p swifi-bench`
# for that, with its interleaved best-of-chunks methodology).
#
# Exit codes: 0 ok, 1 cached interpreter slower than the floor,
# 2 harness failure.
set -euo pipefail
cd "$(dirname "$0")/.."

FLOOR="${SWIFI_PERF_SMOKE_FLOOR:-1.2}"

cargo build --release -p swifi-bench --example count_instr

out=$(SWIFI_INTERP=compare ./target/release/examples/count_instr) || exit 2
echo "$out"

# Line shape: "TOTAL compare: cached is 2.47x reference (wall clock)"
total=$(echo "$out" | awk '/^TOTAL compare/ { sub(/x$/, "", $5); print $5 }')
if [ -z "$total" ]; then
  echo "perf_smoke: could not parse total speedup" >&2
  exit 2
fi

ok=$(awk -v t="$total" -v f="$FLOOR" 'BEGIN { print (t >= f) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
  echo "perf_smoke: cached interpreter only ${total}x reference (floor ${FLOOR}x)" >&2
  exit 1
fi
echo "perf_smoke: cached is ${total}x reference (floor ${FLOOR}x) - ok"
