#!/usr/bin/env bash
# Perf smoke: non-gating sanity check that the predecoded translation
# cache actually outruns the reference decode-every-fetch interpreter.
#
# Runs the count_instr example in `compare` mode, which
#   1. asserts both interpreters retire identical instruction counts on
#      every probe program (a cheap correctness differential), and
#   2. prints the per-program and total wall-clock speedup.
# The speedup floor below is deliberately loose (shared CI boxes are
# noisy) — this script exists to catch the cache being *disabled or
# pessimised by an order of magnitude*, not to re-certify the headline
# number in BENCH_translation_cache.json (use `cargo bench -p swifi-bench`
# for that, with its interleaved best-of-chunks methodology).
#
# `perf_smoke.sh equivalence` runs the execution-strategy A/B checks
# instead: campaign reports with the prefix-fork cache on vs off, with
# block translation on vs off (--no-block-cache), and with trace-guided
# pruning on vs off (--no-prune) must be identical (timing and
# strategy-counter lines excluded). Those checks are deterministic, so
# tier1.sh runs them as a *gating* step; the wall-clock speedup mode
# stays non-gating.
#
# `perf_smoke.sh prune` runs the sampling oracle: a campaign with
# pruning on and `--prune-sample 100` re-executes every pruned or
# collapsed run in full and compares the predicted outcome against the
# real one. Any misprediction is a soundness bug and fails the script.
#
# Exit codes: 0 ok, 1 cached interpreter slower than the floor (or
# fork-on/fork-off reports diverge, or the pruning oracle caught a
# misprediction), 2 harness failure.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-speedup}"

if [ "$MODE" = equivalence ]; then
  BIN=target/release/swifi
  if [[ ! -x "$BIN" ]]; then
    cargo build --release -p swifi-cli
  fi
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' EXIT
  filter() { grep -v -e '^throughput:' -e '^icache:' -e '^prefix-fork:' -e '^blocks:' -e '^phases:' -e '^prune:'; }
  for t in JB.team11 JB.team6; do
    "$BIN" campaign "$t" --inputs 4 --seed 2024 | filter > "$TMP/on.txt" || exit 2
    for flag in --no-prefix-fork --no-block-cache --no-prune; do
      "$BIN" campaign "$t" --inputs 4 --seed 2024 "$flag" | filter > "$TMP/off.txt" || exit 2
      if ! diff -u "$TMP/on.txt" "$TMP/off.txt"; then
        echo "perf_smoke: $t report differs between default and $flag" >&2
        exit 1
      fi
    done
  done
  echo "perf_smoke: prefix-fork, block-cache, and prune on/off reports identical - ok"
  exit 0
fi

if [ "$MODE" = prune ]; then
  BIN=target/release/swifi
  if [[ ! -x "$BIN" ]]; then
    cargo build --release -p swifi-cli
  fi
  status=0
  for t in JB.team11 JB.team6; do
    out=$("$BIN" campaign "$t" --inputs 4 --seed 2024 --prune-sample 100) || exit 2
    line=$(echo "$out" | grep '^prune:') || { echo "perf_smoke: no prune line for $t" >&2; exit 2; }
    echo "$t $line"
    sampled=$(echo "$line" | sed -n 's/.* \([0-9]*\) sampled.*/\1/p')
    mispred=$(echo "$line" | sed -n 's/.* (\([0-9]*\) mispredicted).*/\1/p')
    if [ -z "$sampled" ] || [ -z "$mispred" ]; then
      echo "perf_smoke: could not parse prune line for $t" >&2
      exit 2
    fi
    if [ "$sampled" -eq 0 ]; then
      echo "perf_smoke: $t sampling oracle checked nothing (no runs pruned?)" >&2
      status=1
    fi
    if [ "$mispred" -ne 0 ]; then
      echo "perf_smoke: $t sampling oracle caught $mispred misprediction(s)" >&2
      status=1
    fi
  done
  [ "$status" = 0 ] && echo "perf_smoke: pruning oracle clean on all sampled runs - ok"
  exit "$status"
fi

FLOOR="${SWIFI_PERF_SMOKE_FLOOR:-1.2}"

cargo build --release -p swifi-bench --example count_instr

out=$(SWIFI_INTERP=compare ./target/release/examples/count_instr) || exit 2
echo "$out"

# Line shape: "TOTAL compare: cached is 2.47x reference (wall clock)"
total=$(echo "$out" | awk '/^TOTAL compare/ { sub(/x$/, "", $5); print $5 }')
if [ -z "$total" ]; then
  echo "perf_smoke: could not parse total speedup" >&2
  exit 2
fi

ok=$(awk -v t="$total" -v f="$FLOOR" 'BEGIN { print (t >= f) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
  echo "perf_smoke: cached interpreter only ${total}x reference (floor ${FLOOR}x)" >&2
  exit 1
fi
echo "perf_smoke: cached is ${total}x reference (floor ${FLOOR}x) - ok"
