#!/usr/bin/env bash
# Resume smoke test: run a campaign to a JSONL checkpoint, simulate a
# mid-campaign kill by truncating the checkpoint (keeping a torn final
# line, exactly what a kill -9 mid-append leaves), resume, and require
# the resumed report to equal the uninterrupted one. Also checks that a
# deliberately injected worker panic surfaces as one Abnormal record
# instead of aborting the campaign.
#
# tests/campaign_resilience.rs pins the same invariants in-process; this
# script exercises them end-to-end through the CLI and the real files.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/swifi
if [[ ! -x "$BIN" ]]; then
  cargo build --release -p swifi-cli
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
CKPT="$TMP/campaign.jsonl"

run() { "$BIN" campaign JB.team11 --inputs 3 --seed 7 "$@"; }

# Strip the wall-clock- and cache-strategy-dependent lines; everything
# else in the campaign report is seed-deterministic.
report() { grep -v -e '^throughput:' -e '^icache:' -e '^prefix-fork:' -e '^blocks:' -e '^phases:' -e '^prune:'; }

run | report > "$TMP/reference.txt"

# The prefix-fork and block caches and trace-guided pruning are
# execution strategies, not semantic changes: disabling any of them
# must leave the report untouched.
run --no-prefix-fork | report > "$TMP/no-fork.txt"
diff -u "$TMP/reference.txt" "$TMP/no-fork.txt"
run --no-block-cache | report > "$TMP/no-blocks.txt"
diff -u "$TMP/reference.txt" "$TMP/no-blocks.txt"
run --no-prune | report > "$TMP/no-prune.txt"
diff -u "$TMP/reference.txt" "$TMP/no-prune.txt"

# Checkpointing must not perturb the report.
run --checkpoint "$CKPT" | report > "$TMP/full.txt"
diff -u "$TMP/reference.txt" "$TMP/full.txt"

# Simulate the kill: keep the header plus the first 5 records, then a
# torn partial line.
head -n 6 "$CKPT" > "$TMP/torn.jsonl"
printf '{"phase":"assign","ind' >> "$TMP/torn.jsonl"
mv "$TMP/torn.jsonl" "$CKPT"

# Resume: recorded runs replay from disk, the rest re-run, and the
# report must come out equal — with forking, block translation, and
# trace-guided pruning each on (default) or off.
cp "$CKPT" "$TMP/torn-copy.jsonl"
cp "$CKPT" "$TMP/torn-copy2.jsonl"
cp "$CKPT" "$TMP/torn-copy3.jsonl"
run --checkpoint "$CKPT" --resume | report > "$TMP/resumed.txt"
diff -u "$TMP/reference.txt" "$TMP/resumed.txt"
run --checkpoint "$TMP/torn-copy.jsonl" --resume --no-prefix-fork | report > "$TMP/resumed-no-fork.txt"
diff -u "$TMP/reference.txt" "$TMP/resumed-no-fork.txt"
run --checkpoint "$TMP/torn-copy2.jsonl" --resume --no-block-cache | report > "$TMP/resumed-no-blocks.txt"
diff -u "$TMP/reference.txt" "$TMP/resumed-no-blocks.txt"
run --checkpoint "$TMP/torn-copy3.jsonl" --resume --no-prune | report > "$TMP/resumed-no-prune.txt"
diff -u "$TMP/reference.txt" "$TMP/resumed-no-prune.txt"

# A worker panic mid-campaign is one Abnormal record, not an abort.
run --chaos-panic 2 > "$TMP/chaos.txt"
grep -q 'abnormal: assign#2' "$TMP/chaos.txt"

echo "resume smoke: OK"
