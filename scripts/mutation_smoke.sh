#!/usr/bin/env bash
# Mutation smoke test: enumerate the G-SWFIT mutant catalogue for one JB
# roster program, assert every mutant recompiles through the ordinary
# pipeline, run a tiny seeded source campaign, and diff its report
# against the committed golden summary. A drift in operator enumeration
# order, mutant selection, or failure-mode accounting shows up here as a
# one-line diff instead of a silent distribution shift.
#
# crates/lang (mutate/pretty tests) and crates/campaign (source tests)
# pin the same invariants in-process; this script exercises them
# end-to-end through the CLI.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/swifi
if [[ ! -x "$BIN" ]]; then
  cargo build --release -p swifi-cli
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

PROGRAM=JB.team11

# 1. Enumerate the catalogue; the count is pinned by the golden summary.
"$BIN" mutants "$PROGRAM" > "$TMP/catalogue.txt"
COUNT=$(head -n 1 "$TMP/catalogue.txt" | grep -o '^[0-9]*')
if [[ -z "$COUNT" || "$COUNT" -eq 0 ]]; then
  echo "mutation smoke: no mutants enumerated for $PROGRAM" >&2
  exit 1
fi

# 2. Every mutant must compile (the load-bearing G-SWFIT guarantee).
for ((i = 0; i < COUNT; i++)); do
  "$BIN" mutants "$PROGRAM" --source "$i" > "$TMP/mutant.c"
  "$BIN" compile "$TMP/mutant.c" > /dev/null \
    || { echo "mutation smoke: mutant $i of $PROGRAM does not compile" >&2; exit 1; }
done

# 3. Tiny seeded campaign; strip the wall-clock- and cache-strategy-
# dependent lines and diff against the committed golden summary.
"$BIN" source-campaign "$PROGRAM" --mutants 6 --inputs 2 --seed 7 \
  | grep -v -e '^throughput:' -e '^icache:' -e '^blocks:' -e '^phases:' > "$TMP/summary.txt"
diff -u scripts/golden/mutation_smoke.txt "$TMP/summary.txt"

echo "mutation smoke: OK ($COUNT mutants compile)"
