#!/usr/bin/env bash
# Trace smoke test: run a tiny traced §6 campaign through the CLI, then
# require (1) the Chrome trace to pass `swifi trace-validate` (whole-file
# JSON well-formedness, per-line event schema, phase + run spans
# present), (2) the metrics snapshot to contain the run-latency and
# retired-instruction histograms, (3) the profile outputs to attribute
# samples to guest functions, and (4) the report to be byte-identical to
# the same seed with telemetry off — the no-op contract at CLI
# granularity (crates/campaign tests pin it in-process).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/swifi
if [[ ! -x "$BIN" ]]; then
  cargo build --release -p swifi-cli
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run() { "$BIN" campaign JB.team11 --inputs 3 --seed 7 "$@"; }
# Telemetry adds report lines of its own (trace:/metrics:/profile...),
# and the wall-clock lines differ run to run; everything else must match.
report() {
  grep -v -e '^throughput:' -e '^icache:' -e '^prefix-fork:' -e '^blocks:' \
    -e '^phases:' -e '^trace:' -e '^metrics:' -e '^profile' \
    -e '^function' -e '^main' -e '^is_printable' -e '^<unknown>'
}

# 1. Fully instrumented campaign.
run --trace-out "$TMP/trace.json" --metrics-out "$TMP/metrics.json" \
  --profile --profile-out "$TMP/profile.txt" > "$TMP/traced.txt"

# 2. The trace loads as strict JSON and as per-line Chrome events.
"$BIN" trace-validate "$TMP/trace.json"

# 3. Chrome well-formedness from first principles too: the file is one
# JSON array, every event names a known kind, spans carry durations.
python3 - "$TMP/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace must be a non-empty array"
for e in events:
    assert e["ph"] in ("X", "i"), e
    assert isinstance(e["ts"], int), e
    if e["ph"] == "X":
        assert "dur" in e, e
names = {e["name"] for e in events}
assert "run" in names and any(n.startswith("phase:") for n in names), names
EOF

# 4. The metrics snapshot carries the advertised histograms and gauges.
for key in run_latency_us retired_instrs_per_run prefix_hit_rate block_cache_hit_rate; do
  grep -q "\"$key\"" "$TMP/metrics.json" \
    || { echo "trace smoke: $key missing from metrics snapshot" >&2; exit 1; }
done

# 5. The profile attributed samples to guest functions.
grep -q ';main ' "$TMP/profile.txt" \
  || { echo "trace smoke: profile did not attribute samples to main" >&2; exit 1; }

# 6. No-op contract: telemetry must not change the reported results.
run > "$TMP/plain.txt"
diff -u <(report < "$TMP/plain.txt") <(report < "$TMP/traced.txt")

# 7. Garbage is rejected, not silently summarised.
echo 'not json' > "$TMP/garbage.json"
if "$BIN" trace-validate "$TMP/garbage.json" 2>/dev/null; then
  echo "trace smoke: validator accepted garbage" >&2
  exit 1
fi

echo "trace smoke: OK"
