//! # swifi-metrics — software metrics to steer fault injection
//!
//! §6.1 of the reproduced paper argues that when field data on real faults
//! is unavailable, *software complexity metrics* can take its place for
//! the two things field data is used for: choosing the modules to inject
//! into and deciding how many faults each gets. This crate computes
//! classic static metrics over MiniC ASTs and turns them into injection
//! allocations.
//!
//! Implemented metrics (per function and per program):
//!
//! - lines of code (non-blank, non-comment),
//! - McCabe cyclomatic complexity,
//! - Halstead vocabulary/length/volume/difficulty/effort,
//! - maximum statement nesting depth,
//! - statement and call counts,
//! - recursion detection (via call-graph cycles) and dynamic-structure
//!   usage (`malloc`/`free`) — the program *features* of the paper's
//!   Table 2.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};
use swifi_lang::ast::{self, BinOp, Block, Expr, ExprKind, Program, Stmt, UnOp};

/// Halstead software-science measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Halstead {
    /// Distinct operators (η₁).
    pub distinct_operators: usize,
    /// Distinct operands (η₂).
    pub distinct_operands: usize,
    /// Total operator occurrences (N₁).
    pub total_operators: usize,
    /// Total operand occurrences (N₂).
    pub total_operands: usize,
}

impl Halstead {
    /// Vocabulary η = η₁ + η₂.
    pub fn vocabulary(&self) -> usize {
        self.distinct_operators + self.distinct_operands
    }

    /// Length N = N₁ + N₂.
    pub fn length(&self) -> usize {
        self.total_operators + self.total_operands
    }

    /// Volume V = N · log₂(η); zero for empty vocabularies.
    pub fn volume(&self) -> f64 {
        let eta = self.vocabulary();
        if eta == 0 {
            0.0
        } else {
            self.length() as f64 * (eta as f64).log2()
        }
    }

    /// Difficulty D = (η₁ / 2) · (N₂ / η₂); zero when no operands exist.
    pub fn difficulty(&self) -> f64 {
        if self.distinct_operands == 0 {
            0.0
        } else {
            (self.distinct_operators as f64 / 2.0)
                * (self.total_operands as f64 / self.distinct_operands as f64)
        }
    }

    /// Effort E = D · V.
    pub fn effort(&self) -> f64 {
        self.difficulty() * self.volume()
    }
}

/// Metrics for one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionMetrics {
    /// Function name.
    pub name: String,
    /// McCabe cyclomatic complexity (1 + decision points).
    pub cyclomatic: usize,
    /// Number of statements (nested included).
    pub statements: usize,
    /// Maximum nesting depth of control structures.
    pub max_nesting: usize,
    /// Number of call expressions.
    pub calls: usize,
    /// Halstead measures.
    pub halstead: Halstead,
    /// Whether the function participates in a call-graph cycle.
    pub recursive: bool,
    /// Whether the function calls `malloc`/`free`.
    pub dynamic_structures: bool,
}

impl FunctionMetrics {
    /// A fault-proneness score in the spirit of the EMERALD-style
    /// predictors the paper cites: complexity-dominated, volume-seasoned.
    ///
    /// The absolute scale is meaningless; only ratios between functions
    /// are used (to apportion injections).
    pub fn proneness(&self) -> f64 {
        self.cyclomatic as f64 + self.halstead.volume() / 100.0 + self.max_nesting as f64 / 2.0
    }
}

/// Metrics for a whole program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramMetrics {
    /// Non-blank, non-comment source lines.
    pub loc: usize,
    /// Per-function metrics.
    pub functions: Vec<FunctionMetrics>,
    /// Number of global variables.
    pub globals: usize,
    /// Number of struct definitions.
    pub structs: usize,
}

impl ProgramMetrics {
    /// Sum of cyclomatic complexities.
    pub fn total_cyclomatic(&self) -> usize {
        self.functions.iter().map(|f| f.cyclomatic).sum()
    }

    /// Whether any function is recursive (a Table 2 feature).
    pub fn any_recursive(&self) -> bool {
        self.functions.iter().any(|f| f.recursive)
    }

    /// Whether the program uses dynamic structures (a Table 2 feature).
    pub fn uses_dynamic_structures(&self) -> bool {
        self.functions.iter().any(|f| f.dynamic_structures)
    }
}

/// Count non-blank, non-comment lines (`//` and `/* */` aware).
pub fn lines_of_code(src: &str) -> usize {
    let mut in_block = false;
    let mut loc = 0;
    for line in src.lines() {
        let mut meaningful = false;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if in_block {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    in_block = false;
                    i += 2;
                } else {
                    i += 1;
                }
            } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'/') {
                break;
            } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                in_block = true;
                i += 2;
            } else {
                if !bytes[i].is_ascii_whitespace() {
                    meaningful = true;
                }
                i += 1;
            }
        }
        if meaningful {
            loc += 1;
        }
    }
    loc
}

/// Compute all metrics for a parsed program plus its source text.
pub fn measure(src: &str, prog: &Program) -> ProgramMetrics {
    // Call graph for recursion detection.
    let mut callees: HashMap<&str, HashSet<String>> = HashMap::new();
    for f in &prog.functions {
        let mut set = HashSet::new();
        ast::visit_exprs(&f.body, &mut |e| {
            if let ExprKind::Call { name, .. } = &e.kind {
                set.insert(name.clone());
            }
        });
        callees.insert(&f.name, set);
    }
    let recursive: HashSet<String> = prog
        .functions
        .iter()
        .filter(|f| reaches(&callees, &f.name, &f.name, &mut HashSet::new()))
        .map(|f| f.name.clone())
        .collect();

    let functions = prog
        .functions
        .iter()
        .map(|f| {
            let mut m = FunctionMetrics {
                name: f.name.clone(),
                cyclomatic: 1,
                statements: 0,
                max_nesting: 0,
                calls: 0,
                halstead: Halstead::default(),
                recursive: recursive.contains(&f.name),
                dynamic_structures: false,
            };
            let mut h = HalsteadCounter::default();
            walk_block(&f.body, 0, &mut m, &mut h);
            m.halstead = h.finish();
            m.dynamic_structures = callees[f.name.as_str()]
                .iter()
                .any(|c| c == "malloc" || c == "free");
            m
        })
        .collect();

    ProgramMetrics {
        loc: lines_of_code(src),
        functions,
        globals: prog.globals.len(),
        structs: prog.structs.len(),
    }
}

fn reaches(
    callees: &HashMap<&str, HashSet<String>>,
    from: &str,
    target: &str,
    seen: &mut HashSet<String>,
) -> bool {
    let Some(next) = callees.get(from) else {
        return false;
    };
    for callee in next {
        if callee == target {
            return true;
        }
        if seen.insert(callee.clone()) && reaches(callees, callee, target, seen) {
            return true;
        }
    }
    false
}

#[derive(Default)]
struct HalsteadCounter {
    operators: HashMap<String, usize>,
    operands: HashMap<String, usize>,
}

impl HalsteadCounter {
    fn operator(&mut self, name: &str) {
        *self.operators.entry(name.to_string()).or_insert(0) += 1;
    }

    fn operand(&mut self, name: String) {
        *self.operands.entry(name).or_insert(0) += 1;
    }

    fn finish(self) -> Halstead {
        Halstead {
            distinct_operators: self.operators.len(),
            distinct_operands: self.operands.len(),
            total_operators: self.operators.values().sum(),
            total_operands: self.operands.values().sum(),
        }
    }
}

fn walk_block(b: &Block, depth: usize, m: &mut FunctionMetrics, h: &mut HalsteadCounter) {
    for d in &b.decls {
        if let Some(init) = &d.init {
            m.statements += 1;
            h.operator("=");
            h.operand(d.name.clone());
            walk_expr(init, m, h);
        }
    }
    for s in &b.stmts {
        walk_stmt(s, depth, m, h);
    }
}

fn walk_stmt(s: &Stmt, depth: usize, m: &mut FunctionMetrics, h: &mut HalsteadCounter) {
    m.statements += 1;
    m.max_nesting = m.max_nesting.max(depth);
    match s {
        Stmt::Assign { target, value, .. } => {
            h.operator("=");
            walk_expr(target, m, h);
            walk_expr(value, m, h);
        }
        Stmt::Expr { expr, .. } => walk_expr(expr, m, h),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            m.cyclomatic += 1;
            h.operator("if");
            walk_expr(cond, m, h);
            walk_block(then_blk, depth + 1, m, h);
            if let Some(e) = else_blk {
                h.operator("else");
                walk_block(e, depth + 1, m, h);
            }
        }
        Stmt::While { cond, body, .. } => {
            m.cyclomatic += 1;
            h.operator("while");
            walk_expr(cond, m, h);
            walk_block(body, depth + 1, m, h);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            m.cyclomatic += 1;
            h.operator("for");
            if let Some(i) = init {
                walk_stmt(i, depth, m, h);
            }
            if let Some(c) = cond {
                walk_expr(c, m, h);
            }
            if let Some(st) = step {
                walk_stmt(st, depth, m, h);
            }
            walk_block(body, depth + 1, m, h);
        }
        Stmt::Return { value, .. } => {
            h.operator("return");
            if let Some(v) = value {
                walk_expr(v, m, h);
            }
        }
        Stmt::Break { .. } => h.operator("break"),
        Stmt::Continue { .. } => h.operator("continue"),
        Stmt::Block(b) => walk_block(b, depth + 1, m, h),
    }
}

fn walk_expr(e: &Expr, m: &mut FunctionMetrics, h: &mut HalsteadCounter) {
    match &e.kind {
        ExprKind::IntLit(v) => h.operand(v.to_string()),
        ExprKind::CharLit(c) => h.operand(format!("'{c}'")),
        ExprKind::StrLit(s) => h.operand(format!("{s:?}")),
        ExprKind::Var(n) => h.operand(n.clone()),
        ExprKind::Index { base, index } => {
            h.operator("[]");
            walk_expr(base, m, h);
            walk_expr(index, m, h);
        }
        ExprKind::Field { base, field, arrow } => {
            h.operator(if *arrow { "->" } else { "." });
            h.operand(field.clone());
            walk_expr(base, m, h);
        }
        ExprKind::Unary { op, operand } => {
            h.operator(match op {
                UnOp::Neg => "neg",
                UnOp::Not => "!",
                UnOp::Deref => "*u",
                UnOp::Addr => "&u",
            });
            walk_expr(operand, m, h);
        }
        ExprKind::Binary { op, lhs, rhs } => {
            if matches!(op, BinOp::And | BinOp::Or) {
                m.cyclomatic += 1;
            }
            h.operator(&format!("{op:?}"));
            walk_expr(lhs, m, h);
            walk_expr(rhs, m, h);
        }
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            m.cyclomatic += 1;
            h.operator("?:");
            walk_expr(cond, m, h);
            walk_expr(then_e, m, h);
            walk_expr(else_e, m, h);
        }
        ExprKind::Call { name, args } => {
            m.calls += 1;
            h.operator("call");
            h.operand(name.clone());
            for a in args {
                walk_expr(a, m, h);
            }
        }
    }
}

/// How to distribute a fault budget over a program's functions (§6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AllocationStrategy {
    /// Every function equally likely — "all the possible software faults
    /// and locations are equally likely".
    Uniform,
    /// Proportional to the metrics-based fault-proneness score.
    MetricsGuided,
    /// Proportional to externally supplied per-function weights (the
    /// field-data case; weights normalise internally).
    FieldData(HashMap<String, f64>),
}

/// Apportion `n` injections over functions with largest-remainder
/// rounding; the result sums exactly to `n`.
///
/// Functions with zero weight receive no faults. If all weights are zero,
/// falls back to uniform.
pub fn allocate(
    metrics: &ProgramMetrics,
    strategy: &AllocationStrategy,
    n: usize,
) -> Vec<(String, usize)> {
    let weights: Vec<(String, f64)> = metrics
        .functions
        .iter()
        .map(|f| {
            let w = match strategy {
                AllocationStrategy::Uniform => 1.0,
                AllocationStrategy::MetricsGuided => f.proneness(),
                AllocationStrategy::FieldData(map) => map.get(&f.name).copied().unwrap_or(0.0),
            };
            (f.name.clone(), w.max(0.0))
        })
        .collect();
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let weights: Vec<(String, f64)> = if total <= 0.0 {
        let k = weights.len().max(1) as f64;
        weights.into_iter().map(|(n, _)| (n, 1.0 / k)).collect()
    } else {
        weights.into_iter().map(|(n, w)| (n, w / total)).collect()
    };
    let mut out: Vec<(String, usize, f64)> = weights
        .iter()
        .map(|(name, w)| {
            let exact = w * n as f64;
            (name.clone(), exact.floor() as usize, exact - exact.floor())
        })
        .collect();
    let assigned: usize = out.iter().map(|&(_, c, _)| c).sum();
    let mut leftover = n.saturating_sub(assigned);
    let mut order: Vec<usize> = (0..out.len()).collect();
    order.sort_by(|&a, &b| out[b].2.partial_cmp(&out[a].2).unwrap());
    for &i in &order {
        if leftover == 0 {
            break;
        }
        out[i].1 += 1;
        leftover -= 1;
    }
    out.into_iter().map(|(n, c, _)| (n, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_lang::parser::parse;

    fn metrics_of(src: &str) -> ProgramMetrics {
        measure(src, &parse(src).unwrap())
    }

    #[test]
    fn loc_skips_blanks_and_comments() {
        let src = "int a;\n\n// comment only\nint b; // trailing\n/* block\n   spans */\nint c;";
        assert_eq!(lines_of_code(src), 3);
    }

    #[test]
    fn straight_line_code_has_cyclomatic_one() {
        let m = metrics_of("void main() { int x; x = 1; x = 2; print_int(x); }");
        assert_eq!(m.functions[0].cyclomatic, 1);
        assert_eq!(m.functions[0].statements, 3);
    }

    #[test]
    fn decisions_raise_cyclomatic() {
        let m = metrics_of(
            "void main() {
               int x;
               x = 0;
               if (x > 0 && x < 10) { x = 1; }        // +1 if, +1 &&
               while (x < 5) { x = x + 1; }            // +1
               for (x = 0; x < 3; x = x + 1) { }       // +1
               x = (x > 0) ? x : 1;                    // +1
             }",
        );
        assert_eq!(m.functions[0].cyclomatic, 1 + 5);
    }

    #[test]
    fn nesting_depth_measured() {
        let m = metrics_of(
            "void main() {
               int i; int j;
               for (i = 0; i < 2; i = i + 1) {
                 for (j = 0; j < 2; j = j + 1) {
                   if (i == j) { print_int(i); }
                 }
               }
             }",
        );
        assert_eq!(m.functions[0].max_nesting, 3);
    }

    #[test]
    fn direct_recursion_detected() {
        let m = metrics_of(
            "int f(int n) { if (n < 1) { return 0; } return f(n - 1); }
             void main() { print_int(f(3)); }",
        );
        assert!(m.functions[0].recursive);
        assert!(!m.functions[1].recursive);
        assert!(m.any_recursive());
    }

    #[test]
    fn mutual_recursion_detected() {
        let src = "int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
                   int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
                   void main() { print_int(even(4)); }";
        let m = metrics_of(src);
        assert!(m.functions[0].recursive);
        assert!(m.functions[1].recursive);
    }

    #[test]
    fn dynamic_structures_flagged() {
        let m = metrics_of("void main() { int *p; p = malloc(8); free(p); }");
        assert!(m.functions[0].dynamic_structures);
        assert!(m.uses_dynamic_structures());
    }

    #[test]
    fn halstead_counts_accumulate() {
        let m = metrics_of("void main() { int x; x = 1 + 2 + 1; }");
        let h = &m.functions[0].halstead;
        // operators: =, Add(×2 occurrences, 1 distinct); operands: x, 1(×2), 2.
        assert_eq!(h.distinct_operators, 2);
        assert_eq!(h.total_operators, 3);
        assert_eq!(h.distinct_operands, 3);
        assert_eq!(h.total_operands, 4);
        assert!(h.volume() > 0.0);
        assert!(h.difficulty() > 0.0);
        assert!(h.effort() > 0.0);
    }

    #[test]
    fn allocation_sums_to_n_and_tracks_weights() {
        let m = metrics_of(
            "int simple(int a) { return a; }
             int hairy(int a) {
               int i; int s;
               s = 0;
               for (i = 0; i < a; i = i + 1) {
                 if (i % 2 == 0 && i > 2) { s = s + i; }
                 while (s > 100) { s = s - 10; }
               }
               return s;
             }
             void main() { print_int(hairy(simple(5))); }",
        );
        for strategy in [
            AllocationStrategy::Uniform,
            AllocationStrategy::MetricsGuided,
        ] {
            let alloc = allocate(&m, &strategy, 30);
            assert_eq!(
                alloc.iter().map(|&(_, c)| c).sum::<usize>(),
                30,
                "{strategy:?}"
            );
        }
        let guided = allocate(&m, &AllocationStrategy::MetricsGuided, 30);
        let count =
            |name: &str, a: &[(String, usize)]| a.iter().find(|(n, _)| n == name).unwrap().1;
        assert!(
            count("hairy", &guided) > count("simple", &guided),
            "complex functions should attract more injections: {guided:?}"
        );
    }

    #[test]
    fn field_data_allocation_uses_weights() {
        let m = metrics_of(
            "int a() { return 1; } int b() { return 2; } void main() { print_int(a() + b()); }",
        );
        let mut weights = HashMap::new();
        weights.insert("a".to_string(), 3.0);
        weights.insert("b".to_string(), 1.0);
        let alloc = allocate(&m, &AllocationStrategy::FieldData(weights), 8);
        let count = |name: &str| alloc.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(count("a"), 6);
        assert_eq!(count("b"), 2);
        assert_eq!(count("main"), 0);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let m = metrics_of("int a() { return 1; } void main() { print_int(a()); }");
        let alloc = allocate(&m, &AllocationStrategy::FieldData(HashMap::new()), 4);
        assert_eq!(alloc.iter().map(|&(_, c)| c).sum::<usize>(), 4);
        assert!(alloc.iter().all(|&(_, c)| c == 2));
    }
}
