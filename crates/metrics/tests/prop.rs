//! Property tests for metric computation and injection allocation.

use proptest::prelude::*;
use std::collections::HashMap;
use swifi_lang::parser::parse;
use swifi_metrics::{allocate, lines_of_code, measure, AllocationStrategy};

/// Generate a small random MiniC program: `nf` trivial functions plus
/// main, each with `stmts` assignments and `ifs` conditionals.
fn gen_program(nf: usize, stmts: usize, ifs: usize) -> String {
    let mut src = String::new();
    for f in 0..nf {
        src.push_str(&format!("int f{f}(int a) {{\n  int x;\n"));
        for s in 0..stmts {
            src.push_str(&format!("  x = a + {s};\n"));
        }
        for i in 0..ifs {
            src.push_str(&format!("  if (x > {i}) {{ x = x - 1; }}\n"));
        }
        src.push_str("  return x;\n}\n");
    }
    src.push_str("void main() {\n  int r;\n  r = 0;\n");
    for f in 0..nf {
        src.push_str(&format!("  r = r + f{f}(r);\n"));
    }
    src.push_str("  print_int(r);\n}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cyclomatic complexity is exactly 1 + decisions for the generated
    /// shape, for every function.
    #[test]
    fn cyclomatic_matches_construction(nf in 1usize..5, stmts in 0usize..6, ifs in 0usize..6) {
        let src = gen_program(nf, stmts, ifs);
        let ast = parse(&src).unwrap();
        let m = measure(&src, &ast);
        for f in &m.functions {
            if f.name.starts_with('f') {
                prop_assert_eq!(f.cyclomatic, 1 + ifs, "{}", f.name);
            }
        }
    }

    /// Allocation always sums to the budget, for every strategy, on
    /// arbitrary generated programs.
    #[test]
    fn allocation_sums(nf in 1usize..6, budget in 0usize..100) {
        let src = gen_program(nf, 2, 2);
        let ast = parse(&src).unwrap();
        let m = measure(&src, &ast);
        for strategy in [
            AllocationStrategy::Uniform,
            AllocationStrategy::MetricsGuided,
            AllocationStrategy::FieldData(HashMap::new()),
        ] {
            let alloc = allocate(&m, &strategy, budget);
            prop_assert_eq!(alloc.iter().map(|&(_, c)| c).sum::<usize>(), budget);
            prop_assert_eq!(alloc.len(), m.functions.len());
        }
    }

    /// LoC counting is insensitive to appended comments and blank lines.
    #[test]
    fn loc_ignores_comment_noise(blank in 0usize..5, comments in 0usize..5) {
        let base = gen_program(2, 2, 1);
        let mut noisy = base.clone();
        for _ in 0..blank {
            noisy.push('\n');
        }
        for i in 0..comments {
            noisy.push_str(&format!("// trailing comment {i}\n"));
        }
        noisy.push_str("/* block\n comment */\n");
        prop_assert_eq!(lines_of_code(&base), lines_of_code(&noisy));
    }

    /// Halstead length and vocabulary grow monotonically with statements.
    #[test]
    fn halstead_grows_with_code(stmts in 1usize..6) {
        let small = gen_program(1, stmts, 0);
        let big = gen_program(1, stmts + 1, 0);
        let hm = |s: &str| {
            let ast = parse(s).unwrap();
            measure(s, &ast).functions[0].halstead.length()
        };
        prop_assert!(hm(&big) > hm(&small));
    }
}
