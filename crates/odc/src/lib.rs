//! # swifi-odc — Orthogonal Defect Classification and error-type taxonomy
//!
//! The conceptual vocabulary of *Madeira, Costa, Vieira — "On the Emulation
//! of Software Faults by Software Fault Injection" (DSN 2000)*:
//!
//! - the ODC defect **types** and system-test **triggers** (§3 of the
//!   paper),
//! - the paper's **Table 3** subset of injectable error types, split into
//!   assignment errors ([`AssignErrorType`]) and checking errors
//!   ([`CheckErrorType`]),
//! - an approximate ODC **field distribution** ([`FieldDistribution`])
//!   standing in for the Christmansson & Chillarege field data the paper
//!   cites (reference \[5\]), including the "algorithm + function ≈ 44 % of
//!   faults cannot be emulated" headline,
//! - the **fault-exposure chain** `p1·p2·p3` of the paper's Figure 2
//!   ([`ExposureModel`]),
//! - the ODC-classified **source-level mutation operators**
//!   ([`MutationOperator`]) that extend injection beyond the Table-3
//!   binary error types — covering the Algorithm/Function faults the
//!   paper found inemulable at machine-code level.

#![warn(missing_docs)]

pub mod errors;
pub mod exposure;
pub mod field;
pub mod mutation;
pub mod types;

pub use errors::{AssignErrorType, CheckErrorType};
pub use exposure::ExposureModel;
pub use field::FieldDistribution;
pub use mutation::MutationOperator;
pub use types::{DefectType, SystemTestTrigger};
