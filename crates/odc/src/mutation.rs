//! ODC-classified G-SWFIT mutation operators (source-level fault model).
//!
//! The paper's §5 conclusion C is that *algorithm* and *function* faults —
//! ≈ 44 % of field faults — cannot be emulated by machine-code SWIFI.
//! Injecting at the **source** representation closes that gap: each
//! operator below mimics one of the most frequent field-fault patterns
//! (the G-SWFIT operator library of Durães & Madeira, itself mined from
//! the same ODC-classified field data) and is tagged with the ODC defect
//! type of the fault it emulates, so source campaigns can reuse the
//! [`FieldDistribution`](crate::FieldDistribution) weighting that drives
//! the binary campaigns.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::DefectType;

/// A source-level mutation operator, ODC-classified.
///
/// Operator ids are **stable**: they identify mutants across sessions and
/// appear in checkpoints, reports and golden files. Do not renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MutationOperator {
    /// `MIF` — missing if construct plus statements (G-SWFIT *MIFS*):
    /// delete an entire `if` statement including its branches.
    MissingIfConstruct,
    /// `WBC` — wrong branch condition (G-SWFIT *WLEC*): reverse the
    /// relational operator of a comparison inside an `if`/`while`/`for`
    /// condition (`<` ↔ `>`, `<=` ↔ `>=`, `==` ↔ `!=`).
    WrongBranchCondition,
    /// `MAS` — missing assignment (G-SWFIT *MVAV*): delete an assignment
    /// statement.
    MissingAssignment,
    /// `OBB` — off-by-one loop bound: widen or narrow a loop condition's
    /// relational operator by one (`<` ↔ `<=`, `>` ↔ `>=`).
    OffByOneBound,
    /// `WCV` — wrong constant in assignment (G-SWFIT *WVAV*): perturb an
    /// integer literal on the right-hand side of an assignment or
    /// initializer by one.
    WrongConstant,
    /// `MFC` — missing function call (G-SWFIT *MFC*): delete a
    /// call-expression statement.
    MissingFunctionCall,
    /// `WCA` — wrong argument in function call (G-SWFIT *WPFV*): perturb
    /// one argument expression of a call by one.
    WrongCallArgument,
}

impl MutationOperator {
    /// All operators, in the stable enumeration order used by mutant ids
    /// and campaign checkpoints.
    pub const ALL: [MutationOperator; 7] = [
        MutationOperator::MissingIfConstruct,
        MutationOperator::WrongBranchCondition,
        MutationOperator::MissingAssignment,
        MutationOperator::OffByOneBound,
        MutationOperator::WrongConstant,
        MutationOperator::MissingFunctionCall,
        MutationOperator::WrongCallArgument,
    ];

    /// Stable three-letter operator id (used in mutant ids and reports).
    pub fn id(self) -> &'static str {
        match self {
            MutationOperator::MissingIfConstruct => "MIF",
            MutationOperator::WrongBranchCondition => "WBC",
            MutationOperator::MissingAssignment => "MAS",
            MutationOperator::OffByOneBound => "OBB",
            MutationOperator::WrongConstant => "WCV",
            MutationOperator::MissingFunctionCall => "MFC",
            MutationOperator::WrongCallArgument => "WCA",
        }
    }

    /// Look an operator up by its stable id.
    pub fn from_id(id: &str) -> Option<MutationOperator> {
        MutationOperator::ALL.into_iter().find(|op| op.id() == id)
    }

    /// The ODC defect type of the field fault this operator emulates.
    ///
    /// This is the bridge to the paper's field-data weighting: a source
    /// campaign apportions its mutant budget over defect types with
    /// [`FieldDistribution::apportion_among`](crate::FieldDistribution::apportion_among),
    /// exactly as §6.1 distributes binary errors.
    pub fn defect_type(self) -> DefectType {
        match self {
            // Dropping a whole decision construct re-structures the
            // algorithm — the kind of fault §5 found inemulable.
            MutationOperator::MissingIfConstruct => DefectType::Algorithm,
            MutationOperator::WrongBranchCondition => DefectType::Checking,
            MutationOperator::MissingAssignment => DefectType::Assignment,
            MutationOperator::OffByOneBound => DefectType::Checking,
            MutationOperator::WrongConstant => DefectType::Assignment,
            // A missing capability invocation requires a design-level fix.
            MutationOperator::MissingFunctionCall => DefectType::Function,
            // Wrong values crossing a call boundary are interface faults.
            MutationOperator::WrongCallArgument => DefectType::Interface,
        }
    }

    /// Short human description of the code change.
    pub fn description(self) -> &'static str {
        match self {
            MutationOperator::MissingIfConstruct => "missing if construct plus statements",
            MutationOperator::WrongBranchCondition => "wrong branch condition (reversed relation)",
            MutationOperator::MissingAssignment => "missing assignment statement",
            MutationOperator::OffByOneBound => "off-by-one loop bound",
            MutationOperator::WrongConstant => "wrong constant in assignment",
            MutationOperator::MissingFunctionCall => "missing function call",
            MutationOperator::WrongCallArgument => "wrong argument in function call",
        }
    }
}

impl fmt::Display for MutationOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_stable() {
        let ids: Vec<&str> = MutationOperator::ALL.iter().map(|op| op.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), MutationOperator::ALL.len());
        // Pin the stable ids: checkpoints and golden files depend on them.
        assert_eq!(ids, ["MIF", "WBC", "MAS", "OBB", "WCV", "MFC", "WCA"]);
        for op in MutationOperator::ALL {
            assert_eq!(MutationOperator::from_id(op.id()), Some(op));
        }
        assert_eq!(MutationOperator::from_id("XXX"), None);
    }

    #[test]
    fn operators_span_the_inemulable_types() {
        // The whole point of the source representation: Algorithm and
        // Function faults — beyond any binary SWIFI tool — are covered.
        let types: Vec<DefectType> = MutationOperator::ALL
            .iter()
            .map(|op| op.defect_type())
            .collect();
        assert!(types.contains(&DefectType::Algorithm));
        assert!(types.contains(&DefectType::Function));
        assert!(types.contains(&DefectType::Assignment));
        assert!(types.contains(&DefectType::Checking));
        assert!(types.contains(&DefectType::Interface));
    }

    #[test]
    fn serde_round_trip() {
        for op in MutationOperator::ALL {
            let json = serde_json::to_string(&op).unwrap();
            let back: MutationOperator = serde_json::from_str(&json).unwrap();
            assert_eq!(op, back);
        }
    }
}
