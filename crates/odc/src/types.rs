//! ODC defect types and system-test triggers (paper §3).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The six code-related ODC defect types, as enumerated in §3 of the paper.
///
/// A defect's *type* describes the change in the source code needed to
/// correct it; the paper's central result is that SWIFI tools can emulate
/// some types ([`DefectType::Assignment`], [`DefectType::Checking`]) but
/// not others ([`DefectType::Algorithm`], [`DefectType::Function`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DefectType {
    /// Values assigned incorrectly or not assigned.
    Assignment,
    /// Missing or incorrect validation of data, or incorrect loop or
    /// conditional statements.
    Checking,
    /// Errors in the interaction among components, modules, device
    /// drivers, call statements, etc.
    Interface,
    /// Missing or incorrect serialization of shared resources.
    TimingSerialization,
    /// Incorrect or missing implementation fixable by re-implementing an
    /// algorithm or data structure, without a design change.
    Algorithm,
    /// Incorrect or missing implementation of a capability requiring a
    /// formal design change.
    Function,
}

impl DefectType {
    /// All six types in the paper's order.
    pub const ALL: [DefectType; 6] = [
        DefectType::Assignment,
        DefectType::Checking,
        DefectType::Interface,
        DefectType::TimingSerialization,
        DefectType::Algorithm,
        DefectType::Function,
    ];

    /// The paper's §5 verdict on machine-code-level SWIFI emulability of
    /// this defect type.
    pub fn swifi_emulable(self) -> Emulability {
        match self {
            DefectType::Assignment | DefectType::Checking => Emulability::Emulable,
            DefectType::Interface => Emulability::Partially,
            DefectType::TimingSerialization => Emulability::Partially,
            DefectType::Algorithm | DefectType::Function => Emulability::NotEmulable,
        }
    }
}

impl fmt::Display for DefectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DefectType::Assignment => "assignment",
            DefectType::Checking => "checking",
            DefectType::Interface => "interface",
            DefectType::TimingSerialization => "timing/serialization",
            DefectType::Algorithm => "algorithm",
            DefectType::Function => "function",
        };
        f.write_str(s)
    }
}

/// Summary emulability verdict for a whole defect type (paper §5,
/// conclusions A/B/C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Emulability {
    /// Generally emulable with instruction/operand-level corruption.
    Emulable,
    /// Emulable for some faults of the type, depending on specifics.
    Partially,
    /// Beyond any machine-code-level SWIFI tool.
    NotEmulable,
}

/// ODC *system test* trigger classes — the broad operational conditions
/// under which field faults surface (paper §3). All experiments in the
/// paper (and here) run under [`SystemTestTrigger::NormalMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemTestTrigger {
    /// Fault exposed during startup or restart.
    StartupRestart,
    /// Exposed under workload volume/stress.
    WorkloadStress,
    /// Exposed during recovery or exception handling.
    RecoveryException,
    /// Exposed by a particular hardware/software configuration.
    HardwareSoftwareConfig,
    /// Exposed when everything was supposed to work normally.
    NormalMode,
}

impl SystemTestTrigger {
    /// All trigger classes.
    pub const ALL: [SystemTestTrigger; 5] = [
        SystemTestTrigger::StartupRestart,
        SystemTestTrigger::WorkloadStress,
        SystemTestTrigger::RecoveryException,
        SystemTestTrigger::HardwareSoftwareConfig,
        SystemTestTrigger::NormalMode,
    ];
}

impl fmt::Display for SystemTestTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SystemTestTrigger::StartupRestart => "startup/restart",
            SystemTestTrigger::WorkloadStress => "workload volume/stress",
            SystemTestTrigger::RecoveryException => "recovery/exception",
            SystemTestTrigger::HardwareSoftwareConfig => "hardware/software configuration",
            SystemTestTrigger::NormalMode => "normal mode",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulability_matches_paper_verdicts() {
        use Emulability::*;
        assert_eq!(DefectType::Assignment.swifi_emulable(), Emulable);
        assert_eq!(DefectType::Checking.swifi_emulable(), Emulable);
        assert_eq!(DefectType::Algorithm.swifi_emulable(), NotEmulable);
        assert_eq!(DefectType::Function.swifi_emulable(), NotEmulable);
        assert_eq!(DefectType::Interface.swifi_emulable(), Partially);
    }

    #[test]
    fn display_is_lowercase() {
        for t in DefectType::ALL {
            let s = t.to_string();
            assert_eq!(s, s.to_lowercase());
        }
    }

    #[test]
    fn serde_round_trip() {
        for t in DefectType::ALL {
            let json = serde_json::to_string(&t).unwrap();
            let back: DefectType = serde_json::from_str(&json).unwrap();
            assert_eq!(t, back);
        }
    }
}
