//! Approximate ODC field-data distribution over defect types.
//!
//! The paper's reference \[5\] (Christmansson & Chillarege, FTCS-26 1996)
//! analysed field defects of a large IBM operating-system product,
//! classified with ODC. The paper uses that data for exactly two things:
//!
//! 1. the headline that *algorithm + function* faults — the ones no SWIFI
//!    tool can emulate — account for **≈ 44 %** of field faults (§5,
//!    conclusion C);
//! 2. distributing injected errors over software components in proportion
//!    to observed fault densities (§6.1).
//!
//! The exact per-type percentages are not reprinted in the reproduced
//! paper, so [`FieldDistribution::approx_field_data`] encodes an
//! approximation that is consistent with constraint (1) and with the
//! relative ordering reported in the ODC literature. This substitution is
//! recorded in DESIGN.md.

use serde::{Deserialize, Serialize};

use crate::types::{DefectType, Emulability};

/// A probability distribution over the six ODC defect types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldDistribution {
    fractions: [(DefectType, f64); 6],
}

impl FieldDistribution {
    /// The approximation of the \[5\] field data used throughout this
    /// reproduction (fractions sum to 1).
    pub fn approx_field_data() -> FieldDistribution {
        FieldDistribution {
            fractions: [
                (DefectType::Assignment, 0.214),
                (DefectType::Checking, 0.175),
                (DefectType::Interface, 0.131),
                (DefectType::TimingSerialization, 0.040),
                (DefectType::Algorithm, 0.404),
                (DefectType::Function, 0.036),
            ],
        }
    }

    /// Build a custom distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` when fractions are negative or do not sum to 1
    /// (within 1e-6).
    pub fn new(fractions: [(DefectType, f64); 6]) -> Result<FieldDistribution, String> {
        let sum: f64 = fractions.iter().map(|&(_, f)| f).sum();
        if fractions.iter().any(|&(_, f)| f < 0.0) {
            return Err("fractions must be non-negative".to_string());
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("fractions must sum to 1, got {sum}"));
        }
        let mut seen = [false; 6];
        for (t, _) in &fractions {
            let i = DefectType::ALL.iter().position(|x| x == t).unwrap();
            if seen[i] {
                return Err(format!("duplicate defect type {t}"));
            }
            seen[i] = true;
        }
        Ok(FieldDistribution { fractions })
    }

    /// Fraction of field faults of the given type.
    pub fn fraction(&self, t: DefectType) -> f64 {
        self.fractions
            .iter()
            .find(|&&(x, _)| x == t)
            .map(|&(_, f)| f)
            .unwrap_or(0.0)
    }

    /// Fraction of field faults that *no* machine-code-level SWIFI tool can
    /// emulate (algorithm + function) — the paper's ≈ 44 % headline.
    pub fn not_emulable_fraction(&self) -> f64 {
        DefectType::ALL
            .iter()
            .filter(|t| t.swifi_emulable() == Emulability::NotEmulable)
            .map(|&t| self.fraction(t))
            .sum()
    }

    /// Iterate `(type, fraction)` pairs in the canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (DefectType, f64)> + '_ {
        self.fractions.iter().copied()
    }

    /// Apportion `n` faults over the defect types with largest-remainder
    /// rounding, so the counts sum exactly to `n`. This is how §6.1's
    /// "field data distributes the injected errors" step is realised.
    pub fn apportion(&self, n: usize) -> Vec<(DefectType, usize)> {
        let mut items: Vec<(DefectType, usize, f64)> = self
            .fractions
            .iter()
            .map(|&(t, f)| {
                let exact = f * n as f64;
                let floor = exact.floor() as usize;
                (t, floor, exact - exact.floor())
            })
            .collect();
        let assigned: usize = items.iter().map(|&(_, c, _)| c).sum();
        let mut leftover = n - assigned;
        // Largest remainders first; ties broken by canonical order.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| items[b].2.partial_cmp(&items[a].2).unwrap());
        for &i in &order {
            if leftover == 0 {
                break;
            }
            items[i].1 += 1;
            leftover -= 1;
        }
        items.into_iter().map(|(t, c, _)| (t, c)).collect()
    }

    /// Apportion `n` faults over a *subset* of the defect types,
    /// renormalising the field fractions over that subset (largest-remainder
    /// rounding, counts sum exactly to `n`).
    ///
    /// Source-level campaigns use this: their mutation operators cover only
    /// the defect types that actually have operators, so the budget is
    /// distributed over the representable subset in field-data proportion.
    /// Types with zero field fraction still receive a share only through
    /// remainder rounding; an empty subset yields an empty allocation.
    pub fn apportion_among(&self, types: &[DefectType], n: usize) -> Vec<(DefectType, usize)> {
        let total: f64 = types.iter().map(|&t| self.fraction(t)).sum();
        if types.is_empty() {
            return Vec::new();
        }
        let mut items: Vec<(DefectType, usize, f64)> = types
            .iter()
            .map(|&t| {
                // A zero-mass subset degenerates to a uniform split.
                let f = if total > 0.0 {
                    self.fraction(t) / total
                } else {
                    1.0 / types.len() as f64
                };
                let exact = f * n as f64;
                let floor = exact.floor() as usize;
                (t, floor, exact - exact.floor())
            })
            .collect();
        let assigned: usize = items.iter().map(|&(_, c, _)| c).sum();
        let mut leftover = n - assigned;
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| items[b].2.partial_cmp(&items[a].2).unwrap());
        for &i in &order {
            if leftover == 0 {
                break;
            }
            items[i].1 += 1;
            leftover -= 1;
        }
        items.into_iter().map(|(t, c, _)| (t, c)).collect()
    }
}

impl Default for FieldDistribution {
    fn default() -> FieldDistribution {
        FieldDistribution::approx_field_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_data_sums_to_one() {
        let d = FieldDistribution::approx_field_data();
        let sum: f64 = d.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn forty_four_percent_not_emulable() {
        // "this set of faults … accounts for nearly 44% of the software
        // faults" — paper §5, conclusion C.
        let d = FieldDistribution::approx_field_data();
        assert!((d.not_emulable_fraction() - 0.44).abs() < 0.005);
    }

    #[test]
    fn algorithm_dominates() {
        let d = FieldDistribution::approx_field_data();
        for t in DefectType::ALL {
            if t != DefectType::Algorithm {
                assert!(d.fraction(DefectType::Algorithm) > d.fraction(t));
            }
        }
    }

    #[test]
    fn apportion_sums_exactly() {
        let d = FieldDistribution::approx_field_data();
        for n in [0, 1, 7, 100, 1234] {
            let parts = d.apportion(n);
            assert_eq!(parts.iter().map(|&(_, c)| c).sum::<usize>(), n);
        }
    }

    #[test]
    fn apportion_tracks_fractions() {
        let d = FieldDistribution::approx_field_data();
        let parts = d.apportion(1000);
        for (t, c) in parts {
            let exact = d.fraction(t) * 1000.0;
            assert!((c as f64 - exact).abs() <= 1.0, "{t}: {c} vs {exact}");
        }
    }

    #[test]
    fn new_validates() {
        assert!(FieldDistribution::new([
            (DefectType::Assignment, 0.5),
            (DefectType::Checking, 0.5),
            (DefectType::Interface, 0.0),
            (DefectType::TimingSerialization, 0.0),
            (DefectType::Algorithm, 0.0),
            (DefectType::Function, 0.0),
        ])
        .is_ok());
        assert!(FieldDistribution::new([
            (DefectType::Assignment, 0.9),
            (DefectType::Checking, 0.5),
            (DefectType::Interface, 0.0),
            (DefectType::TimingSerialization, 0.0),
            (DefectType::Algorithm, 0.0),
            (DefectType::Function, 0.0),
        ])
        .is_err());
        assert!(FieldDistribution::new([
            (DefectType::Assignment, 0.5),
            (DefectType::Assignment, 0.5),
            (DefectType::Interface, 0.0),
            (DefectType::TimingSerialization, 0.0),
            (DefectType::Algorithm, 0.0),
            (DefectType::Function, 0.0),
        ])
        .is_err());
    }
}
