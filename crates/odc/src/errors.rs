//! The paper's Table 3: the subset of error types injected to emulate
//! assignment- and checking-class software faults.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Assignment error types (Table 3 / Figure 9 of the paper).
///
/// Applied to the store instruction that commits an assignment statement:
/// the three value corruptions ride the data bus; `NoAssign` erases the
/// store itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AssignErrorType {
    /// `value` → `value + 1`.
    ValuePlusOne,
    /// `value` → `value - 1`.
    ValueMinusOne,
    /// `value` → unassigned (the store never happens).
    NoAssign,
    /// `value` → random value.
    Random,
}

impl AssignErrorType {
    /// All four types in the paper's Figure 9 order.
    pub const ALL: [AssignErrorType; 4] = [
        AssignErrorType::ValuePlusOne,
        AssignErrorType::ValueMinusOne,
        AssignErrorType::NoAssign,
        AssignErrorType::Random,
    ];

    /// Display label matching the paper's Figure 9 x-axis.
    pub fn label(self) -> &'static str {
        match self {
            AssignErrorType::ValuePlusOne => "value +1",
            AssignErrorType::ValueMinusOne => "value -1",
            AssignErrorType::NoAssign => "no assign",
            AssignErrorType::Random => "random",
        }
    }
}

impl fmt::Display for AssignErrorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Checking error types (Table 3 / Figure 10 of the paper), named by the
/// `original → injected` operator pairs on the Figure 10 x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CheckErrorType {
    /// `<=` → `<`
    LeToLt,
    /// `<` → `<=`
    LtToLe,
    /// `>` → `>=`
    GtToGe,
    /// `>=` → `>`
    GeToGt,
    /// `=` → `!=`
    EqToNe,
    /// `=` → `>=`
    EqToGe,
    /// `=` → `<=`
    EqToLe,
    /// `!=` → `=`
    NeToEq,
    /// `&&` → `||`
    AndToOr,
    /// `||` → `&&`
    OrToAnd,
    /// condition stuck at false (`true` → `false`)
    TrueToFalse,
    /// condition stuck at true (`false` → `true`)
    FalseToTrue,
    /// array index in a check: `[i]` → `[i+1]` (only for checking over
    /// arrays, per Table 3)
    IndexPlus,
    /// array index in a check: `[i]` → `[i-1]`
    IndexMinus,
}

impl CheckErrorType {
    /// All error types, in the paper's Figure 10 presentation order.
    pub const ALL: [CheckErrorType; 14] = [
        CheckErrorType::LeToLt,
        CheckErrorType::LtToLe,
        CheckErrorType::EqToNe,
        CheckErrorType::EqToGe,
        CheckErrorType::EqToLe,
        CheckErrorType::AndToOr,
        CheckErrorType::OrToAnd,
        CheckErrorType::IndexPlus,
        CheckErrorType::IndexMinus,
        CheckErrorType::TrueToFalse,
        CheckErrorType::FalseToTrue,
        CheckErrorType::NeToEq,
        CheckErrorType::GtToGe,
        CheckErrorType::GeToGt,
    ];

    /// Display label in the paper's pair notation (e.g. `"<= <"`).
    pub fn label(self) -> &'static str {
        match self {
            CheckErrorType::LeToLt => "<= <",
            CheckErrorType::LtToLe => "< <=",
            CheckErrorType::GtToGe => "> >=",
            CheckErrorType::GeToGt => ">= >",
            CheckErrorType::EqToNe => "= !=",
            CheckErrorType::EqToGe => "= >=",
            CheckErrorType::EqToLe => "= <=",
            CheckErrorType::NeToEq => "!= =",
            CheckErrorType::AndToOr => "and or",
            CheckErrorType::OrToAnd => "or and",
            CheckErrorType::TrueToFalse => "true false",
            CheckErrorType::FalseToTrue => "false true",
            CheckErrorType::IndexPlus => "[i] [i+1]",
            CheckErrorType::IndexMinus => "[i] [i-1]",
        }
    }
}

impl fmt::Display for CheckErrorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_labels_unique() {
        let mut labels: Vec<_> = CheckErrorType::ALL.iter().map(|t| t.label()).collect();
        labels.extend(AssignErrorType::ALL.iter().map(|t| t.label()));
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn counts_match_paper_tables() {
        assert_eq!(
            AssignErrorType::ALL.len(),
            4,
            "Figure 9 has four assignment error types"
        );
        assert_eq!(CheckErrorType::ALL.len(), 14);
    }

    #[test]
    fn serde_round_trip() {
        for t in CheckErrorType::ALL {
            let json = serde_json::to_string(&t).unwrap();
            assert_eq!(t, serde_json::from_str::<CheckErrorType>(&json).unwrap());
        }
        for t in AssignErrorType::ALL {
            let json = serde_json::to_string(&t).unwrap();
            assert_eq!(t, serde_json::from_str::<AssignErrorType>(&json).unwrap());
        }
    }
}
