//! The fault-exposure probability chain of the paper's Figure 2.
//!
//! A software fault leads to a failure only through the chain
//!
//! ```text
//! software fault ──p1──▶ faulty code executed ──p2──▶ errors generated
//!                ──p3──▶ failure
//! ```
//!
//! Injecting *errors* rather than faults short-circuits the chain by
//! forcing `p1 = p2 = 1` — the acceleration that raises the paper's
//! representativeness question, and the quantitative reason injected
//! faults hit so much harder than real ones (§6.4).

use serde::{Deserialize, Serialize};

/// The `p1·p2·p3` exposure model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExposureModel {
    /// Probability the faulty code is executed.
    pub p1: f64,
    /// Probability execution of the faulty code generates errors.
    pub p2: f64,
    /// Probability generated errors result in a failure.
    pub p3: f64,
}

impl ExposureModel {
    /// Build a model; each probability must lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the offending value otherwise.
    pub fn new(p1: f64, p2: f64, p3: f64) -> Result<ExposureModel, String> {
        for (name, v) in [("p1", p1), ("p2", p2), ("p3", p3)] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(format!("{name} = {v} is not a probability"));
            }
        }
        Ok(ExposureModel { p1, p2, p3 })
    }

    /// Probability that the fault results in a failure: `p1·p2·p3`.
    pub fn failure_probability(&self) -> f64 {
        self.p1 * self.p2 * self.p3
    }

    /// The model after error injection accelerates the chain
    /// (`p1 = p2 = 1`), leaving only `p3`.
    pub fn accelerated(&self) -> ExposureModel {
        ExposureModel {
            p1: 1.0,
            p2: 1.0,
            p3: self.p3,
        }
    }

    /// Factor by which injection inflates the failure probability
    /// (`∞`-free: returns `None` when the original probability is zero).
    pub fn acceleration_factor(&self) -> Option<f64> {
        let orig = self.failure_probability();
        if orig == 0.0 {
            None
        } else {
            Some(self.accelerated().failure_probability() / orig)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_multiplies() {
        let m = ExposureModel::new(0.5, 0.4, 0.25).unwrap();
        assert!((m.failure_probability() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn acceleration_forces_execution_and_error() {
        let m = ExposureModel::new(0.1, 0.2, 0.3).unwrap();
        let a = m.accelerated();
        assert_eq!((a.p1, a.p2), (1.0, 1.0));
        assert!((a.failure_probability() - 0.3).abs() < 1e-12);
        assert!((m.acceleration_factor().unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_exposure_has_no_factor() {
        let m = ExposureModel::new(0.0, 0.5, 0.5).unwrap();
        assert_eq!(m.acceleration_factor(), None);
    }

    #[test]
    fn invalid_probabilities_rejected() {
        assert!(ExposureModel::new(-0.1, 0.5, 0.5).is_err());
        assert!(ExposureModel::new(0.5, 1.5, 0.5).is_err());
        assert!(ExposureModel::new(0.5, 0.5, f64::NAN).is_err());
    }
}
