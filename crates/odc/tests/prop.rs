//! Property tests for the ODC taxonomy utilities.

use proptest::prelude::*;
use swifi_odc::{AssignErrorType, CheckErrorType, DefectType, ExposureModel, FieldDistribution};

fn arb_fractions() -> impl Strategy<Value = [f64; 6]> {
    // Six non-negative weights, normalised to sum to 1.
    proptest::array::uniform6(0.0f64..100.0).prop_filter_map("non-degenerate", |w| {
        let sum: f64 = w.iter().sum();
        if sum <= 0.0 {
            return None;
        }
        let mut out = [0.0; 6];
        for (o, v) in out.iter_mut().zip(&w) {
            *o = v / sum;
        }
        Some(out)
    })
}

fn dist_from(fracs: [f64; 6]) -> FieldDistribution {
    let pairs: Vec<(DefectType, f64)> = DefectType::ALL
        .iter()
        .copied()
        .zip(fracs.iter().copied())
        .collect();
    FieldDistribution::new(pairs.try_into().expect("six entries")).expect("normalised")
}

proptest! {
    /// Apportioning any normalised distribution over any total yields
    /// counts that sum exactly to the total.
    #[test]
    fn apportion_is_exact(fracs in arb_fractions(), n in 0usize..5000) {
        let d = dist_from(fracs);
        let parts = d.apportion(n);
        prop_assert_eq!(parts.iter().map(|&(_, c)| c).sum::<usize>(), n);
    }

    /// Largest-remainder apportioning never misses an exact share by more
    /// than one unit.
    #[test]
    fn apportion_is_fair(fracs in arb_fractions(), n in 1usize..5000) {
        let d = dist_from(fracs);
        for (t, c) in d.apportion(n) {
            let exact = d.fraction(t) * n as f64;
            prop_assert!(
                (c as f64 - exact).abs() <= 1.0,
                "{t}: {c} vs exact {exact}"
            );
        }
    }

    /// The not-emulable fraction is always the algorithm+function mass.
    #[test]
    fn not_emulable_is_algorithm_plus_function(fracs in arb_fractions()) {
        let d = dist_from(fracs);
        let expect = d.fraction(DefectType::Algorithm) + d.fraction(DefectType::Function);
        prop_assert!((d.not_emulable_fraction() - expect).abs() < 1e-12);
    }

    /// Exposure acceleration never decreases failure probability, and the
    /// accelerated model's probability is exactly p3.
    #[test]
    fn acceleration_monotone(
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
        p3 in 0.0f64..=1.0,
    ) {
        let m = ExposureModel::new(p1, p2, p3).unwrap();
        let a = m.accelerated();
        prop_assert!(a.failure_probability() >= m.failure_probability() - 1e-15);
        prop_assert!((a.failure_probability() - p3).abs() < 1e-15);
    }
}

#[test]
fn error_type_orderings_are_total_and_stable() {
    // BTreeMap keys in campaign results rely on Ord being consistent.
    let mut check = CheckErrorType::ALL.to_vec();
    check.sort();
    check.dedup();
    assert_eq!(check.len(), CheckErrorType::ALL.len());
    let mut assign = AssignErrorType::ALL.to_vec();
    assign.sort();
    assign.dedup();
    assert_eq!(assign.len(), AssignErrorType::ALL.len());
}
