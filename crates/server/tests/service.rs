//! End-to-end service tests over real TCP on a loopback port.
//!
//! The server runs with [`WorkerMode::InProcess`] so the tests exercise
//! the whole protocol — accept loop, event stream, shard orchestration,
//! checkpoint merge, report rendering — without depending on a built
//! `swifi` binary (process-mode fan-out is covered by
//! `scripts/server_smoke.sh`, which drives the real executable).

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

use swifi_campaign::report::{class_campaign_report, source_campaign_report};
use swifi_campaign::section6::{class_campaign_with, CampaignScale};
use swifi_campaign::source::{source_campaign_with, SourceScale};
use swifi_campaign::CampaignOptions;
use swifi_server::protocol::{CampaignRequest, Driver, Event, Request};
use swifi_server::{request, serve, JobConfig, WorkerMode};

/// Drop the wall-clock lines (throughput, cache effectiveness, phase
/// timing) that legitimately differ between a replaying merge pass and
/// a fresh run — the same exclusion `resume_smoke.sh` and
/// `server_smoke.sh` apply. Everything else must match byte for byte.
fn stable_lines(report: &str) -> String {
    report
        .lines()
        .filter(|l| {
            ![
                "throughput:",
                "icache:",
                "blocks:",
                "prefix-fork:",
                "phases:",
            ]
            .iter()
            .any(|p| l.starts_with(p))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("swifi-server-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Start an in-process-mode server on a fresh loopback port; returns
/// the address and the join handle (joined via a `shutdown` request).
fn start_server(tag: &str) -> (String, std::thread::JoinHandle<()>, PathBuf) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let workdir = temp_dir(tag);
    let cfg = JobConfig {
        workdir: workdir.clone(),
        mode: WorkerMode::InProcess,
    };
    let handle = std::thread::spawn(move || serve(listener, cfg).unwrap());
    (addr, handle, workdir)
}

fn stop_server(addr: &str, handle: std::thread::JoinHandle<()>, workdir: &PathBuf) {
    request(addr, &Request::Shutdown, |_| {}).unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(workdir).ok();
}

fn submit(addr: &str, req: CampaignRequest) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    request(addr, &Request::Submit(req), |e| events.push(e.clone()))?;
    Ok(events)
}

fn class_request(shards: u64) -> CampaignRequest {
    CampaignRequest {
        driver: Driver::Class,
        target: "SOR".to_string(),
        seed: 77,
        inputs: 2,
        mutants: 1,
        shards,
        pool: 2,
        want_trace: false,
        want_metrics: false,
    }
}

#[test]
fn ping_pong() {
    let (addr, handle, workdir) = start_server("ping");
    let mut events = Vec::new();
    request(&addr, &Request::Ping, |e| events.push(e.clone())).unwrap();
    assert_eq!(events, vec![Event::Pong]);
    stop_server(&addr, handle, &workdir);
}

#[test]
fn unknown_target_is_a_streamed_error() {
    let (addr, handle, workdir) = start_server("badtarget");
    let mut req = class_request(2);
    req.target = "nope".to_string();
    let err = submit(&addr, req).unwrap_err();
    assert!(err.contains("unknown program `nope`"), "{err}");
    stop_server(&addr, handle, &workdir);
}

#[test]
fn malformed_request_lines_get_a_diagnosis() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, handle, workdir) = start_server("garbage");
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"not json at all\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    match Event::parse(&line).unwrap() {
        Event::Error { message } => assert!(message.contains("bad request line"), "{message}"),
        other => panic!("expected error event, got {other:?}"),
    }
    stop_server(&addr, handle, &workdir);
}

#[test]
fn sharded_class_campaign_reports_byte_identically() {
    let direct = class_campaign_with(
        &swifi_programs::program("SOR").unwrap(),
        CampaignScale {
            inputs_per_fault: 2,
        },
        77,
        &CampaignOptions::default(),
    )
    .unwrap();
    let expected = class_campaign_report(&direct);

    let (addr, handle, workdir) = start_server("classeq");
    let events = submit(&addr, class_request(3)).unwrap();
    stop_server(&addr, handle, &workdir);

    // The stream tells the whole story, in order.
    assert!(matches!(events[0], Event::Accepted { shards: 3, .. }));
    let starts = events
        .iter()
        .filter(|e| matches!(e, Event::ShardStart { .. }))
        .count();
    let clean = events
        .iter()
        .filter(|e| matches!(e, Event::ShardDone { ok: true, .. }))
        .count();
    assert_eq!((starts, clean), (3, 3));
    let merged = events
        .iter()
        .find_map(|e| match e {
            Event::Merged {
                records,
                shards_missing,
                duplicates,
                ..
            } => Some((*records, *shards_missing, *duplicates)),
            _ => None,
        })
        .expect("merged event");
    assert_eq!(merged.1, 0, "no shard went missing");
    assert_eq!(merged.2, 0, "shard ranges are disjoint");
    let phase_runs: u64 = events
        .iter()
        .filter_map(|e| match e {
            Event::Phase { runs, .. } => Some(*runs),
            _ => None,
        })
        .sum();
    assert_eq!(phase_runs, merged.0, "phase counts tile the records");
    assert_eq!(events.last(), Some(&Event::Done));

    // The oracle: the streamed report is byte-identical to the
    // single-process run.
    let report = events
        .iter()
        .find_map(|e| match e {
            Event::Report { text } => Some(text.clone()),
            _ => None,
        })
        .expect("report event");
    assert_eq!(stable_lines(&report), stable_lines(&expected));
}

#[test]
fn sharded_source_campaign_reports_byte_identically() {
    let direct = source_campaign_with(
        &swifi_programs::program("SOR").unwrap(),
        SourceScale {
            mutant_budget: 4,
            inputs_per_mutant: 2,
        },
        9,
        &CampaignOptions::default(),
    )
    .unwrap();
    let expected = source_campaign_report(&direct);

    let (addr, handle, workdir) = start_server("sourceeq");
    let events = submit(
        &addr,
        CampaignRequest {
            driver: Driver::Source,
            target: "SOR".to_string(),
            seed: 9,
            inputs: 2,
            mutants: 4,
            shards: 2,
            pool: 1,
            want_trace: false,
            want_metrics: false,
        },
    )
    .unwrap();
    stop_server(&addr, handle, &workdir);

    let report = events
        .iter()
        .find_map(|e| match e {
            Event::Report { text } => Some(text.clone()),
            _ => None,
        })
        .expect("report event");
    assert_eq!(stable_lines(&report), stable_lines(&expected));
}

#[test]
fn requested_telemetry_streams_back_merged_and_valid() {
    let (addr, handle, workdir) = start_server("telemetry");
    let mut req = class_request(2);
    req.want_trace = true;
    req.want_metrics = true;
    let events = submit(&addr, req).unwrap();
    stop_server(&addr, handle, &workdir);

    let metrics = events
        .iter()
        .find_map(|e| match e {
            Event::Metrics { text } => Some(text.clone()),
            _ => None,
        })
        .expect("metrics event");
    // The merged registry parses back and saw runs from both shards —
    // merging it exercises the histogram bucket-union path end to end.
    let registry = swifi_trace::metrics::MetricsRegistry::from_json(&metrics).unwrap();
    let snapshot = registry.to_json();
    assert!(snapshot.contains("run_latency_us"), "{snapshot}");
    assert!(snapshot.contains("\"runs\""), "{snapshot}");

    let trace = events
        .iter()
        .find_map(|e| match e {
            Event::Trace { text } => Some(text.clone()),
            _ => None,
        })
        .expect("trace event");
    // The merged trace is schema-valid and timestamp-ordered.
    swifi_trace::validate_chrome_trace(&trace).unwrap();
}
