//! Campaign-as-a-service for the SWIFI reproduction.
//!
//! `swifi serve` turns the experiment drivers into a long-running
//! daemon: a client submits a campaign (driver, target, seed, scale)
//! over a line-delimited JSON socket, the server splits the run
//! schedule into shards, runs each shard on a worker-process pool
//! against its own checkpoint, merges the shard checkpoints back into
//! one campaign, and streams progress — shard lifecycles, run counts
//! per phase, abnormal records, and finally the report — back down the
//! connection.
//!
//! The correctness story is inherited, not invented: shards are
//! checkpoint producers, merging is a keyed union under one validated
//! header, and the final report is folded by a resume pass that
//! replays every record through the same driver code the CLI runs.
//! A campaign sharded N ways therefore reports byte-identically to a
//! single-process run (the shard-equality oracle `server_smoke.sh`
//! and the resilience tests enforce), and a killed worker costs only
//! re-execution of its slice.

pub mod client;
pub mod job;
pub mod protocol;
pub mod server;

pub use client::request;
pub use job::{current_exe_mode, run_campaign, run_shard, shard_exec, JobConfig, WorkerMode};
pub use protocol::{parse_request, render_request, CampaignRequest, Driver, Event, Request};
pub use server::serve;
