//! The `swifi serve` accept loop.
//!
//! One connection carries one request. `ping` and `shutdown` are
//! answered inline; a `submit` spawns a handler thread so a long
//! campaign does not block further submissions (or the shutdown probe
//! a supervisor sends to tear the daemon down). Shutdown is graceful:
//! the loop stops accepting and joins every in-flight campaign before
//! returning.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use crate::job::{run_campaign, JobConfig};
use crate::protocol::{parse_request, Event, Request};

/// Serve requests on `listener` until a `shutdown` request arrives.
///
/// # Errors
///
/// Returns accept-loop I/O failures; per-connection failures are
/// answered on that connection and do not stop the server.
pub fn serve(listener: TcpListener, cfg: JobConfig) -> Result<(), String> {
    let cfg = Arc::new(cfg);
    let mut campaigns = Vec::new();
    for conn in listener.incoming() {
        let stream = conn.map_err(|e| format!("accept failed: {e}"))?;
        match read_request(&stream) {
            Err(e) => {
                // A malformed line still gets a diagnosis before the
                // connection closes (best effort: the peer may be gone).
                let _ = send(&stream, &Event::Error { message: e });
            }
            Ok(Request::Ping) => {
                let _ = send(&stream, &Event::Pong);
            }
            Ok(Request::Shutdown) => {
                let _ = send(&stream, &Event::Done);
                break;
            }
            Ok(Request::Submit(req)) => {
                let cfg = Arc::clone(&cfg);
                campaigns.push(std::thread::spawn(move || {
                    let mut dead = false;
                    let mut emit = |e: Event| {
                        // A vanished client stops the stream but never
                        // the campaign: the checkpoints on disk stay
                        // resumable either way.
                        if !dead && send(&stream, &e).is_err() {
                            dead = true;
                        }
                    };
                    match run_campaign(&req, &cfg, &mut emit) {
                        Ok(()) => emit(Event::Done),
                        Err(message) => emit(Event::Error { message }),
                    }
                }));
            }
        }
    }
    for handle in campaigns {
        let _ = handle.join();
    }
    Ok(())
}

fn read_request(stream: &TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone connection: {e}"))?,
    );
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("cannot read request: {e}"))?;
    if line.trim().is_empty() {
        return Err("empty request".to_string());
    }
    parse_request(&line)
}

fn send(mut stream: &TcpStream, event: &Event) -> std::io::Result<()> {
    // One write per line keeps events unfragmented enough for a
    // line-buffered reader; flush so progress streams in real time.
    stream.write_all(event.render().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
