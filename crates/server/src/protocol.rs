//! The wire protocol between `swifi submit` and `swifi serve`.
//!
//! One campaign submission is one TCP connection carrying line-delimited
//! JSON: the client sends a single request line, the server streams back
//! one event object per line and closes. Keeping the protocol at one
//! self-describing line per message means a session can be replayed from
//! a capture file, debugged with `nc`, and parsed without a streaming
//! JSON reader on either side.

use serde::Value;
use swifi_campaign::MergeSummary;

/// A client request: exactly one per connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Event::Pong`].
    Ping,
    /// Stop accepting connections once in-flight campaigns finish.
    Shutdown,
    /// Run a sharded campaign and stream progress events back.
    Submit(CampaignRequest),
}

/// Which experiment driver a submission runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Binary class-based campaign (paper §6, `swifi campaign`).
    Class,
    /// Source-level G-SWFIT mutation campaign (`swifi source-campaign`).
    Source,
}

impl Driver {
    /// Wire name of the driver.
    pub fn name(self) -> &'static str {
        match self {
            Driver::Class => "class",
            Driver::Source => "source",
        }
    }

    fn from_name(s: &str) -> Result<Driver, String> {
        match s {
            "class" => Ok(Driver::Class),
            "source" => Ok(Driver::Source),
            other => Err(format!("unknown driver `{other}` (class, source)")),
        }
    }
}

/// One campaign submission: driver, target, seed, scale, shard plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRequest {
    /// Experiment driver to run.
    pub driver: Driver,
    /// Roster program name (see `swifi list`).
    pub target: String,
    /// Campaign seed.
    pub seed: u64,
    /// Inputs per fault / per mutant.
    pub inputs: usize,
    /// Mutant budget ([`Driver::Source`] only).
    pub mutants: usize,
    /// Number of shards to split the run schedule into.
    pub shards: u64,
    /// Worker-pool width: shards in flight at once (process mode).
    pub pool: usize,
    /// Collect per-shard Chrome traces and stream the merged trace back.
    pub want_trace: bool,
    /// Collect per-shard metrics and stream the merged registry back.
    pub want_metrics: bool,
}

impl CampaignRequest {
    /// Human tag naming this campaign in paths and progress output.
    pub fn tag(&self) -> String {
        format!("{}-{}-s{}", self.driver.name(), self.target, self.seed)
    }
}

/// A server-to-client progress record. The stream for a submission ends
/// with exactly one [`Event::Done`] or [`Event::Error`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Submission validated; shard fan-out is starting.
    Accepted {
        /// The campaign tag ([`CampaignRequest::tag`]).
        campaign: String,
        /// Shard count the schedule was split into.
        shards: u64,
    },
    /// A shard pass started (worker spawned or in-process run begun).
    ShardStart {
        /// Shard index, `0 .. shards`.
        shard: u64,
    },
    /// A shard pass finished. `ok = false` is not fatal: the shard's
    /// missing records are re-executed by the merge pass.
    ShardDone {
        /// Shard index.
        shard: u64,
        /// Whether the shard pass completed cleanly.
        ok: bool,
        /// Failure detail when `ok` is false (exit status, stderr tail).
        detail: String,
    },
    /// Shard checkpoints merged into one campaign checkpoint.
    Merged {
        /// Shard files read.
        shards_read: u64,
        /// Shard files missing or empty (recovered by the final pass).
        shards_missing: u64,
        /// Distinct run records in the merged checkpoint.
        records: u64,
        /// Records present in more than one shard file.
        duplicates: u64,
    },
    /// Per-phase run count in the merged campaign.
    Phase {
        /// Phase name (e.g. `assign`, `check`, `mutants`).
        name: String,
        /// Run records in the phase.
        runs: u64,
    },
    /// An abnormal run record in the merged campaign.
    Abnormal {
        /// Phase the item belonged to.
        phase: String,
        /// Item index within the phase.
        index: u64,
        /// Caught panic or failure message.
        message: String,
        /// Driver description of the work item.
        detail: String,
    },
    /// The final report, byte-identical to the single-process CLI output.
    Report {
        /// Rendered report text.
        text: String,
    },
    /// Merged metrics-registry snapshot (when requested).
    Metrics {
        /// Registry JSON, as written by `--metrics-out`.
        text: String,
    },
    /// Merged Chrome trace (when requested).
    Trace {
        /// Trace JSON, as written by `--trace-out`.
        text: String,
    },
    /// Submission completed; the connection closes after this line.
    Done,
    /// Submission failed; the connection closes after this line.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Reply to [`Request::Ping`].
    Pong,
}

impl Event {
    /// A [`Event::Merged`] from the checkpoint-merge summary.
    pub fn merged(s: &MergeSummary) -> Event {
        Event::Merged {
            shards_read: s.shards_read as u64,
            shards_missing: s.shards_missing as u64,
            records: s.records as u64,
            duplicates: s.duplicates as u64,
        }
    }

    /// Render the event as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let fields = match self {
            Event::Accepted { campaign, shards } => vec![
                ("event", str_v("accepted")),
                ("campaign", str_v(campaign)),
                ("shards", u64_v(*shards)),
            ],
            Event::ShardStart { shard } => {
                vec![("event", str_v("shard_start")), ("shard", u64_v(*shard))]
            }
            Event::ShardDone { shard, ok, detail } => vec![
                ("event", str_v("shard_done")),
                ("shard", u64_v(*shard)),
                ("ok", Value::Bool(*ok)),
                ("detail", str_v(detail)),
            ],
            Event::Merged {
                shards_read,
                shards_missing,
                records,
                duplicates,
            } => vec![
                ("event", str_v("merged")),
                ("shards_read", u64_v(*shards_read)),
                ("shards_missing", u64_v(*shards_missing)),
                ("records", u64_v(*records)),
                ("duplicates", u64_v(*duplicates)),
            ],
            Event::Phase { name, runs } => vec![
                ("event", str_v("phase")),
                ("name", str_v(name)),
                ("runs", u64_v(*runs)),
            ],
            Event::Abnormal {
                phase,
                index,
                message,
                detail,
            } => vec![
                ("event", str_v("abnormal")),
                ("phase", str_v(phase)),
                ("index", u64_v(*index)),
                ("message", str_v(message)),
                ("detail", str_v(detail)),
            ],
            Event::Report { text } => vec![("event", str_v("report")), ("text", str_v(text))],
            Event::Metrics { text } => vec![("event", str_v("metrics")), ("text", str_v(text))],
            Event::Trace { text } => vec![("event", str_v("trace")), ("text", str_v(text))],
            Event::Done => vec![("event", str_v("done"))],
            Event::Error { message } => {
                vec![("event", str_v("error")), ("message", str_v(message))]
            }
            Event::Pong => vec![("event", str_v("pong"))],
        };
        render_obj(fields)
    }

    /// Parse one event line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn parse(line: &str) -> Result<Event, String> {
        let v: Value =
            serde_json::from_str(line.trim()).map_err(|e| format!("bad event line: {e}"))?;
        let obj = v.as_object().ok_or("event line is not an object")?;
        let kind = get_str(obj, "event")?;
        match kind.as_str() {
            "accepted" => Ok(Event::Accepted {
                campaign: get_str(obj, "campaign")?,
                shards: get_u64(obj, "shards")?,
            }),
            "shard_start" => Ok(Event::ShardStart {
                shard: get_u64(obj, "shard")?,
            }),
            "shard_done" => Ok(Event::ShardDone {
                shard: get_u64(obj, "shard")?,
                ok: get_bool(obj, "ok")?,
                detail: get_str(obj, "detail")?,
            }),
            "merged" => Ok(Event::Merged {
                shards_read: get_u64(obj, "shards_read")?,
                shards_missing: get_u64(obj, "shards_missing")?,
                records: get_u64(obj, "records")?,
                duplicates: get_u64(obj, "duplicates")?,
            }),
            "phase" => Ok(Event::Phase {
                name: get_str(obj, "name")?,
                runs: get_u64(obj, "runs")?,
            }),
            "abnormal" => Ok(Event::Abnormal {
                phase: get_str(obj, "phase")?,
                index: get_u64(obj, "index")?,
                message: get_str(obj, "message")?,
                detail: get_str(obj, "detail")?,
            }),
            "report" => Ok(Event::Report {
                text: get_str(obj, "text")?,
            }),
            "metrics" => Ok(Event::Metrics {
                text: get_str(obj, "text")?,
            }),
            "trace" => Ok(Event::Trace {
                text: get_str(obj, "text")?,
            }),
            "done" => Ok(Event::Done),
            "error" => Ok(Event::Error {
                message: get_str(obj, "message")?,
            }),
            "pong" => Ok(Event::Pong),
            other => Err(format!("unknown event `{other}`")),
        }
    }
}

/// Render a request as one JSON line (no trailing newline).
pub fn render_request(req: &Request) -> String {
    match req {
        Request::Ping => render_obj(vec![("type", str_v("ping"))]),
        Request::Shutdown => render_obj(vec![("type", str_v("shutdown"))]),
        Request::Submit(c) => render_obj(vec![
            ("type", str_v("submit")),
            ("driver", str_v(c.driver.name())),
            ("target", str_v(&c.target)),
            ("seed", u64_v(c.seed)),
            ("inputs", u64_v(c.inputs as u64)),
            ("mutants", u64_v(c.mutants as u64)),
            ("shards", u64_v(c.shards)),
            ("pool", u64_v(c.pool as u64)),
            ("want_trace", Value::Bool(c.want_trace)),
            ("want_metrics", Value::Bool(c.want_metrics)),
        ]),
    }
}

/// Parse one request line.
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field; the server
/// streams it back as [`Event::Error`] so a hand-typed `nc` session gets
/// a diagnosis, not a dropped connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value =
        serde_json::from_str(line.trim()).map_err(|e| format!("bad request line: {e}"))?;
    let obj = v.as_object().ok_or("request line is not an object")?;
    let kind = get_str(obj, "type")?;
    match kind.as_str() {
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let req = CampaignRequest {
                driver: Driver::from_name(&get_str(obj, "driver")?)?,
                target: get_str(obj, "target")?,
                seed: get_u64(obj, "seed")?,
                inputs: get_u64(obj, "inputs")?.max(1) as usize,
                mutants: get_u64(obj, "mutants")?.max(1) as usize,
                shards: get_u64(obj, "shards")?,
                pool: get_u64(obj, "pool")?.max(1) as usize,
                want_trace: get_bool(obj, "want_trace")?,
                want_metrics: get_bool(obj, "want_metrics")?,
            };
            if req.shards == 0 {
                return Err("shards must be at least 1".to_string());
            }
            Ok(Request::Submit(req))
        }
        other => Err(format!(
            "unknown request `{other}` (ping, shutdown, submit)"
        )),
    }
}

fn str_v(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn u64_v(n: u64) -> Value {
    Value::U64(n)
}

fn render_obj(fields: Vec<(&str, Value)>) -> String {
    let v = Value::Object(
        fields
            .into_iter()
            .map(|(k, x)| (k.to_string(), x))
            .collect(),
    );
    serde_json::to_string(&v).expect("protocol objects serialize")
}

fn get_str(obj: &[(String, Value)], key: &str) -> Result<String, String> {
    match serde::field(obj, key) {
        Ok(Value::Str(s)) => Ok(s.clone()),
        Ok(_) => Err(format!("field `{key}` must be a string")),
        Err(_) => Err(format!("missing field `{key}`")),
    }
}

fn get_u64(obj: &[(String, Value)], key: &str) -> Result<u64, String> {
    match serde::field(obj, key) {
        Ok(Value::U64(n)) => Ok(*n),
        Ok(Value::I64(n)) if *n >= 0 => Ok(*n as u64),
        Ok(_) => Err(format!("field `{key}` must be a non-negative integer")),
        Err(_) => Err(format!("missing field `{key}`")),
    }
}

fn get_bool(obj: &[(String, Value)], key: &str) -> Result<bool, String> {
    match serde::field(obj, key) {
        Ok(Value::Bool(b)) => Ok(*b),
        Ok(_) => Err(format!("field `{key}` must be a boolean")),
        Err(_) => Err(format!("missing field `{key}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> CampaignRequest {
        CampaignRequest {
            driver: Driver::Class,
            target: "SOR".to_string(),
            seed: 2024,
            inputs: 2,
            mutants: 6,
            shards: 3,
            pool: 2,
            want_trace: true,
            want_metrics: false,
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Shutdown,
            Request::Submit(sample_request()),
        ] {
            let line = render_request(&req);
            assert!(!line.contains('\n'), "one line per message: {line}");
            assert_eq!(parse_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn events_round_trip() {
        let events = vec![
            Event::Accepted {
                campaign: "class-SOR-s2024".to_string(),
                shards: 3,
            },
            Event::ShardStart { shard: 1 },
            Event::ShardDone {
                shard: 1,
                ok: false,
                detail: "exit status: 101".to_string(),
            },
            Event::Merged {
                shards_read: 2,
                shards_missing: 1,
                records: 40,
                duplicates: 0,
            },
            Event::Phase {
                name: "assign".to_string(),
                runs: 30,
            },
            Event::Abnormal {
                phase: "telemetry".to_string(),
                index: 0,
                message: "cannot merge histogram `x`".to_string(),
                detail: "metrics merge on shard import".to_string(),
            },
            Event::Report {
                text: "total runs: 60\nline two\n".to_string(),
            },
            Event::Metrics {
                text: "{\n}".to_string(),
            },
            Event::Trace {
                text: "[\n]\n".to_string(),
            },
            Event::Done,
            Event::Error {
                message: "unknown program `nope`".to_string(),
            },
            Event::Pong,
        ];
        for e in events {
            let line = e.render();
            assert!(!line.contains('\n'), "one line per message: {line}");
            assert_eq!(Event::parse(&line).unwrap(), e);
        }
    }

    #[test]
    fn malformed_lines_are_named_errors() {
        let err = parse_request("not json").unwrap_err();
        assert!(err.contains("bad request line"), "{err}");
        let err = parse_request("{\"type\":\"warp\"}").unwrap_err();
        assert!(err.contains("unknown request"), "{err}");
        let err = parse_request("{\"type\":\"submit\",\"driver\":\"class\"}").unwrap_err();
        assert!(err.contains("missing field `target`"), "{err}");
        let err = parse_request("{\"type\":\"submit\",\"driver\":\"binary\",\"target\":\"SOR\"}")
            .unwrap_err();
        assert!(err.contains("unknown driver"), "{err}");
        let err = Event::parse("{\"event\":\"shard_done\",\"shard\":1}").unwrap_err();
        assert!(err.contains("missing field `ok`"), "{err}");
    }
}
