//! Shard orchestration for one campaign submission.
//!
//! A submission splits into `shards` contiguous slices of the run
//! schedule. Each shard pass writes its own checkpoint (and, when
//! requested, its own metrics/trace snapshot); the passes run either in
//! worker processes re-executing this binary's hidden `shard-exec`
//! subcommand, or in-process for tests and single-machine use. The
//! shard checkpoints then merge through
//! [`swifi_campaign::merge_checkpoints`] and a final `resume = true`
//! pass folds the full report — byte-identical to a single-process run
//! by the PR 4 replay invariant. A failed or killed shard is therefore
//! never fatal: its missing records are simply executed by the final
//! pass, at the cost of doing that work without the fan-out.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use swifi_campaign::engine::AbnormalRun;
use swifi_campaign::report::{class_campaign_report, source_campaign_report};
use swifi_campaign::section6::{class_campaign_with, CampaignScale};
use swifi_campaign::shard::{merged_path, phase_counts, shard_paths};
use swifi_campaign::source::{source_campaign_with, SourceScale};
use swifi_campaign::{merge_checkpoints, CampaignOptions, Shard};
use swifi_trace::metrics::MetricsRegistry;
use swifi_trace::profile::DEFAULT_SAMPLE_EVERY;
use swifi_trace::{
    merge_shard_events, parse_chrome_trace, render_events, Telemetry, TelemetryConfig,
};

use crate::protocol::{CampaignRequest, Driver, Event};

/// How shard passes execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMode {
    /// Run shard passes sequentially inside the server process. Used by
    /// the integration tests and `swifi serve --in-process`; the `pool`
    /// width is ignored.
    InProcess,
    /// Spawn one worker process per shard (batched `pool` at a time),
    /// re-executing this binary's `shard-exec` subcommand. A worker
    /// that dies — any exit status, even SIGKILL — costs only its
    /// shard's records.
    Process {
        /// The binary to re-execute (normally `std::env::current_exe()`).
        exe: PathBuf,
    },
}

/// Server-side configuration for running submissions.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Directory for shard and merged checkpoints (and shard telemetry).
    pub workdir: PathBuf,
    /// How shard passes execute.
    pub mode: WorkerMode,
}

/// What one shard pass produced besides its checkpoint.
#[derive(Debug, Clone, Default)]
pub struct ShardArtifacts {
    /// Metrics-registry JSON, when the submission asked for metrics.
    pub metrics: Option<String>,
    /// Chrome-trace JSON, when the submission asked for a trace.
    pub trace: Option<String>,
}

/// Run one submission end to end, streaming progress through `emit`.
///
/// Emits everything except the terminal `done`/`error` line, which the
/// connection handler owns (an `Err` here becomes the `error` event).
///
/// # Errors
///
/// Returns unknown-target, merge, and final-pass failures. Individual
/// shard failures are *not* errors: they stream as `shard_done` with
/// `ok = false` and the final pass re-executes the missing work.
pub fn run_campaign(
    req: &CampaignRequest,
    cfg: &JobConfig,
    emit: &mut dyn FnMut(Event),
) -> Result<(), String> {
    // Validate the target before touching the filesystem so a typo'd
    // submission fails fast with the CLI's own wording.
    swifi_programs::program(&req.target)
        .ok_or_else(|| format!("unknown program `{}` (see `swifi list`)", req.target))?;
    std::fs::create_dir_all(&cfg.workdir)
        .map_err(|e| format!("cannot create workdir `{}`: {e}", cfg.workdir.display()))?;
    let tag = req.tag();
    emit(Event::Accepted {
        campaign: tag.clone(),
        shards: req.shards,
    });

    let paths = shard_paths(&cfg.workdir, &tag, req.shards);
    // A resubmission of the same campaign would otherwise merge stale
    // shard files (possibly from a different shard count) as duplicates.
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
    let artifacts = match &cfg.mode {
        WorkerMode::InProcess => run_shards_in_process(req, &paths, emit),
        WorkerMode::Process { exe } => run_shards_in_workers(req, exe, &paths, emit),
    };

    let merged = merged_path(&cfg.workdir, &tag);
    let summary = merge_checkpoints(&paths, &merged)?;
    emit(Event::merged(&summary));
    for (name, runs) in phase_counts(&merged)? {
        emit(Event::Phase { name, runs });
    }

    // The final pass replays every merged record and executes whatever
    // failed shards left behind; it runs without telemetry so the
    // campaign view is the union of what the shards measured.
    let opts = CampaignOptions {
        checkpoint: Some(merged),
        resume: true,
        ..CampaignOptions::default()
    };
    let (text, abnormal) = drive(req, &opts)?;
    for a in abnormal {
        emit(Event::Abnormal {
            phase: a.phase,
            index: a.index,
            message: a.message,
            detail: a.detail,
        });
    }
    emit(Event::Report { text });

    if req.want_metrics {
        let snapshots: Vec<&String> = artifacts
            .iter()
            .filter_map(|a| a.metrics.as_ref())
            .collect();
        emit_merged_metrics(&snapshots, emit);
    }
    if req.want_trace {
        let traces: Vec<&String> = artifacts.iter().filter_map(|a| a.trace.as_ref()).collect();
        emit_merged_trace(&traces, emit);
    }
    Ok(())
}

/// Run one shard pass in this process: the worker half of `shard-exec`
/// and the whole story of [`WorkerMode::InProcess`].
///
/// # Errors
///
/// Propagates driver failures (the caller records the shard as failed).
pub fn run_shard(
    req: &CampaignRequest,
    shard: Shard,
    checkpoint: &Path,
) -> Result<ShardArtifacts, String> {
    let hub = (req.want_trace || req.want_metrics).then(|| {
        Telemetry::shared(TelemetryConfig {
            trace: req.want_trace,
            metrics: req.want_metrics,
            profile: false,
            profile_every: DEFAULT_SAMPLE_EVERY,
        })
    });
    let opts = CampaignOptions {
        checkpoint: Some(checkpoint.to_path_buf()),
        shard: Some(shard),
        telemetry: hub.clone(),
        ..CampaignOptions::default()
    };
    // The shard pass's partial report is discarded — only its checkpoint
    // records (and telemetry) survive into the merge.
    drive(req, &opts)?;
    Ok(ShardArtifacts {
        metrics: hub
            .as_ref()
            .filter(|_| req.want_metrics)
            .map(|h| h.metrics_json()),
        trace: hub
            .as_ref()
            .filter(|_| req.want_trace)
            .map(|h| h.render_chrome_trace()),
    })
}

/// Dispatch a submission to its experiment driver under `opts` and
/// render the report exactly as the single-process CLI does.
fn drive(
    req: &CampaignRequest,
    opts: &CampaignOptions,
) -> Result<(String, Vec<AbnormalRun>), String> {
    let target = swifi_programs::program(&req.target)
        .ok_or_else(|| format!("unknown program `{}` (see `swifi list`)", req.target))?;
    match req.driver {
        Driver::Class => {
            let c = class_campaign_with(
                &target,
                CampaignScale {
                    inputs_per_fault: req.inputs,
                },
                req.seed,
                opts,
            )?;
            Ok((class_campaign_report(&c), c.abnormal))
        }
        Driver::Source => {
            let c = source_campaign_with(
                &target,
                SourceScale {
                    mutant_budget: req.mutants,
                    inputs_per_mutant: req.inputs,
                },
                req.seed,
                opts,
            )?;
            Ok((source_campaign_report(&c), c.abnormal))
        }
    }
}

fn run_shards_in_process(
    req: &CampaignRequest,
    paths: &[PathBuf],
    emit: &mut dyn FnMut(Event),
) -> Vec<ShardArtifacts> {
    let mut artifacts = Vec::with_capacity(paths.len());
    for (k, path) in paths.iter().enumerate() {
        let shard = Shard {
            index: k as u64,
            count: req.shards,
        };
        emit(Event::ShardStart { shard: shard.index });
        match run_shard(req, shard, path) {
            Ok(a) => {
                emit(Event::ShardDone {
                    shard: shard.index,
                    ok: true,
                    detail: String::new(),
                });
                artifacts.push(a);
            }
            Err(e) => {
                emit(Event::ShardDone {
                    shard: shard.index,
                    ok: false,
                    detail: e,
                });
                artifacts.push(ShardArtifacts::default());
            }
        }
    }
    artifacts
}

/// Per-shard telemetry file paths in process mode (next to the shard
/// checkpoint, so one workdir holds the whole submission).
fn telemetry_paths(checkpoint: &Path, req: &CampaignRequest) -> (Option<PathBuf>, Option<PathBuf>) {
    let with_ext = |ext: &str| {
        let mut p = checkpoint.as_os_str().to_owned();
        p.push(ext);
        PathBuf::from(p)
    };
    (
        req.want_metrics.then(|| with_ext(".metrics.json")),
        req.want_trace.then(|| with_ext(".trace.json")),
    )
}

fn run_shards_in_workers(
    req: &CampaignRequest,
    exe: &Path,
    paths: &[PathBuf],
    emit: &mut dyn FnMut(Event),
) -> Vec<ShardArtifacts> {
    let mut artifacts: Vec<ShardArtifacts> = vec![ShardArtifacts::default(); paths.len()];
    // Batched fan-out: at most `pool` workers in flight. A batch joins
    // before the next spawns — the scheduling is deliberately dumb so a
    // progress stream reads in shard order batch by batch.
    for batch in (0..paths.len()).collect::<Vec<_>>().chunks(req.pool.max(1)) {
        let mut children: Vec<(usize, Result<Child, String>)> = Vec::with_capacity(batch.len());
        for &k in batch {
            emit(Event::ShardStart { shard: k as u64 });
            children.push((k, spawn_shard_worker(req, exe, k, &paths[k])));
        }
        for (k, spawned) in children {
            let outcome = spawned.and_then(|child| {
                let out = child
                    .wait_with_output()
                    .map_err(|e| format!("cannot wait for shard worker: {e}"))?;
                if out.status.success() {
                    Ok(())
                } else {
                    let stderr = String::from_utf8_lossy(&out.stderr);
                    let tail = stderr.lines().last().unwrap_or("").trim();
                    Err(format!("worker failed ({}): {tail}", out.status))
                }
            });
            match outcome {
                Ok(()) => {
                    let (metrics_path, trace_path) = telemetry_paths(&paths[k], req);
                    artifacts[k] = ShardArtifacts {
                        metrics: metrics_path.and_then(|p| std::fs::read_to_string(p).ok()),
                        trace: trace_path.and_then(|p| std::fs::read_to_string(p).ok()),
                    };
                    emit(Event::ShardDone {
                        shard: k as u64,
                        ok: true,
                        detail: String::new(),
                    });
                }
                Err(detail) => emit(Event::ShardDone {
                    shard: k as u64,
                    ok: false,
                    detail,
                }),
            }
        }
    }
    artifacts
}

fn spawn_shard_worker(
    req: &CampaignRequest,
    exe: &Path,
    k: usize,
    checkpoint: &Path,
) -> Result<Child, String> {
    let mut cmd = Command::new(exe);
    cmd.arg("shard-exec")
        .arg("--driver")
        .arg(req.driver.name())
        .arg("--target")
        .arg(&req.target)
        .arg("--seed")
        .arg(req.seed.to_string())
        .arg("--inputs")
        .arg(req.inputs.to_string())
        .arg("--mutants")
        .arg(req.mutants.to_string())
        .arg("--shard")
        .arg(k.to_string())
        .arg("--shards")
        .arg(req.shards.to_string())
        .arg("--checkpoint")
        .arg(checkpoint)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let (metrics_path, trace_path) = telemetry_paths(checkpoint, req);
    if let Some(p) = metrics_path {
        cmd.arg("--metrics-out").arg(p);
    }
    if let Some(p) = trace_path {
        cmd.arg("--trace-out").arg(p);
    }
    cmd.spawn()
        .map_err(|e| format!("cannot spawn shard worker `{}`: {e}", exe.display()))
}

/// The worker-process half of [`WorkerMode::Process`]: run one shard
/// pass and write its telemetry files. Called by the hidden
/// `swifi shard-exec` subcommand.
///
/// # Errors
///
/// Propagates shard-pass and file-write failures; the server surfaces
/// them as a failed shard, not a failed campaign.
pub fn shard_exec(
    req: &CampaignRequest,
    shard: Shard,
    checkpoint: &Path,
    metrics_out: Option<&Path>,
    trace_out: Option<&Path>,
) -> Result<(), String> {
    let artifacts = run_shard(req, shard, checkpoint)?;
    if let (Some(path), Some(text)) = (metrics_out, artifacts.metrics.as_ref()) {
        std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let (Some(path), Some(text)) = (trace_out, artifacts.trace.as_ref()) {
        std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Fold shard metrics snapshots into one registry and emit it. A
/// snapshot that fails to parse or merge becomes an `abnormal` record
/// in the stream — one shard's telemetry is never worth the campaign.
fn emit_merged_metrics(snapshots: &[&String], emit: &mut dyn FnMut(Event)) {
    let mut merged = MetricsRegistry::new();
    for (i, text) in snapshots.iter().enumerate() {
        let absorb = MetricsRegistry::from_json(text).and_then(|r| merged.merge(&r));
        if let Err(message) = absorb {
            emit(Event::Abnormal {
                phase: "telemetry".to_string(),
                index: i as u64,
                message,
                detail: "metrics merge on shard import".to_string(),
            });
        }
    }
    emit(Event::Metrics {
        text: merged.to_json(),
    });
}

/// Merge shard Chrome traces into one campaign trace and emit it: each
/// shard keeps its own timestamp epoch but gets a disjoint lane block,
/// and the merged stream re-sorts so it validates.
fn emit_merged_trace(traces: &[&String], emit: &mut dyn FnMut(Event)) {
    let mut shards = Vec::with_capacity(traces.len());
    for (i, text) in traces.iter().enumerate() {
        match parse_chrome_trace(text) {
            Ok(events) => shards.push(events),
            Err(message) => emit(Event::Abnormal {
                phase: "telemetry".to_string(),
                index: i as u64,
                message,
                detail: "trace parse on shard import".to_string(),
            }),
        }
    }
    emit(Event::Trace {
        text: render_events(merge_shard_events(&shards)),
    });
}

/// Convenience used by `serve` to derive the default process mode.
pub fn current_exe_mode() -> Result<WorkerMode, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    Ok(WorkerMode::Process { exe })
}
