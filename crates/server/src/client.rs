//! The `swifi submit` client half: one request out, an event stream in.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::protocol::{render_request, Event, Request};

/// Send `req` to the server at `addr` and hand every streamed event to
/// `on_event`, in order. Returns when the server sends the terminal
/// line or closes the connection.
///
/// # Errors
///
/// Returns connect/read failures, a server `error` event's message, a
/// truncated stream (connection closed with no terminal event), and
/// unparseable event lines.
pub fn request(addr: &str, req: &Request, mut on_event: impl FnMut(&Event)) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let line = render_request(req);
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("cannot send request: {e}"))?;
    stream
        .flush()
        .map_err(|e| format!("cannot send request: {e}"))?;

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("connection lost: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::parse(&line)?;
        on_event(&event);
        match event {
            Event::Done | Event::Pong => return Ok(()),
            Event::Error { message } => return Err(message),
            _ => {}
        }
    }
    Err("server closed the connection without a terminal event".to_string())
}
