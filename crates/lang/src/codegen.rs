//! Code generation: typed MiniC AST → P601-lite machine code + debug info.
//!
//! The generator is deliberately non-optimising so that source structure
//! maps 1:1 onto machine code:
//!
//! - every assignment statement commits through exactly one store
//!   instruction (sp-relative for scalar locals), which becomes its
//!   [`AssignSite`](crate::debug::AssignSite);
//! - every `if`/`while`/`for` condition tests through `cmp`/`cmpi` + `bc`,
//!   and the `bc` word is the single-word mutation target for the paper's
//!   checking error types;
//! - local variables live at declaration-ordered frame offsets, so a
//!   source-level array-size fault (JB.team6) shifts the displacement
//!   fields of every later sp-relative access — the paper's "stack shift"
//!   machine footprint.

use swifi_vm::asm::CodeBuilder;
use swifi_vm::isa::Syscall;
use swifi_vm::isa::{decode, encode, AluOp, Instr, NOP};
use swifi_vm::mem::Image;

use crate::ast::*;
use crate::debug::{
    AssignSite, CheckErrorType, CheckMutation, CheckOp, CheckSite, DebugInfo, FunctionInfo,
};
use crate::lexer::CompileError;
use crate::sema::{is_builtin, SemaOutput, Type, VarRef};

/// Expression evaluation registers (a small LIFO register stack). They are
/// callee-saved: every function prologue saves all eight.
const EVAL_REGS: [u8; 8] = [14, 15, 16, 17, 18, 19, 20, 21];

/// Frame offset where locals begin: 4 bytes saved LR + 8×4 saved eval regs.
const LOCALS_BASE: u32 = 36;

/// Result of compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The linked executable.
    pub image: Image,
    /// Machine-level debug information (fault-location catalogue).
    pub debug: DebugInfo,
}

#[derive(Debug)]
enum PendingMut {
    Swap {
        bc_idx: usize,
        err: CheckErrorType,
        to: (swifi_vm::isa::CrBit, bool),
    },
    Retarget {
        bc_idx: usize,
        err: CheckErrorType,
        target: String,
    },
    Uncond {
        bc_idx: usize,
        err: CheckErrorType,
        target: String,
    },
    Nop {
        bc_idx: usize,
        err: CheckErrorType,
    },
    Index {
        load_idx: usize,
        elem: u32,
    },
}

#[derive(Debug)]
struct PendingCheck {
    line: u32,
    func: String,
    op: CheckOp,
    first_bc: Option<usize>,
    muts: Vec<PendingMut>,
}

#[derive(Debug)]
struct PendingAssign {
    line: u32,
    func: String,
    store_idx: usize,
    is_byte: bool,
    is_pointer: bool,
}

struct Gen<'a> {
    prog: &'a Program,
    sema: &'a SemaOutput,
    b: CodeBuilder,
    depth: usize,
    label_n: usize,
    str_n: usize,
    cur_fn: String,
    cur_fn_idx: usize,
    loop_stack: Vec<(String, String)>, // (continue target, break target)
    collector: Option<PendingCheck>,
    pending_checks: Vec<PendingCheck>,
    pending_assigns: Vec<PendingAssign>,
    fn_ranges: Vec<(String, usize, usize, u32)>,
    line_map: Vec<(usize, u32)>,
}

/// Generate machine code and debug info for a type-checked program.
///
/// # Errors
///
/// Returns [`CompileError`] for resource-limit violations the semantic pass
/// cannot see: missing/ill-typed `main`, over-deep expressions (more than 8
/// live temporaries), and frames too large for 16-bit displacements.
pub fn generate(prog: &Program, sema: &SemaOutput) -> Result<Compiled, CompileError> {
    let main = prog
        .functions
        .iter()
        .find(|f| f.name == "main")
        .ok_or_else(|| CompileError::new(0, "program has no `main` function"))?;
    let main_layout = &sema.functions[prog
        .functions
        .iter()
        .position(|f| f.name == "main")
        .unwrap()];
    if main_layout.ret != Type::Void || !main_layout.params.is_empty() {
        return Err(CompileError::new(main.line, "`main` must be `void main()`"));
    }

    let mut g = Gen {
        prog,
        sema,
        b: CodeBuilder::new(),
        depth: 0,
        label_n: 0,
        str_n: 0,
        cur_fn: String::new(),
        cur_fn_idx: 0,
        loop_stack: Vec::new(),
        collector: None,
        pending_checks: Vec::new(),
        pending_assigns: Vec::new(),
        fn_ranges: Vec::new(),
        line_map: Vec::new(),
    };

    // Entry stub: every core calls main, then halts with exit code 0.
    g.b.branch_to("fn_main", true);
    g.b.push(Instr::Addi {
        rd: 3,
        ra: 0,
        imm: 0,
    });
    g.b.push(Instr::Halt);

    for (i, f) in prog.functions.iter().enumerate() {
        g.function(i, f)?;
    }
    g.emit_globals();

    // Resolve label-relative pending mutations to instruction indices
    // before the builder is consumed.
    let mut resolved: Vec<(PendingCheck, Vec<(CheckErrorType, ResolvedMut)>)> = Vec::new();
    for pc in std::mem::take(&mut g.pending_checks) {
        let mut rm = Vec::new();
        for m in &pc.muts {
            let r = match m {
                PendingMut::Swap { bc_idx, err, to } => (
                    *err,
                    ResolvedMut::Swap {
                        bc_idx: *bc_idx,
                        to: *to,
                    },
                ),
                PendingMut::Retarget {
                    bc_idx,
                    err,
                    target,
                } => {
                    let t = g.b.label_code_index(target).expect("label bound");
                    (
                        *err,
                        ResolvedMut::Retarget {
                            bc_idx: *bc_idx,
                            target: t,
                        },
                    )
                }
                PendingMut::Uncond {
                    bc_idx,
                    err,
                    target,
                } => {
                    let t = g.b.label_code_index(target).expect("label bound");
                    (
                        *err,
                        ResolvedMut::Uncond {
                            bc_idx: *bc_idx,
                            target: t,
                        },
                    )
                }
                PendingMut::Nop { bc_idx, err } => (*err, ResolvedMut::Nop { bc_idx: *bc_idx }),
                PendingMut::Index { load_idx, elem } => {
                    // One pending entry expands to both [i+1] and [i-1].
                    rm.push((
                        CheckErrorType::IndexPlus,
                        ResolvedMut::Index {
                            load_idx: *load_idx,
                            delta: *elem as i32,
                        },
                    ));
                    (
                        CheckErrorType::IndexMinus,
                        ResolvedMut::Index {
                            load_idx: *load_idx,
                            delta: -(*elem as i32),
                        },
                    )
                }
            };
            rm.push(r);
        }
        resolved.push((pc, rm));
    }
    let pending_assigns = std::mem::take(&mut g.pending_assigns);
    let fn_ranges = std::mem::take(&mut g.fn_ranges);
    let line_map = std::mem::take(&mut g.line_map);

    let image =
        g.b.finish()
            .map_err(|e| CompileError::new(e.line as u32, e.msg))?;
    let addr = |i: usize| image.addr_of(i);

    let mut debug = DebugInfo::default();
    for (name, s, e, line) in fn_ranges {
        debug.functions.push(FunctionInfo {
            name,
            start_addr: addr(s),
            end_addr: addr(e),
            line,
        });
    }
    let mut last = None;
    for (i, line) in line_map {
        if last != Some(i) {
            debug.line_map.push((addr(i), line));
            last = Some(i);
        }
    }
    for pa in pending_assigns {
        debug.assigns.push(AssignSite {
            line: pa.line,
            func: pa.func,
            store_addr: addr(pa.store_idx),
            is_byte: pa.is_byte,
            is_pointer: pa.is_pointer,
        });
    }
    for (pc, muts) in resolved {
        let first_bc = match pc.first_bc {
            Some(i) => i,
            None => continue, // constant condition: no injectable site
        };
        let mut out = Vec::new();
        for (err, m) in muts {
            let cm = match m {
                ResolvedMut::Swap { bc_idx, to } => {
                    let w = image.code[bc_idx];
                    match decode(w) {
                        Ok(Instr::Bc { crf, off, .. }) => CheckMutation::ReplaceWord {
                            addr: addr(bc_idx),
                            word: encode(Instr::Bc {
                                crf,
                                bit: to.0,
                                expect: to.1,
                                off,
                            }),
                        },
                        other => unreachable!("swap target is not a bc: {other:?}"),
                    }
                }
                ResolvedMut::Retarget { bc_idx, target } => {
                    let w = image.code[bc_idx];
                    match decode(w) {
                        Ok(Instr::Bc {
                            crf, bit, expect, ..
                        }) => {
                            let off = target as i64 - bc_idx as i64;
                            let off = i16::try_from(off).map_err(|_| {
                                CompileError::new(pc.line, "condition too far for mutation")
                            })?;
                            CheckMutation::ReplaceWord {
                                addr: addr(bc_idx),
                                word: encode(Instr::Bc {
                                    crf,
                                    bit,
                                    expect: !expect,
                                    off,
                                }),
                            }
                        }
                        other => unreachable!("retarget target is not a bc: {other:?}"),
                    }
                }
                ResolvedMut::Uncond { bc_idx, target } => CheckMutation::ReplaceWord {
                    addr: addr(bc_idx),
                    word: encode(Instr::B {
                        off: target as i32 - bc_idx as i32,
                    }),
                },
                ResolvedMut::Nop { bc_idx } => CheckMutation::ReplaceWord {
                    addr: addr(bc_idx),
                    word: NOP,
                },
                ResolvedMut::Index { load_idx, delta } => CheckMutation::AdjustLoadAddr {
                    addr: addr(load_idx),
                    delta,
                },
            };
            out.push((err, cm));
        }
        debug.checks.push(CheckSite {
            line: pc.line,
            func: pc.func,
            op: pc.op,
            branch_addr: addr(first_bc),
            mutations: out,
        });
    }
    debug.checks.sort_by_key(|c| c.branch_addr);
    debug.assigns.sort_by_key(|a| a.store_addr);
    Ok(Compiled { image, debug })
}

enum ResolvedMut {
    Swap {
        bc_idx: usize,
        to: (swifi_vm::isa::CrBit, bool),
    },
    Retarget {
        bc_idx: usize,
        target: usize,
    },
    Uncond {
        bc_idx: usize,
        target: usize,
    },
    Nop {
        bc_idx: usize,
    },
    Index {
        load_idx: usize,
        delta: i32,
    },
}

impl<'a> Gen<'a> {
    fn fresh(&mut self, base: &str) -> String {
        self.label_n += 1;
        format!("{base}_{}", self.label_n)
    }

    fn alloc(&mut self, line: u32) -> Result<u8, CompileError> {
        if self.depth >= EVAL_REGS.len() {
            return Err(CompileError::new(
                line,
                "expression too complex (register pressure)",
            ));
        }
        let r = EVAL_REGS[self.depth];
        self.depth += 1;
        Ok(r)
    }

    fn free(&mut self, r: u8) {
        self.depth -= 1;
        debug_assert_eq!(
            EVAL_REGS[self.depth], r,
            "eval registers freed out of order"
        );
    }

    fn ty(&self, e: &Expr) -> Type {
        self.sema.expr_types[&e.id].clone()
    }

    fn glabel(&self, idx: usize) -> String {
        format!("g_{}", self.sema.globals[idx].name)
    }

    fn struct_size(&self, t: &Type) -> u32 {
        t.size(&self.sema.structs)
    }

    fn mark_line(&mut self, line: u32) {
        self.line_map.push((self.b.here(), line));
    }

    // ---- functions -----------------------------------------------------

    fn function(&mut self, idx: usize, f: &'a Function) -> Result<(), CompileError> {
        let layout = &self.sema.functions[idx];
        let frame = LOCALS_BASE + layout.locals_size;
        if frame > 30000 {
            return Err(CompileError::new(
                f.line,
                format!(
                    "frame of `{}` too large ({frame} bytes); make arrays global",
                    f.name
                ),
            ));
        }
        self.cur_fn = f.name.clone();
        self.cur_fn_idx = idx;
        let start = self.b.here();
        self.b.label(format!("fn_{}", f.name));
        // Prologue.
        self.b.push(Instr::Mflr { rd: 12 });
        self.b.push(Instr::Addi {
            rd: 1,
            ra: 1,
            imm: -(frame as i32) as i16,
        });
        self.b.push(Instr::Stw {
            rs: 12,
            ra: 1,
            d: 0,
        });
        for (i, &r) in EVAL_REGS.iter().enumerate() {
            self.b.push(Instr::Stw {
                rs: r,
                ra: 1,
                d: 4 + 4 * i as i16,
            });
        }
        // Spill parameters into their slots.
        for (i, off) in layout.param_offsets.clone().iter().enumerate() {
            let ty = &layout.params[i];
            let d = (LOCALS_BASE + off) as i16;
            if *ty == Type::Char {
                self.b.push(Instr::Stb {
                    rs: 3 + i as u8,
                    ra: 1,
                    d,
                });
            } else {
                self.b.push(Instr::Stw {
                    rs: 3 + i as u8,
                    ra: 1,
                    d,
                });
            }
        }
        let epilogue = format!("ep_{}", f.name);
        self.block(&f.body)?;
        debug_assert_eq!(self.depth, 0, "leaked eval registers in `{}`", f.name);
        // Epilogue.
        self.b.label(epilogue);
        for (i, &r) in EVAL_REGS.iter().enumerate() {
            self.b.push(Instr::Lwz {
                rd: r,
                ra: 1,
                d: 4 + 4 * i as i16,
            });
        }
        self.b.push(Instr::Lwz {
            rd: 12,
            ra: 1,
            d: 0,
        });
        self.b.push(Instr::Mtlr { ra: 12 });
        self.b.push(Instr::Addi {
            rd: 1,
            ra: 1,
            imm: frame as i16,
        });
        self.b.push(Instr::Blr);
        let end = self.b.here();
        self.fn_ranges.push((f.name.clone(), start, end, f.line));
        Ok(())
    }

    fn emit_globals(&mut self) {
        for (i, g) in self.prog.globals.iter().enumerate() {
            let ty = &self.sema.globals[i].ty;
            let align = ty.align(&self.sema.structs);
            if align >= 4 {
                self.b.align_data();
            }
            self.b.data_label(self.glabel(i));
            match &g.init {
                Some(e) => {
                    let v = match e.kind {
                        ExprKind::IntLit(v) => v,
                        ExprKind::CharLit(c) => c as i32,
                        _ => unreachable!("sema restricts global initializers"),
                    };
                    if *ty == Type::Char {
                        self.b.push_data(&[(v & 0xFF) as u8]);
                    } else {
                        self.b.push_data(&(v as u32).to_le_bytes());
                    }
                }
                None => {
                    let size = self.struct_size(ty) as usize;
                    self.b.push_data(&vec![0u8; size]);
                }
            }
        }
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self, blk: &'a Block) -> Result<(), CompileError> {
        for d in &blk.decls {
            if let Some(init) = &d.init {
                // A declaration initializer is an assignment statement in
                // ODC terms; sema recorded the slot under the initializer's
                // expression id.
                self.mark_line(d.line);
                let (off, ty) = self
                    .sema
                    .decl_slots
                    .get(&init.id)
                    .cloned()
                    .expect("sema recorded the slot");
                let vreg = self.expr(init)?;
                let d16 = (LOCALS_BASE + off) as i16;
                let store_idx = if ty == Type::Char {
                    self.b.push(Instr::Stb {
                        rs: vreg,
                        ra: 1,
                        d: d16,
                    })
                } else {
                    self.b.push(Instr::Stw {
                        rs: vreg,
                        ra: 1,
                        d: d16,
                    })
                };
                self.free(vreg);
                self.pending_assigns.push(PendingAssign {
                    line: d.line,
                    func: self.cur_fn.clone(),
                    store_idx,
                    is_byte: ty == Type::Char,
                    is_pointer: matches!(ty, Type::Ptr(_)),
                });
            }
        }
        for s in &blk.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &'a Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                self.mark_line(*line);
                self.assign(target, value, *line)
            }
            Stmt::Expr { expr, line } => {
                self.mark_line(*line);
                match &expr.kind {
                    ExprKind::Call { .. } if self.ty(expr) == Type::Void => {
                        self.call_void(expr)?;
                    }
                    _ => {
                        let r = self.expr(expr)?;
                        self.free(r);
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                line,
            } => {
                self.mark_line(*line);
                let lend = self.fresh("Lend");
                let lelse = if else_blk.is_some() {
                    self.fresh("Lelse")
                } else {
                    lend.clone()
                };
                self.checked_cond_false(cond, &lelse, *line)?;
                self.block(then_blk)?;
                if let Some(eb) = else_blk {
                    self.b.branch_to(&lend, false);
                    self.b.label(&lelse);
                    self.block(eb)?;
                }
                self.b.label(&lend);
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                let lcond = self.fresh("Lwhile");
                let lend = self.fresh("Lend");
                self.b.label(&lcond);
                self.mark_line(*line);
                self.checked_cond_false(cond, &lend, *line)?;
                self.loop_stack.push((lcond.clone(), lend.clone()));
                self.block(body)?;
                self.loop_stack.pop();
                self.b.branch_to(&lcond, false);
                self.b.label(&lend);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let lcond = self.fresh("Lfor");
                let lstep = self.fresh("Lstep");
                let lend = self.fresh("Lend");
                self.b.label(&lcond);
                if let Some(c) = cond {
                    self.mark_line(*line);
                    self.checked_cond_false(c, &lend, *line)?;
                }
                self.loop_stack.push((lstep.clone(), lend.clone()));
                self.block(body)?;
                self.loop_stack.pop();
                self.b.label(&lstep);
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.b.branch_to(&lcond, false);
                self.b.label(&lend);
                Ok(())
            }
            Stmt::Return { value, line } => {
                self.mark_line(*line);
                if let Some(v) = value {
                    let r = self.expr(v)?;
                    self.b.push(Instr::Addi {
                        rd: 3,
                        ra: r,
                        imm: 0,
                    });
                    self.free(r);
                }
                self.b.branch_to(format!("ep_{}", self.cur_fn), false);
                Ok(())
            }
            Stmt::Break { line } => {
                self.mark_line(*line);
                let (_, brk) = self
                    .loop_stack
                    .last()
                    .cloned()
                    .expect("sema verified break is inside a loop");
                self.b.branch_to(brk, false);
                Ok(())
            }
            Stmt::Continue { line } => {
                self.mark_line(*line);
                let (cont, _) = self
                    .loop_stack
                    .last()
                    .cloned()
                    .expect("sema verified continue is inside a loop");
                self.b.branch_to(cont, false);
                Ok(())
            }
            Stmt::Block(b) => self.block(b),
        }
    }

    fn assign(&mut self, target: &'a Expr, value: &'a Expr, line: u32) -> Result<(), CompileError> {
        // Fast path: scalar local — one sp-relative store.
        if let ExprKind::Var(_) = &target.kind {
            if let Some(VarRef::Local { offset, ty }) = self.sema.var_refs.get(&target.id) {
                if ty.is_scalar() {
                    let (ty, offset) = (ty.clone(), *offset);
                    let vreg = self.expr(value)?;
                    let d = (LOCALS_BASE + offset) as i16;
                    let store_idx = if ty == Type::Char {
                        self.b.push(Instr::Stb { rs: vreg, ra: 1, d })
                    } else {
                        self.b.push(Instr::Stw { rs: vreg, ra: 1, d })
                    };
                    self.free(vreg);
                    self.pending_assigns.push(PendingAssign {
                        line,
                        func: self.cur_fn.clone(),
                        store_idx,
                        is_byte: ty == Type::Char,
                        is_pointer: matches!(ty, Type::Ptr(_)),
                    });
                    return Ok(());
                }
            }
        }
        let (areg, ty) = self.addr(target)?;
        let vreg = self.expr(value)?;
        let store_idx = if ty == Type::Char {
            self.b.push(Instr::Stb {
                rs: vreg,
                ra: areg,
                d: 0,
            })
        } else {
            self.b.push(Instr::Stw {
                rs: vreg,
                ra: areg,
                d: 0,
            })
        };
        self.free(vreg);
        self.free(areg);
        self.pending_assigns.push(PendingAssign {
            line,
            func: self.cur_fn.clone(),
            store_idx,
            is_byte: ty == Type::Char,
            is_pointer: matches!(ty, Type::Ptr(_)),
        });
        Ok(())
    }

    // ---- conditions ----------------------------------------------------

    /// Compile a statement-level condition, collecting its checking site.
    fn checked_cond_false(
        &mut self,
        cond: &'a Expr,
        false_label: &str,
        line: u32,
    ) -> Result<(), CompileError> {
        let op = match &cond.kind {
            ExprKind::Binary { op, .. } if op.is_comparison() => cmp_checkop(*op),
            ExprKind::Binary { op: BinOp::And, .. } => CheckOp::And,
            ExprKind::Binary { op: BinOp::Or, .. } => CheckOp::Or,
            _ => CheckOp::BoolTest,
        };
        self.collector = Some(PendingCheck {
            line,
            func: self.cur_fn.clone(),
            op,
            first_bc: None,
            muts: Vec::new(),
        });
        self.cond_false(cond, false_label)?;
        let pc = self.collector.take().expect("collector still present");
        self.pending_checks.push(pc);
        Ok(())
    }

    fn note_bc(&mut self, idx: usize) {
        if let Some(c) = &mut self.collector {
            if c.first_bc.is_none() {
                c.first_bc = Some(idx);
            }
        }
    }

    fn collect(&mut self, m: PendingMut) {
        if let Some(c) = &mut self.collector {
            c.muts.push(m);
        }
    }

    /// Branch to `label` when `e` evaluates FALSE.
    ///
    /// Returns the instruction index of the final `bc` when the condition
    /// compiled to a single branch (used by logical-swap mutations).
    fn cond_false(&mut self, e: &'a Expr, label: &str) -> Result<Option<usize>, CompileError> {
        self.cond_branch(e, label, false)
    }

    /// Branch to `label` when `e` evaluates TRUE.
    fn cond_true(&mut self, e: &'a Expr, label: &str) -> Result<Option<usize>, CompileError> {
        self.cond_branch(e, label, true)
    }

    fn cond_branch(
        &mut self,
        e: &'a Expr,
        label: &str,
        branch_when: bool,
    ) -> Result<Option<usize>, CompileError> {
        match &e.kind {
            ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
                let src = cmp_checkop(*op);
                let lreg = self.expr(lhs)?;
                match const_i16(rhs) {
                    Some(imm) => {
                        self.b.push(Instr::Cmpi {
                            crf: 0,
                            ra: lreg,
                            imm,
                        });
                        self.free(lreg);
                    }
                    None => {
                        let rreg = self.expr(rhs)?;
                        self.b.push(Instr::Cmp {
                            crf: 0,
                            ra: lreg,
                            rb: rreg,
                        });
                        self.free(rreg);
                        self.free(lreg);
                    }
                }
                let (bit, expect) = if branch_when {
                    src.true_branch()
                } else {
                    src.false_branch()
                };
                let idx = self.b.cond_branch_to(0, bit, expect, label);
                self.note_bc(idx);
                for (err, to) in swaps_for(src) {
                    let enc = if branch_when {
                        to.true_branch()
                    } else {
                        to.false_branch()
                    };
                    self.collect(PendingMut::Swap {
                        bc_idx: idx,
                        err,
                        to: enc,
                    });
                }
                Ok(Some(idx))
            }
            ExprKind::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                if branch_when {
                    // branch to label iff (lhs && rhs)
                    let skip = self.fresh("Land");
                    let l_idx = self.cond_false(lhs, &skip)?;
                    self.cond_true(rhs, label)?;
                    self.b.label(&skip);
                    if let Some(i) = l_idx {
                        // `&&`→`||`: if lhs true, branch straight to label.
                        self.collect(PendingMut::Retarget {
                            bc_idx: i,
                            err: CheckErrorType::AndToOr,
                            target: label.to_string(),
                        });
                    }
                } else {
                    // branch to label iff !(lhs && rhs)
                    let l_idx = self.cond_false(lhs, label)?;
                    self.cond_false(rhs, label)?;
                    let cont = self.fresh("Lcont");
                    self.b.label(&cont);
                    if let Some(i) = l_idx {
                        // `&&`→`||`: if lhs true, skip the rhs test.
                        self.collect(PendingMut::Retarget {
                            bc_idx: i,
                            err: CheckErrorType::AndToOr,
                            target: cont,
                        });
                    }
                }
                Ok(None)
            }
            ExprKind::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } => {
                if branch_when {
                    let l_idx = self.cond_true(lhs, label)?;
                    self.cond_true(rhs, label)?;
                    let cont = self.fresh("Lcont");
                    self.b.label(&cont);
                    if let Some(i) = l_idx {
                        // `||`→`&&`: lhs true must now *check rhs* instead
                        // of branching; i.e. lhs false skips to cont.
                        self.collect(PendingMut::Retarget {
                            bc_idx: i,
                            err: CheckErrorType::OrToAnd,
                            target: cont,
                        });
                    }
                } else {
                    let taken = self.fresh("Lor");
                    let l_idx = self.cond_true(lhs, &taken)?;
                    self.cond_false(rhs, label)?;
                    self.b.label(&taken);
                    if let Some(i) = l_idx {
                        // `||`→`&&`: lhs false must branch to the false
                        // label directly.
                        self.collect(PendingMut::Retarget {
                            bc_idx: i,
                            err: CheckErrorType::OrToAnd,
                            target: label.to_string(),
                        });
                    }
                }
                Ok(None)
            }
            ExprKind::Unary {
                op: UnOp::Not,
                operand,
            } => self.cond_branch(operand, label, !branch_when),
            ExprKind::IntLit(v) => {
                let truth = *v != 0;
                if truth == branch_when {
                    self.b.branch_to(label, false);
                }
                Ok(None)
            }
            ExprKind::CharLit(c) => {
                let truth = *c != 0;
                if truth == branch_when {
                    self.b.branch_to(label, false);
                }
                Ok(None)
            }
            _ => {
                // Plain boolean test: compare against zero.
                let r = self.expr(e)?;
                self.b.push(Instr::Cmpi {
                    crf: 0,
                    ra: r,
                    imm: 0,
                });
                self.free(r);
                // branch_when=true: branch if value != 0 → bc eq,0.
                let idx = self
                    .b
                    .cond_branch_to(0, swifi_vm::isa::CrBit::Eq, !branch_when, label);
                self.note_bc(idx);
                // Stuck-at mutations: which word forces the condition
                // depends on whether this bc fires on true or false.
                if branch_when {
                    // bc branches when condition TRUE.
                    self.collect(PendingMut::Nop {
                        bc_idx: idx,
                        err: CheckErrorType::TrueToFalse,
                    });
                    self.collect(PendingMut::Uncond {
                        bc_idx: idx,
                        err: CheckErrorType::FalseToTrue,
                        target: label.to_string(),
                    });
                } else {
                    self.collect(PendingMut::Uncond {
                        bc_idx: idx,
                        err: CheckErrorType::TrueToFalse,
                        target: label.to_string(),
                    });
                    self.collect(PendingMut::Nop {
                        bc_idx: idx,
                        err: CheckErrorType::FalseToTrue,
                    });
                }
                Ok(Some(idx))
            }
        }
    }

    // ---- expressions ---------------------------------------------------

    /// Evaluate `e` into a freshly allocated eval register.
    fn expr(&mut self, e: &'a Expr) -> Result<u8, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let r = self.alloc(e.line)?;
                self.b.load_imm(r, *v);
                Ok(r)
            }
            ExprKind::CharLit(c) => {
                let r = self.alloc(e.line)?;
                self.b.load_imm(r, *c as i32);
                Ok(r)
            }
            ExprKind::StrLit(s) => {
                let label = format!("str_{}", self.str_n);
                self.str_n += 1;
                self.b.data_label(&label);
                let mut bytes = s.clone();
                bytes.push(0);
                self.b.push_data(&bytes);
                let r = self.alloc(e.line)?;
                self.b.load_addr(r, label);
                Ok(r)
            }
            ExprKind::Var(_) => {
                match self
                    .sema
                    .var_refs
                    .get(&e.id)
                    .cloned()
                    .expect("sema resolved")
                {
                    VarRef::Local { offset, ty } => {
                        let r = self.alloc(e.line)?;
                        let d = (LOCALS_BASE + offset) as i16;
                        match ty {
                            Type::Array(..) | Type::Struct(_) => {
                                self.b.push(Instr::Addi {
                                    rd: r,
                                    ra: 1,
                                    imm: d,
                                });
                            }
                            Type::Char => {
                                self.b.push(Instr::Lbz { rd: r, ra: 1, d });
                            }
                            _ => {
                                self.b.push(Instr::Lwz { rd: r, ra: 1, d });
                            }
                        }
                        Ok(r)
                    }
                    VarRef::Global(i) => {
                        let r = self.alloc(e.line)?;
                        self.b.load_addr(r, self.glabel(i));
                        match &self.sema.globals[i].ty {
                            Type::Array(..) | Type::Struct(_) => {}
                            Type::Char => {
                                self.b.push(Instr::Lbz { rd: r, ra: r, d: 0 });
                            }
                            _ => {
                                self.b.push(Instr::Lwz { rd: r, ra: r, d: 0 });
                            }
                        }
                        Ok(r)
                    }
                }
            }
            ExprKind::Index { .. } | ExprKind::Field { .. } => {
                let (r, ty) = self.addr(e)?;
                match ty {
                    Type::Array(..) | Type::Struct(_) => Ok(r), // address *is* the value
                    Type::Char => {
                        let idx = self.b.push(Instr::Lbz { rd: r, ra: r, d: 0 });
                        self.note_index_load(e, idx, 1);
                        Ok(r)
                    }
                    _ => {
                        let idx = self.b.push(Instr::Lwz { rd: r, ra: r, d: 0 });
                        self.note_index_load(e, idx, 4);
                        Ok(r)
                    }
                }
            }
            ExprKind::Unary { op, operand } => match op {
                UnOp::Neg => {
                    let r = self.expr(operand)?;
                    self.b.push(Instr::Alu {
                        op: AluOp::Neg,
                        rd: r,
                        ra: r,
                        rb: 0,
                    });
                    Ok(r)
                }
                UnOp::Not => {
                    let r = self.expr(operand)?;
                    let lend = self.fresh("Lnot");
                    self.b.push(Instr::Cmpi {
                        crf: 0,
                        ra: r,
                        imm: 0,
                    });
                    self.b.push(Instr::Addi {
                        rd: r,
                        ra: 0,
                        imm: 1,
                    });
                    self.b
                        .cond_branch_to(0, swifi_vm::isa::CrBit::Eq, true, &lend);
                    self.b.push(Instr::Addi {
                        rd: r,
                        ra: 0,
                        imm: 0,
                    });
                    self.b.label(&lend);
                    Ok(r)
                }
                UnOp::Deref => {
                    let r = self.expr(operand)?;
                    match self.ty(e) {
                        Type::Struct(_) | Type::Array(..) => Ok(r),
                        Type::Char => {
                            self.b.push(Instr::Lbz { rd: r, ra: r, d: 0 });
                            Ok(r)
                        }
                        _ => {
                            self.b.push(Instr::Lwz { rd: r, ra: r, d: 0 });
                            Ok(r)
                        }
                    }
                }
                UnOp::Addr => {
                    let (r, _) = self.addr(operand)?;
                    Ok(r)
                }
            },
            ExprKind::Binary { op, lhs, rhs } => {
                if op.is_comparison() || op.is_logical() {
                    return self.materialize_bool(e);
                }
                let lt = self.ty(lhs).decay();
                let rt = self.ty(rhs).decay();
                let lreg = self.expr(lhs)?;
                let rreg = self.expr(rhs)?;
                // Pointer arithmetic scales by the pointee size.
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    if let Type::Ptr(p) = &lt {
                        if rt.is_arith() {
                            self.scale(rreg, self.struct_size(p), e.line)?;
                        }
                    } else if let Type::Ptr(p) = &rt {
                        if lt.is_arith() && *op == BinOp::Add {
                            self.scale(lreg, self.struct_size(p), e.line)?;
                        }
                    }
                }
                let alu = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::Mul => AluOp::Mullw,
                    BinOp::Div => AluOp::Divw,
                    BinOp::Rem => AluOp::Remw,
                    BinOp::BitAnd => AluOp::And,
                    BinOp::BitOr => AluOp::Or,
                    BinOp::BitXor => AluOp::Xor,
                    BinOp::Shl => AluOp::Slw,
                    BinOp::Shr => AluOp::Sraw,
                    _ => unreachable!("comparisons handled above"),
                };
                self.b.push(Instr::Alu {
                    op: alu,
                    rd: lreg,
                    ra: lreg,
                    rb: rreg,
                });
                self.free(rreg);
                Ok(lreg)
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                let r = self.alloc(e.line)?;
                let lelse = self.fresh("Ltern");
                let lend = self.fresh("Lend");
                // Ternary conditions are not ODC checking statements; hide
                // the collector while compiling them.
                let saved = self.collector.take();
                self.cond_false(cond, &lelse)?;
                self.collector = saved;
                let tr = self.expr(then_e)?;
                self.b.push(Instr::Addi {
                    rd: r,
                    ra: tr,
                    imm: 0,
                });
                self.free(tr);
                self.b.branch_to(&lend, false);
                self.b.label(&lelse);
                let er = self.expr(else_e)?;
                self.b.push(Instr::Addi {
                    rd: r,
                    ra: er,
                    imm: 0,
                });
                self.free(er);
                self.b.label(&lend);
                Ok(r)
            }
            ExprKind::Call { .. } => self.call_with_result(e),
        }
    }

    fn materialize_bool(&mut self, e: &'a Expr) -> Result<u8, CompileError> {
        let r = self.alloc(e.line)?;
        let ltrue = self.fresh("Ltrue");
        let lend = self.fresh("Lend");
        let saved = self.collector.take();
        self.cond_true(e, &ltrue)?;
        self.collector = saved;
        self.b.push(Instr::Addi {
            rd: r,
            ra: 0,
            imm: 0,
        });
        self.b.branch_to(&lend, false);
        self.b.label(&ltrue);
        self.b.push(Instr::Addi {
            rd: r,
            ra: 0,
            imm: 1,
        });
        self.b.label(&lend);
        Ok(r)
    }

    fn scale(&mut self, reg: u8, size: u32, line: u32) -> Result<(), CompileError> {
        if size == 1 {
            return Ok(());
        }
        let tmp = self.alloc(line)?;
        self.b.load_imm(tmp, size as i32);
        self.b.push(Instr::Alu {
            op: AluOp::Mullw,
            rd: reg,
            ra: reg,
            rb: tmp,
        });
        self.free(tmp);
        Ok(())
    }

    fn note_index_load(&mut self, e: &'a Expr, load_idx: usize, elem: u32) {
        if self.collector.is_some() && matches!(e.kind, ExprKind::Index { .. }) {
            self.collect(PendingMut::Index { load_idx, elem });
        }
    }

    /// Address of an lvalue; returns `(register, element type)`.
    fn addr(&mut self, e: &'a Expr) -> Result<(u8, Type), CompileError> {
        match &e.kind {
            ExprKind::Var(_) => {
                match self
                    .sema
                    .var_refs
                    .get(&e.id)
                    .cloned()
                    .expect("sema resolved")
                {
                    VarRef::Local { offset, ty } => {
                        let r = self.alloc(e.line)?;
                        self.b.push(Instr::Addi {
                            rd: r,
                            ra: 1,
                            imm: (LOCALS_BASE + offset) as i16,
                        });
                        Ok((r, ty))
                    }
                    VarRef::Global(i) => {
                        let r = self.alloc(e.line)?;
                        self.b.load_addr(r, self.glabel(i));
                        Ok((r, self.sema.globals[i].ty.clone()))
                    }
                }
            }
            ExprKind::Index { base, index } => {
                let bt = self.ty(base);
                let (breg, elem_ty) = match bt {
                    Type::Array(t, _) => {
                        let (r, _) = self.addr(base)?;
                        (r, *t)
                    }
                    Type::Ptr(t) => {
                        let r = self.expr(base)?;
                        (r, *t)
                    }
                    other => unreachable!("sema allows indexing only arrays/pointers: {other:?}"),
                };
                let ireg = self.expr(index)?;
                self.scale(ireg, self.struct_size(&elem_ty), e.line)?;
                self.b.push(Instr::Alu {
                    op: AluOp::Add,
                    rd: breg,
                    ra: breg,
                    rb: ireg,
                });
                self.free(ireg);
                Ok((breg, elem_ty))
            }
            ExprKind::Field { base, field, arrow } => {
                let (breg, sidx) = if *arrow {
                    let r = self.expr(base)?;
                    match self.ty(base).decay() {
                        Type::Ptr(p) => match *p {
                            Type::Struct(i) => (r, i),
                            _ => unreachable!("sema checked arrow base"),
                        },
                        _ => unreachable!("sema checked arrow base"),
                    }
                } else {
                    let (r, ty) = self.addr(base)?;
                    match ty {
                        Type::Struct(i) => (r, i),
                        _ => unreachable!("sema checked dot base"),
                    }
                };
                let f = self.sema.structs[sidx]
                    .fields
                    .iter()
                    .find(|f| &f.name == field)
                    .expect("sema checked field");
                let (off, fty) = (f.offset, f.ty.clone());
                if off != 0 {
                    self.b.push(Instr::Addi {
                        rd: breg,
                        ra: breg,
                        imm: off as i16,
                    });
                }
                Ok((breg, fty))
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand,
            } => {
                let r = self.expr(operand)?;
                match self.ty(operand).decay() {
                    Type::Ptr(t) => Ok((r, *t)),
                    other => unreachable!("sema checked deref: {other:?}"),
                }
            }
            _ => unreachable!("sema rejected non-lvalues"),
        }
    }

    fn call_void(&mut self, e: &'a Expr) -> Result<(), CompileError> {
        self.emit_call(e)?;
        Ok(())
    }

    fn call_with_result(&mut self, e: &'a Expr) -> Result<u8, CompileError> {
        self.emit_call(e)?;
        let r = self.alloc(e.line)?;
        self.b.push(Instr::Addi {
            rd: r,
            ra: 3,
            imm: 0,
        });
        Ok(r)
    }

    fn emit_call(&mut self, e: &'a Expr) -> Result<(), CompileError> {
        let (name, args) = match &e.kind {
            ExprKind::Call { name, args } => (name, args),
            _ => unreachable!("emit_call on non-call"),
        };
        let mut regs = Vec::new();
        for a in args {
            regs.push(self.expr(a)?);
        }
        for (i, &r) in regs.iter().enumerate() {
            self.b.push(Instr::Addi {
                rd: 3 + i as u8,
                ra: r,
                imm: 0,
            });
        }
        for &r in regs.iter().rev() {
            self.free(r);
        }
        if is_builtin(name) {
            let call = match name.as_str() {
                "print_int" => Syscall::PrintInt,
                "print_char" => Syscall::PrintChar,
                "print_str" => Syscall::PrintStr,
                "read_int" => Syscall::ReadInt,
                "read_byte" => Syscall::ReadByte,
                "malloc" => Syscall::Malloc,
                "free" => Syscall::Free,
                "core_id" => Syscall::CoreId,
                "num_cores" => Syscall::NumCores,
                "barrier" => Syscall::Barrier,
                other => unreachable!("unknown builtin `{other}`"),
            };
            self.b.push(Instr::Sc { call });
        } else {
            self.b.branch_to(format!("fn_{name}"), true);
        }
        Ok(())
    }
}

fn cmp_checkop(op: BinOp) -> CheckOp {
    match op {
        BinOp::Lt => CheckOp::Lt,
        BinOp::Le => CheckOp::Le,
        BinOp::Gt => CheckOp::Gt,
        BinOp::Ge => CheckOp::Ge,
        BinOp::Eq => CheckOp::Eq,
        BinOp::Ne => CheckOp::Ne,
        other => unreachable!("not a comparison: {other:?}"),
    }
}

/// The operator-swap error types applicable to each source comparison,
/// per the paper's Table 3.
fn swaps_for(op: CheckOp) -> Vec<(CheckErrorType, CheckOp)> {
    match op {
        CheckOp::Lt => vec![(CheckErrorType::LtToLe, CheckOp::Le)],
        CheckOp::Le => vec![(CheckErrorType::LeToLt, CheckOp::Lt)],
        CheckOp::Gt => vec![(CheckErrorType::GtToGe, CheckOp::Ge)],
        CheckOp::Ge => vec![(CheckErrorType::GeToGt, CheckOp::Gt)],
        CheckOp::Eq => vec![
            (CheckErrorType::EqToNe, CheckOp::Ne),
            (CheckErrorType::EqToGe, CheckOp::Ge),
            (CheckErrorType::EqToLe, CheckOp::Le),
        ],
        CheckOp::Ne => vec![(CheckErrorType::NeToEq, CheckOp::Eq)],
        _ => vec![],
    }
}

fn const_i16(e: &Expr) -> Option<i16> {
    match e.kind {
        ExprKind::IntLit(v) => i16::try_from(v).ok(),
        ExprKind::CharLit(c) => Some(c as i16),
        _ => None,
    }
}
