//! Machine-level debug information emitted by the compiler.
//!
//! This is the reproduction of what the paper obtained from "the compiler
//! facilities in terms of symbol tables and labels" (§6.3): for every
//! source-level *assignment* and *checking* statement, the exact machine
//! instruction(s) realising it, plus — for checking statements — the
//! ready-made corrupted instruction word for every applicable error type of
//! the paper's Table 3.

use swifi_vm::isa::CrBit;

pub use swifi_odc::CheckErrorType;

/// ODC-style comparison/condition operator at a checking location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CheckOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    /// A plain boolean test (`if (x)`, `while (!done)`).
    BoolTest,
}

impl CheckOp {
    /// `(bit, expect)` of a `bc` that branches when the comparison is TRUE.
    pub fn true_branch(self) -> (CrBit, bool) {
        match self {
            CheckOp::Lt => (CrBit::Lt, true),
            CheckOp::Le => (CrBit::Gt, false),
            CheckOp::Gt => (CrBit::Gt, true),
            CheckOp::Ge => (CrBit::Lt, false),
            CheckOp::Eq => (CrBit::Eq, true),
            CheckOp::Ne => (CrBit::Eq, false),
            CheckOp::And | CheckOp::Or | CheckOp::BoolTest => (CrBit::Eq, false),
        }
    }

    /// `(bit, expect)` of a `bc` that branches when the comparison is FALSE.
    pub fn false_branch(self) -> (CrBit, bool) {
        let (bit, expect) = self.true_branch();
        (bit, !expect)
    }
}

/// One concrete way to inject a checking error at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMutation {
    /// Replace the instruction word at `addr` with `word` (realised as an
    /// instruction-bus or instruction-memory fault).
    ReplaceWord {
        /// Guest address of the instruction.
        addr: u32,
        /// The corrupted word.
        word: u32,
    },
    /// Offset the effective address of the load at `addr` by `delta` bytes
    /// (an address-bus fault) — the `[i]` → `[i±1]` error types.
    AdjustLoadAddr {
        /// Guest address of the load instruction.
        addr: u32,
        /// Byte delta (± element size).
        delta: i32,
    },
}

/// A source-level *checking* statement and every applicable Table-3 error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSite {
    /// 1-based source line of the `if`/`while`/`for` condition.
    pub line: u32,
    /// Enclosing function.
    pub func: String,
    /// Top-level operator of the condition.
    pub op: CheckOp,
    /// Guest address of the (first) conditional branch.
    pub branch_addr: u32,
    /// Every applicable error type with its machine realisation.
    pub mutations: Vec<(CheckErrorType, CheckMutation)>,
}

/// A source-level *assignment* statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignSite {
    /// 1-based source line.
    pub line: u32,
    /// Enclosing function.
    pub func: String,
    /// Guest address of the store instruction that commits the assignment.
    pub store_addr: u32,
    /// Whether the store is a byte store (`char` targets).
    pub is_byte: bool,
    /// Whether the assigned variable has pointer type (random-value errors
    /// on pointers are what turns dynamic-structure programs into
    /// crash-heavy targets).
    pub is_pointer: bool,
}

/// Code range of a compiled function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Function name.
    pub name: String,
    /// Guest address of the first instruction.
    pub start_addr: u32,
    /// Guest address one past the last instruction.
    pub end_addr: u32,
    /// 1-based source line of the definition.
    pub line: u32,
}

impl FunctionInfo {
    /// Whether `addr` lies inside this function.
    pub fn contains(&self, addr: u32) -> bool {
        (self.start_addr..self.end_addr).contains(&addr)
    }
}

/// Full debug information for a compiled program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DebugInfo {
    /// Per-function code ranges.
    pub functions: Vec<FunctionInfo>,
    /// Every assignment location.
    pub assigns: Vec<AssignSite>,
    /// Every checking location.
    pub checks: Vec<CheckSite>,
    /// `(guest address, source line)` pairs at statement starts, ascending.
    pub line_map: Vec<(u32, u32)>,
}

impl DebugInfo {
    /// The function containing `addr`, if any.
    pub fn function_at(&self, addr: u32) -> Option<&FunctionInfo> {
        self.functions.iter().find(|f| f.contains(addr))
    }

    /// The source line active at `addr` (last statement start ≤ `addr`).
    pub fn line_at(&self, addr: u32) -> Option<u32> {
        match self.line_map.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => Some(self.line_map[i].1),
            Err(0) => None,
            Err(i) => Some(self.line_map[i - 1].1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_encodings_complement() {
        for op in [
            CheckOp::Lt,
            CheckOp::Le,
            CheckOp::Gt,
            CheckOp::Ge,
            CheckOp::Eq,
            CheckOp::Ne,
        ] {
            let (bt, et) = op.true_branch();
            let (bf, ef) = op.false_branch();
            assert_eq!(bt, bf);
            assert_ne!(et, ef);
        }
    }

    #[test]
    fn labels_cover_all_types() {
        for t in CheckErrorType::ALL {
            assert!(!t.label().is_empty());
        }
        assert_eq!(CheckErrorType::ALL.len(), 14);
    }

    #[test]
    fn line_at_uses_last_statement_start() {
        let d = DebugInfo {
            line_map: vec![(0x100, 1), (0x110, 2), (0x120, 5)],
            ..DebugInfo::default()
        };
        assert_eq!(d.line_at(0x0FC), None);
        assert_eq!(d.line_at(0x100), Some(1));
        assert_eq!(d.line_at(0x114), Some(2));
        assert_eq!(d.line_at(0x200), Some(5));
    }
}
