//! Pretty-printer: AST → canonical MiniC source.
//!
//! Used for diagnostics (showing the source form of a fault location), for
//! the parse → print → parse round-trip property tests, and by tools that
//! transform programs (e.g. mutation studies at source level).

use std::fmt::Write;

use crate::ast::*;

/// Render a whole program as canonical MiniC source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.structs {
        print_struct(&mut out, s);
        out.push('\n');
    }
    for g in &p.globals {
        print_var_decl(&mut out, g, 0);
    }
    if !p.globals.is_empty() {
        out.push('\n');
    }
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, f);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn type_prefix(t: &TypeExpr) -> String {
    let base = match &t.base {
        BaseType::Int => "int".to_string(),
        BaseType::Char => "char".to_string(),
        BaseType::Void => "void".to_string(),
        BaseType::Struct(n) => format!("struct {n}"),
    };
    format!("{}{}", base, "*".repeat(t.ptr_depth as usize))
}

fn dims_suffix(t: &TypeExpr) -> String {
    t.dims.iter().map(|d| format!("[{d}]")).collect()
}

fn print_struct(out: &mut String, s: &StructDef) {
    let _ = writeln!(out, "struct {} {{", s.name);
    for (name, ty) in &s.fields {
        let _ = writeln!(out, "    {} {}{};", type_prefix(ty), name, dims_suffix(ty));
    }
    out.push_str("};\n");
}

fn print_var_decl(out: &mut String, d: &VarDecl, level: usize) {
    indent(out, level);
    let _ = write!(
        out,
        "{} {}{}",
        type_prefix(&d.ty),
        d.name,
        dims_suffix(&d.ty)
    );
    if let Some(init) = &d.init {
        let _ = write!(out, " = {}", print_expr(init));
    }
    out.push_str(";\n");
}

fn print_function(out: &mut String, f: &Function) {
    let params = if f.params.is_empty() {
        String::new()
    } else {
        f.params
            .iter()
            .map(|(n, t)| format!("{} {n}", type_prefix(t)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "{} {}({}) {{", type_prefix(&f.ret), f.name, params);
    print_block_body(out, &f.body, 1);
    out.push_str("}\n");
}

fn print_block_body(out: &mut String, b: &Block, level: usize) {
    for d in &b.decls {
        print_var_decl(out, d, level);
    }
    for s in &b.stmts {
        print_stmt(out, s, level);
    }
}

fn print_braced(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    print_block_body(out, b, level + 1);
    indent(out, level);
    out.push('}');
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Assign { target, value, .. } => {
            let _ = writeln!(out, "{} = {};", print_expr(target), print_expr(value));
        }
        Stmt::Expr { expr, .. } => {
            let _ = writeln!(out, "{};", print_expr(expr));
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            let _ = write!(out, "if ({}) ", print_expr(cond));
            print_braced(out, then_blk, level);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                print_braced(out, e, level);
            }
            out.push('\n');
        }
        Stmt::While { cond, body, .. } => {
            let _ = write!(out, "while ({}) ", print_expr(cond));
            print_braced(out, body, level);
            out.push('\n');
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            out.push_str("for (");
            if let Some(i) = init {
                out.push_str(&print_simple_stmt(i));
            }
            out.push_str("; ");
            if let Some(c) = cond {
                out.push_str(&print_expr(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                out.push_str(&print_simple_stmt(st));
            }
            out.push_str(") ");
            print_braced(out, body, level);
            out.push('\n');
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => {
                let _ = writeln!(out, "return {};", print_expr(v));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Break { .. } => out.push_str("break;\n"),
        Stmt::Continue { .. } => out.push_str("continue;\n"),
        Stmt::Block(b) => {
            print_braced(out, b, level);
            out.push('\n');
        }
    }
}

fn print_simple_stmt(s: &Stmt) -> String {
    match s {
        Stmt::Assign { target, value, .. } => {
            format!("{} = {}", print_expr(target), print_expr(value))
        }
        Stmt::Expr { expr, .. } => print_expr(expr),
        other => unreachable!("for-header statements are simple: {other:?}"),
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

/// Render one expression (fully parenthesised, so precedence never
/// changes the reading).
pub fn print_expr(e: &Expr) -> String {
    match &e.kind {
        // The parser only ever builds non-negative literals (a leading `-`
        // becomes a unary negation), but mutation can wrap a literal past
        // `i32::MAX`. Render negatives in the form the reparse produces so
        // mutant sources stay canonical — and render `i32::MIN` (whose
        // magnitude is out of 32-bit literal range) as an expression.
        ExprKind::IntLit(v) if *v == i32::MIN => format!("(-({}) - 1)", i32::MAX),
        ExprKind::IntLit(v) if *v < 0 => format!("-({})", v.unsigned_abs()),
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::CharLit(c) => match *c {
            b'\n' => "'\\n'".to_string(),
            b'\t' => "'\\t'".to_string(),
            b'\r' => "'\\r'".to_string(),
            0 => "'\\0'".to_string(),
            b'\\' => "'\\\\'".to_string(),
            b'\'' => "'\\''".to_string(),
            c if (32..127).contains(&c) => format!("'{}'", c as char),
            // Non-printable bytes have no literal syntax; fall back to the
            // numeric value. The reparse reads it as an `IntLit` of the same
            // value — `int`/`char` are mutually assignable, and the numeric
            // form is its own canonical rendering.
            c => c.to_string(),
        },
        ExprKind::StrLit(s) => {
            let mut out = String::from("\"");
            for &b in s {
                match b {
                    b'\n' => out.push_str("\\n"),
                    b'\t' => out.push_str("\\t"),
                    b'"' => out.push_str("\\\""),
                    b'\\' => out.push_str("\\\\"),
                    0 => out.push_str("\\0"),
                    b => out.push(b as char),
                }
            }
            out.push('"');
            out
        }
        ExprKind::Var(n) => n.clone(),
        ExprKind::Index { base, index } => {
            format!("{}[{}]", print_expr(base), print_expr(index))
        }
        ExprKind::Field { base, field, arrow } => {
            format!(
                "{}{}{}",
                print_expr(base),
                if *arrow { "->" } else { "." },
                field
            )
        }
        ExprKind::Unary { op, operand } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::Deref => "*",
                UnOp::Addr => "&",
            };
            format!("{sym}({})", print_expr(operand))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            format!(
                "({} {} {})",
                print_expr(lhs),
                binop_str(*op),
                print_expr(rhs)
            )
        }
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            format!(
                "({} ? {} : {})",
                print_expr(cond),
                print_expr(then_e),
                print_expr(else_e)
            )
        }
        ExprKind::Call { name, args } => {
            let args = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("{name}({args})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Structural equality that ignores expression ids and line numbers:
    /// compare canonical printed forms.
    fn canon(src: &str) -> String {
        print_program(&parse(src).expect("parses"))
    }

    #[test]
    fn round_trip_is_stable() {
        let srcs = [
            "int g = 4; void main() { int x; x = g * (2 + 1); print_int(x); }",
            "struct n { int v; struct n *next; };
             void main() { struct n *p; p = malloc(8); p->v = 1; free(p); }",
            "void main() {
               int i;
               for (i = 0; i < 10; i = i + 1) {
                 if (i % 2 == 0 && i > 2) { continue; } else { break; }
               }
               while (!(i == 0)) { i = i - 1; }
             }",
            "int f(int a, char b) { return (a > b) ? a : -a; }
             void main() { print_int(f(1, 'x')); }",
            "char buf[8]; void main() { buf[0] = '\\n'; print_str(\"a\\\"b\"); }",
        ];
        for src in srcs {
            let once = canon(src);
            let twice = canon(&once);
            assert_eq!(once, twice, "printing is not a fixpoint for:\n{src}");
        }
    }

    #[test]
    fn vendored_programs_round_trip() {
        // The big one: every vendored target program must survive
        // parse → print → parse → print unchanged.
        // (Exercised here on the compiler's own test corpus to keep the
        // crate dependency graph acyclic; the programs crate re-runs this
        // over the roster.)
        let src = "int kd[64][64];
            void explore(int src, int r, int c, int d) {
                int k;
                if (d >= kd[src][r * 8 + c]) { return; }
                kd[src][r * 8 + c] = d;
                for (k = 0; k < 8; k = k + 1) { explore(src, r, c, d + 1); }
            }
            void main() { explore(0, 0, 0, 0); }";
        let once = canon(src);
        assert_eq!(once, canon(&once));
    }

    #[test]
    fn printed_source_compiles_equivalently() {
        use swifi_vm::machine::{Machine, MachineConfig};
        use swifi_vm::Noop;
        let src = "void main() {
                     int i; int s;
                     s = 0;
                     for (i = 1; i <= 6; i = i + 1) { s = s + i * i; }
                     print_int(s);
                   }";
        let printed = canon(src);
        let run = |s: &str| {
            let p = crate::compile(s).expect("compiles");
            let mut m = Machine::new(MachineConfig::default());
            m.load(&p.image);
            m.run(&mut Noop).output().to_vec()
        };
        assert_eq!(run(src), run(&printed));
    }

    #[test]
    fn expr_forms() {
        let p = parse("void main() { int x; x = -(1) + 2 * 3; }").unwrap();
        match &p.functions[0].body.stmts[0] {
            crate::ast::Stmt::Assign { value, .. } => {
                assert_eq!(print_expr(value), "(-(1) + (2 * 3))");
            }
            _ => unreachable!(),
        }
    }

    fn lit(v: i32) -> crate::ast::Expr {
        crate::ast::Expr {
            id: 0,
            line: 1,
            kind: crate::ast::ExprKind::IntLit(v),
        }
    }

    #[test]
    fn negative_literals_print_in_reparse_form() {
        // The parser never builds negative `IntLit`s, but mutation can
        // (WCV wraps `i32::MAX` to `i32::MIN`). The printed form must
        // reparse — `i32::MIN` itself has no in-range literal spelling —
        // and must already be the canonical rendering of its reparse.
        assert_eq!(print_expr(&lit(-5)), "-(5)");
        assert_eq!(print_expr(&lit(i32::MIN)), "(-(2147483647) - 1)");
        for v in [-5, i32::MIN] {
            let frag = print_expr(&lit(v));
            let src = format!("void main() {{ int x; x = {frag}; }}");
            assert_eq!(canon(&src), canon(&canon(&src)), "not canonical: {frag}");
            crate::compile(&src).unwrap_or_else(|e| panic!("{frag}: {e:?}"));
        }
    }

    #[test]
    fn nonprintable_char_literal_prints_as_its_value() {
        // No literal syntax exists for these bytes; the numeric fallback
        // must reparse (as an equal-valued `IntLit`) and stay canonical.
        let e = crate::ast::Expr {
            id: 0,
            line: 1,
            kind: crate::ast::ExprKind::CharLit(200),
        };
        assert_eq!(print_expr(&e), "200");
        let src = "void main() { char c; c = 200; }";
        assert_eq!(canon(src), canon(&canon(src)));
        crate::compile(src).expect("int value assigns to char");
    }

    #[test]
    fn every_mutation_operator_fragment_renders_and_reparses() {
        // Satellite oracle for the mutation engine: each operator's
        // output fragment must pretty-print to source that reparses and
        // recompiles, with the mutant source already canonical.
        use swifi_odc::MutationOperator;
        let src = "int limit = 10;
            void note(int d) { print_int(d); }
            void main() {
                int i;
                int s;
                s = 2147483647;
                s = 0;
                for (i = 0; i < limit; i = i + 1) {
                    if (i > 2) { s = s + i; }
                    note(i);
                }
                while (s > 100) { s = s - 3; }
                print_int(s);
            }";
        let ast = parse(src).expect("fixture parses");
        for op in MutationOperator::ALL {
            let ms = crate::mutate::mutants_for(&ast, op);
            assert!(!ms.is_empty(), "operator {op} found no sites");
            for m in &ms {
                assert_eq!(
                    canon(&m.source),
                    m.source,
                    "mutant {} is not canonical",
                    m.id
                );
                crate::compile(&m.source)
                    .unwrap_or_else(|e| panic!("mutant {} does not compile: {e:?}", m.id));
            }
        }
        // The WCV site on `2147483647` exercises the wrap to `i32::MIN`:
        // the drift this test pins down.
        let wcv = crate::mutate::mutants_for(&ast, MutationOperator::WrongConstant);
        assert!(
            wcv.iter().any(|m| m.source.contains("(-(2147483647) - 1)")),
            "expected a wrapped i32::MIN literal in some WCV mutant"
        );
    }
}
