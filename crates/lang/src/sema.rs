//! Semantic analysis: type checking, name resolution, and frame layout.
//!
//! The layout rules matter for paper fidelity: block locals are assigned
//! stack slots in declaration order, so changing `char phrase[80]` to
//! `char phrase[81]` shifts the frame offsets of every later variable —
//! exactly the machine-level footprint of the JB.team6 assignment fault the
//! paper analyses in its Figure 4.

use std::collections::HashMap;

use crate::ast::*;
use crate::lexer::CompileError;

/// A resolved MiniC type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 8-bit unsigned character.
    Char,
    /// No value.
    Void,
    /// Pointer; `Ptr(Void)` is the type of `malloc` results and is
    /// assignable to and from any pointer.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// Struct by index into [`SemaOutput::structs`].
    Struct(usize),
}

impl Type {
    /// Size in bytes given the struct table.
    pub fn size(&self, structs: &[StructLayout]) -> u32 {
        match self {
            Type::Int | Type::Ptr(_) => 4,
            Type::Char => 1,
            Type::Void => 0,
            Type::Array(t, n) => t.size(structs) * *n as u32,
            Type::Struct(i) => structs[*i].size,
        }
    }

    /// Alignment in bytes.
    pub fn align(&self, structs: &[StructLayout]) -> u32 {
        match self {
            Type::Int | Type::Ptr(_) => 4,
            Type::Char => 1,
            Type::Void => 1,
            Type::Array(t, _) => t.align(structs),
            Type::Struct(i) => structs[*i].align,
        }
    }

    /// Whether the type is usable in arithmetic/conditions.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Ptr(_))
    }

    /// Whether the type is `int` or `char`.
    pub fn is_arith(&self) -> bool {
        matches!(self, Type::Int | Type::Char)
    }

    /// Array-to-pointer decay; other types unchanged.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(t, _) => Type::Ptr(t.clone()),
            other => other.clone(),
        }
    }
}

/// A struct's computed layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Struct tag.
    pub name: String,
    /// Fields with byte offsets.
    pub fields: Vec<FieldLayout>,
    /// Total size (padded to alignment).
    pub size: u32,
    /// Alignment.
    pub align: u32,
}

/// One field of a [`StructLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset within the struct.
    pub offset: u32,
}

/// Resolution of a variable reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarRef {
    /// A stack-frame local; `offset` is relative to the start of the
    /// function's locals area.
    Local {
        /// Byte offset within the locals area.
        offset: u32,
        /// Variable type.
        ty: Type,
    },
    /// A global; index into [`SemaOutput::globals`].
    Global(usize),
}

/// Layout of one global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalLayout {
    /// Variable name.
    pub name: String,
    /// Variable type.
    pub ty: Type,
}

/// Per-function layout and signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnLayout {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameter types (also the first locals).
    pub params: Vec<Type>,
    /// Total bytes of the locals area (8-byte aligned).
    pub locals_size: u32,
    /// Offsets (within the locals area) of the parameter slots.
    pub param_offsets: Vec<u32>,
    /// All local slots, in declaration order (params first), as
    /// `(name, type, offset)` — consumed by debug info and by the
    /// stack-shift analysis of assignment faults.
    pub slots: Vec<(String, Type, u32)>,
}

/// Output of [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct SemaOutput {
    /// Type of every expression, keyed by `Expr::id`.
    pub expr_types: HashMap<usize, Type>,
    /// Resolution of every `ExprKind::Var`, keyed by `Expr::id`.
    pub var_refs: HashMap<usize, VarRef>,
    /// Struct layouts (indexed by `Type::Struct`).
    pub structs: Vec<StructLayout>,
    /// Global layouts, in declaration order.
    pub globals: Vec<GlobalLayout>,
    /// Function layouts, parallel to `Program::functions`.
    pub functions: Vec<FnLayout>,
    /// For declaration initializers: the declared slot, keyed by the
    /// *initializer expression's* id (names alone are ambiguous under
    /// shadowing).
    pub decl_slots: HashMap<usize, (u32, Type)>,
}

/// Builtin functions provided by the VM runtime.
///
/// `(name, param types, return type)`; `malloc` returns `Ptr(Void)`.
fn builtins() -> Vec<(&'static str, Vec<Type>, Type)> {
    vec![
        ("print_int", vec![Type::Int], Type::Void),
        ("print_char", vec![Type::Int], Type::Void),
        (
            "print_str",
            vec![Type::Ptr(Box::new(Type::Char))],
            Type::Void,
        ),
        ("read_int", vec![], Type::Int),
        ("read_byte", vec![], Type::Int),
        ("malloc", vec![Type::Int], Type::Ptr(Box::new(Type::Void))),
        ("free", vec![Type::Ptr(Box::new(Type::Void))], Type::Void),
        ("core_id", vec![], Type::Int),
        ("num_cores", vec![], Type::Int),
        ("barrier", vec![], Type::Void),
    ]
}

/// Whether `name` is a VM builtin.
pub fn is_builtin(name: &str) -> bool {
    builtins().iter().any(|(n, _, _)| *n == name)
}

struct Sema<'a> {
    prog: &'a Program,
    out: SemaOutput,
    struct_index: HashMap<String, usize>,
    global_index: HashMap<String, usize>,
    fn_sigs: HashMap<String, (Vec<Type>, Type)>,
    // Current function state.
    scopes: Vec<HashMap<String, (u32, Type)>>,
    next_offset: u32,
    slots: Vec<(String, Type, u32)>,
    ret: Type,
    loop_depth: u32,
}

/// Run semantic analysis over a parsed program.
///
/// # Errors
///
/// Returns [`CompileError`] for type errors, unresolved names, bad lvalues,
/// `break`/`continue` outside loops, and layout restrictions (array-typed
/// parameters, more than 8 parameters).
pub fn analyze(prog: &Program) -> Result<SemaOutput, CompileError> {
    let mut s = Sema {
        prog,
        out: SemaOutput::default(),
        struct_index: HashMap::new(),
        global_index: HashMap::new(),
        fn_sigs: HashMap::new(),
        scopes: Vec::new(),
        next_offset: 0,
        slots: Vec::new(),
        ret: Type::Void,
        loop_depth: 0,
    };
    s.structs()?;
    s.globals()?;
    s.signatures()?;
    for (i, f) in prog.functions.iter().enumerate() {
        s.function(i, f)?;
    }
    Ok(s.out)
}

impl<'a> Sema<'a> {
    fn resolve_type(&self, te: &TypeExpr, line: u32) -> Result<Type, CompileError> {
        let mut t = match &te.base {
            BaseType::Int => Type::Int,
            BaseType::Char => Type::Char,
            BaseType::Void => Type::Void,
            BaseType::Struct(name) => match self.struct_index.get(name) {
                Some(&i) => Type::Struct(i),
                None => {
                    return Err(CompileError::new(line, format!("unknown struct `{name}`")));
                }
            },
        };
        for _ in 0..te.ptr_depth {
            t = Type::Ptr(Box::new(t));
        }
        for &d in te.dims.iter().rev() {
            t = Type::Array(Box::new(t), d);
        }
        Ok(t)
    }

    fn structs(&mut self) -> Result<(), CompileError> {
        for sd in &self.prog.structs {
            if self.struct_index.contains_key(&sd.name) {
                return Err(CompileError::new(
                    sd.line,
                    format!("duplicate struct `{}`", sd.name),
                ));
            }
            // Reserve the index first so pointer fields can refer to the
            // struct being defined (linked lists).
            let idx = self.out.structs.len();
            self.struct_index.insert(sd.name.clone(), idx);
            self.out.structs.push(StructLayout {
                name: sd.name.clone(),
                fields: Vec::new(),
                size: 0,
                align: 1,
            });
            let mut fields = Vec::new();
            let mut offset = 0u32;
            let mut align = 1u32;
            for (fname, fty) in &sd.fields {
                let ty = self.resolve_type(fty, sd.line)?;
                if let Type::Struct(i) = ty {
                    if i == idx {
                        return Err(CompileError::new(
                            sd.line,
                            "struct cannot contain itself by value (use a pointer)",
                        ));
                    }
                }
                if ty == Type::Void {
                    return Err(CompileError::new(sd.line, "field cannot have type void"));
                }
                let a = ty.align(&self.out.structs);
                let size = ty.size(&self.out.structs);
                offset = offset.div_ceil(a) * a;
                fields.push(FieldLayout {
                    name: fname.clone(),
                    ty,
                    offset,
                });
                offset += size;
                align = align.max(a);
            }
            let size = offset.div_ceil(align) * align;
            let entry = &mut self.out.structs[idx];
            entry.fields = fields;
            entry.size = size.max(1);
            entry.align = align;
        }
        Ok(())
    }

    fn globals(&mut self) -> Result<(), CompileError> {
        for g in &self.prog.globals {
            if self.global_index.contains_key(&g.name) {
                return Err(CompileError::new(
                    g.line,
                    format!("duplicate global `{}`", g.name),
                ));
            }
            let ty = self.resolve_type(&g.ty, g.line)?;
            if ty == Type::Void {
                return Err(CompileError::new(g.line, "variable cannot have type void"));
            }
            if let Some(init) = &g.init {
                match &init.kind {
                    ExprKind::IntLit(_) | ExprKind::CharLit(_) => {}
                    _ => {
                        return Err(CompileError::new(
                            g.line,
                            "global initializers must be integer or char literals",
                        ));
                    }
                }
                // Record the literal's type so codegen can look it up.
                let t = match &init.kind {
                    ExprKind::IntLit(_) => Type::Int,
                    _ => Type::Char,
                };
                self.out.expr_types.insert(init.id, t);
            }
            self.global_index
                .insert(g.name.clone(), self.out.globals.len());
            self.out.globals.push(GlobalLayout {
                name: g.name.clone(),
                ty,
            });
        }
        Ok(())
    }

    fn signatures(&mut self) -> Result<(), CompileError> {
        for (name, params, ret) in builtins() {
            self.fn_sigs.insert(name.to_string(), (params, ret));
        }
        for f in &self.prog.functions {
            if self.fn_sigs.contains_key(&f.name) {
                return Err(CompileError::new(
                    f.line,
                    format!("duplicate function (or builtin clash) `{}`", f.name),
                ));
            }
            if f.params.len() > 8 {
                return Err(CompileError::new(
                    f.line,
                    "at most 8 parameters are supported",
                ));
            }
            let ret = self.resolve_type(&f.ret, f.line)?;
            let mut params = Vec::new();
            for (pname, pty) in &f.params {
                if !pty.dims.is_empty() {
                    return Err(CompileError::new(
                        f.line,
                        format!("array-typed parameter `{pname}` not supported (pass a pointer)"),
                    ));
                }
                let t = self.resolve_type(pty, f.line)?;
                if !t.is_scalar() {
                    return Err(CompileError::new(
                        f.line,
                        format!("parameter `{pname}` must be scalar"),
                    ));
                }
                params.push(t);
            }
            self.fn_sigs.insert(f.name.clone(), (params, ret));
        }
        Ok(())
    }

    fn alloc_slot(&mut self, name: &str, ty: &Type, line: u32) -> Result<u32, CompileError> {
        if self.scopes.last().is_some_and(|s| s.contains_key(name)) {
            return Err(CompileError::new(
                line,
                format!("duplicate variable `{name}`"),
            ));
        }
        let a = ty.align(&self.out.structs);
        let size = ty.size(&self.out.structs);
        self.next_offset = self.next_offset.div_ceil(a) * a;
        let off = self.next_offset;
        self.next_offset += size;
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), (off, ty.clone()));
        self.slots.push((name.to_string(), ty.clone(), off));
        Ok(off)
    }

    fn lookup(&self, name: &str) -> Option<VarRef> {
        for scope in self.scopes.iter().rev() {
            if let Some((off, ty)) = scope.get(name) {
                return Some(VarRef::Local {
                    offset: *off,
                    ty: ty.clone(),
                });
            }
        }
        self.global_index.get(name).map(|&i| VarRef::Global(i))
    }

    fn function(&mut self, idx: usize, f: &'a Function) -> Result<(), CompileError> {
        let (params, ret) = self.fn_sigs[&f.name].clone();
        self.ret = ret.clone();
        self.scopes = vec![HashMap::new()];
        self.next_offset = 0;
        self.slots = Vec::new();
        self.loop_depth = 0;
        let mut param_offsets = Vec::new();
        for ((pname, _), pty) in f.params.iter().zip(&params) {
            param_offsets.push(self.alloc_slot(pname, pty, f.line)?);
        }
        self.block(&f.body)?;
        let locals_size = (self.next_offset + 7) & !7;
        debug_assert_eq!(self.out.functions.len(), idx);
        self.out.functions.push(FnLayout {
            name: f.name.clone(),
            ret,
            params,
            locals_size,
            param_offsets,
            slots: std::mem::take(&mut self.slots),
        });
        Ok(())
    }

    fn block(&mut self, b: &'a Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for d in &b.decls {
            let ty = self.resolve_type(&d.ty, d.line)?;
            if ty == Type::Void {
                return Err(CompileError::new(d.line, "variable cannot have type void"));
            }
            let off = self.alloc_slot(&d.name, &ty, d.line)?;
            if let Some(init) = &d.init {
                let vt = self.expr(init)?;
                self.check_assignable(&ty, &vt, init, d.line)?;
                if matches!(ty, Type::Array(..) | Type::Struct(_)) {
                    return Err(CompileError::new(
                        d.line,
                        "array/struct variables cannot have initializers",
                    ));
                }
                self.out.decl_slots.insert(init.id, (off, ty.clone()));
            }
        }
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &'a Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                let tt = self.lvalue(target)?;
                if matches!(tt, Type::Array(..) | Type::Struct(_)) {
                    return Err(CompileError::new(
                        *line,
                        "cannot assign to an array or whole struct",
                    ));
                }
                let vt = self.expr(value)?;
                self.check_assignable(&tt, &vt, value, *line)?;
            }
            Stmt::Expr { expr, line } => {
                if !matches!(expr.kind, ExprKind::Call { .. }) {
                    return Err(CompileError::new(
                        *line,
                        "expression statements must be function calls",
                    ));
                }
                self.expr(expr)?;
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                line,
            } => {
                let ct = self.expr(cond)?;
                if !ct.decay().is_scalar() {
                    return Err(CompileError::new(*line, "condition must be scalar"));
                }
                self.block(then_blk)?;
                if let Some(e) = else_blk {
                    self.block(e)?;
                }
            }
            Stmt::While { cond, body, line } => {
                let ct = self.expr(cond)?;
                if !ct.decay().is_scalar() {
                    return Err(CompileError::new(*line, "condition must be scalar"));
                }
                self.loop_depth += 1;
                self.block(body)?;
                self.loop_depth -= 1;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                if let Some(c) = cond {
                    let ct = self.expr(c)?;
                    if !ct.decay().is_scalar() {
                        return Err(CompileError::new(*line, "condition must be scalar"));
                    }
                }
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.loop_depth += 1;
                self.block(body)?;
                self.loop_depth -= 1;
            }
            Stmt::Return { value, line } => match (&self.ret, value) {
                (Type::Void, None) => {}
                (Type::Void, Some(_)) => {
                    return Err(CompileError::new(
                        *line,
                        "void function cannot return a value",
                    ));
                }
                (_, None) => {
                    return Err(CompileError::new(
                        *line,
                        "non-void function must return a value",
                    ));
                }
                (ret, Some(v)) => {
                    let ret = ret.clone();
                    let vt = self.expr(v)?;
                    self.check_assignable(&ret, &vt, v, *line)?;
                }
            },
            Stmt::Break { line } | Stmt::Continue { line } => {
                if self.loop_depth == 0 {
                    return Err(CompileError::new(*line, "break/continue outside a loop"));
                }
            }
            Stmt::Block(b) => self.block(b)?,
        }
        Ok(())
    }

    fn check_assignable(
        &self,
        dst: &Type,
        src: &Type,
        src_expr: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        let src = src.decay();
        let ok = match (dst, &src) {
            (Type::Int | Type::Char, s) if s.is_arith() => true,
            (Type::Ptr(a), Type::Ptr(b)) => a == b || **a == Type::Void || **b == Type::Void,
            (Type::Ptr(_), Type::Int) => matches!(src_expr.kind, ExprKind::IntLit(0)),
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(CompileError::new(
                line,
                format!("cannot assign `{src:?}` to `{dst:?}`"),
            ))
        }
    }

    /// Type-check an lvalue expression and return its type.
    fn lvalue(&mut self, e: &'a Expr) -> Result<Type, CompileError> {
        match &e.kind {
            ExprKind::Var(_) | ExprKind::Index { .. } | ExprKind::Field { .. } => self.expr(e),
            ExprKind::Unary {
                op: UnOp::Deref, ..
            } => self.expr(e),
            _ => Err(CompileError::new(e.line, "not an lvalue")),
        }
    }

    fn expr(&mut self, e: &'a Expr) -> Result<Type, CompileError> {
        let t = self.expr_inner(e)?;
        self.out.expr_types.insert(e.id, t.clone());
        Ok(t)
    }

    fn expr_inner(&mut self, e: &'a Expr) -> Result<Type, CompileError> {
        match &e.kind {
            ExprKind::IntLit(_) => Ok(Type::Int),
            ExprKind::CharLit(_) => Ok(Type::Char),
            ExprKind::StrLit(_) => Ok(Type::Ptr(Box::new(Type::Char))),
            ExprKind::Var(name) => match self.lookup(name) {
                Some(r) => {
                    let t = match &r {
                        VarRef::Local { ty, .. } => ty.clone(),
                        VarRef::Global(i) => self.out.globals[*i].ty.clone(),
                    };
                    self.out.var_refs.insert(e.id, r);
                    Ok(t)
                }
                None => Err(CompileError::new(
                    e.line,
                    format!("unknown variable `{name}`"),
                )),
            },
            ExprKind::Index { base, index } => {
                let bt = self.expr(base)?;
                let it = self.expr(index)?;
                if !it.is_arith() {
                    return Err(CompileError::new(e.line, "array index must be arithmetic"));
                }
                match bt {
                    Type::Array(t, _) => Ok(*t),
                    Type::Ptr(t) if *t != Type::Void => Ok(*t),
                    other => Err(CompileError::new(
                        e.line,
                        format!("cannot index into `{other:?}`"),
                    )),
                }
            }
            ExprKind::Field { base, field, arrow } => {
                let bt = self.expr(base)?;
                let sidx = match (&bt, arrow) {
                    (Type::Struct(i), false) => *i,
                    (Type::Ptr(p), true) => match **p {
                        Type::Struct(i) => i,
                        _ => {
                            return Err(CompileError::new(e.line, "`->` needs a struct pointer"));
                        }
                    },
                    _ => {
                        return Err(CompileError::new(
                            e.line,
                            format!("bad member access on `{bt:?}`"),
                        ));
                    }
                };
                match self.out.structs[sidx]
                    .fields
                    .iter()
                    .find(|f| &f.name == field)
                {
                    Some(f) => Ok(f.ty.clone()),
                    None => Err(CompileError::new(
                        e.line,
                        format!(
                            "struct `{}` has no field `{field}`",
                            self.out.structs[sidx].name
                        ),
                    )),
                }
            }
            ExprKind::Unary { op, operand } => {
                let ot = self.expr(operand)?;
                match op {
                    UnOp::Neg => {
                        if ot.is_arith() {
                            Ok(Type::Int)
                        } else {
                            Err(CompileError::new(
                                e.line,
                                "cannot negate a non-arithmetic value",
                            ))
                        }
                    }
                    UnOp::Not => {
                        if ot.decay().is_scalar() {
                            Ok(Type::Int)
                        } else {
                            Err(CompileError::new(e.line, "`!` needs a scalar"))
                        }
                    }
                    UnOp::Deref => match ot.decay() {
                        Type::Ptr(t) if *t != Type::Void => Ok(*t),
                        other => Err(CompileError::new(
                            e.line,
                            format!("cannot dereference `{other:?}`"),
                        )),
                    },
                    UnOp::Addr => {
                        match operand.kind {
                            ExprKind::Var(_)
                            | ExprKind::Index { .. }
                            | ExprKind::Field { .. }
                            | ExprKind::Unary {
                                op: UnOp::Deref, ..
                            } => {}
                            _ => {
                                return Err(CompileError::new(e.line, "`&` needs an lvalue"));
                            }
                        }
                        Ok(Type::Ptr(Box::new(ot)))
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.expr(lhs)?.decay();
                let rt = self.expr(rhs)?.decay();
                if op.is_comparison() {
                    let compatible = (lt.is_arith() && rt.is_arith())
                        || (matches!(lt, Type::Ptr(_))
                            && (rt == lt
                                || matches!(rhs.kind, ExprKind::IntLit(0))
                                || matches!(rt, Type::Ptr(ref p) if **p == Type::Void)))
                        || (matches!(rt, Type::Ptr(_)) && matches!(lhs.kind, ExprKind::IntLit(0)));
                    if compatible {
                        Ok(Type::Int)
                    } else {
                        Err(CompileError::new(
                            e.line,
                            format!("cannot compare `{lt:?}` and `{rt:?}`"),
                        ))
                    }
                } else if op.is_logical() {
                    if lt.is_scalar() && rt.is_scalar() {
                        Ok(Type::Int)
                    } else {
                        Err(CompileError::new(e.line, "logical operands must be scalar"))
                    }
                } else {
                    // Arithmetic / bitwise, plus ptr ± int.
                    match (op, &lt, &rt) {
                        (BinOp::Add | BinOp::Sub, Type::Ptr(p), r)
                            if r.is_arith() && **p != Type::Void =>
                        {
                            Ok(lt.clone())
                        }
                        (BinOp::Add, l, Type::Ptr(p)) if l.is_arith() && **p != Type::Void => {
                            Ok(rt.clone())
                        }
                        _ if lt.is_arith() && rt.is_arith() => Ok(Type::Int),
                        _ => Err(CompileError::new(
                            e.line,
                            format!("bad operands `{lt:?}` {op:?} `{rt:?}`"),
                        )),
                    }
                }
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                let ct = self.expr(cond)?;
                if !ct.decay().is_scalar() {
                    return Err(CompileError::new(
                        e.line,
                        "ternary condition must be scalar",
                    ));
                }
                let tt = self.expr(then_e)?.decay();
                let et = self.expr(else_e)?.decay();
                if tt.is_arith() && et.is_arith() {
                    Ok(Type::Int)
                } else if tt == et {
                    Ok(tt)
                } else {
                    Err(CompileError::new(
                        e.line,
                        "ternary branches have different types",
                    ))
                }
            }
            ExprKind::Call { name, args } => {
                let (params, ret) = match self.fn_sigs.get(name) {
                    Some(sig) => sig.clone(),
                    None => {
                        return Err(CompileError::new(
                            e.line,
                            format!("unknown function `{name}`"),
                        ));
                    }
                };
                if args.len() != params.len() {
                    return Err(CompileError::new(
                        e.line,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            params.len(),
                            args.len()
                        ),
                    ));
                }
                for (a, p) in args.iter().zip(&params) {
                    let at = self.expr(a)?;
                    self.check_assignable(p, &at, a, e.line)?;
                }
                Ok(ret)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ok(src: &str) -> SemaOutput {
        analyze(&parse(src).unwrap()).unwrap()
    }

    fn fails(src: &str) -> CompileError {
        analyze(&parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn basic_program_checks() {
        let out = ok("int g; void main() { int x; x = 1; g = x + 2; }");
        assert_eq!(out.globals.len(), 1);
        assert_eq!(out.functions[0].name, "main");
    }

    #[test]
    fn unknown_variable_rejected() {
        let e = fails("void main() { x = 1; }");
        assert!(e.msg.contains("unknown variable"));
    }

    #[test]
    fn unknown_function_rejected() {
        let e = fails("void main() { foo(); }");
        assert!(e.msg.contains("unknown function"));
    }

    #[test]
    fn arity_checked() {
        let e = fails("int f(int a) { return a; } void main() { int x; x = f(1, 2); }");
        assert!(e.msg.contains("expects 1 arguments"));
    }

    #[test]
    fn type_mismatch_rejected() {
        let e = fails("void main() { int *p; p = 5; }");
        assert!(e.msg.contains("cannot assign"));
    }

    #[test]
    fn null_pointer_literal_allowed() {
        ok("void main() { int *p; p = 0; if (p == 0) { } }");
    }

    #[test]
    fn malloc_assignable_to_any_pointer() {
        ok("struct n { int v; }; void main() { struct n *p; p = malloc(8); free(p); }");
    }

    #[test]
    fn struct_field_types_and_offsets() {
        let out = ok("struct n { char c; int v; struct n *next; }; void main() {}");
        let s = &out.structs[0];
        assert_eq!(s.fields[0].offset, 0);
        assert_eq!(s.fields[1].offset, 4, "int aligned past the char");
        assert_eq!(s.fields[2].offset, 8);
        assert_eq!(s.size, 12);
    }

    #[test]
    fn struct_by_value_recursion_rejected() {
        let e = fails("struct n { struct n inner; }; void main() {}");
        assert!(e.msg.contains("pointer"));
    }

    #[test]
    fn frame_offsets_shift_with_array_size() {
        // The JB.team6 fidelity property: growing the first buffer moves
        // the second one.
        let a = ok("void main() { char p[80]; char q[80]; p[0] = 'a'; q[0] = 'b'; }");
        let b = ok("void main() { char p[81]; char q[80]; p[0] = 'a'; q[0] = 'b'; }");
        let off = |o: &SemaOutput, name: &str| {
            o.functions[0]
                .slots
                .iter()
                .find(|(n, _, _)| n == name)
                .unwrap()
                .2
        };
        assert_eq!(off(&a, "q"), 80);
        assert_eq!(off(&b, "q"), 81);
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = fails("void main() { break; }");
        assert!(e.msg.contains("outside"));
    }

    #[test]
    fn return_type_checked() {
        let e = fails("int f() { return; } void main() {}");
        assert!(e.msg.contains("must return"));
        let e = fails("void main() { return 1; }");
        assert!(e.msg.contains("cannot return"));
    }

    #[test]
    fn array_decays_in_comparison_and_index() {
        ok("int a[10]; void main() { int i; i = 0; if (a[i] < a[i + 1]) { i = 1; } }");
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let out = ok("void main() { int *p; p = malloc(40); p = p + 2; free(p); }");
        assert!(!out.expr_types.is_empty());
    }

    #[test]
    fn void_variable_rejected() {
        let e = fails("void main() { void x; }");
        assert!(e.msg.contains("void"));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(fails("int g; int g; void main() {}")
            .msg
            .contains("duplicate"));
        assert!(fails("void main() { int x; int x; }")
            .msg
            .contains("duplicate"));
        assert!(fails("void f() {} void f() {} void main() {}")
            .msg
            .contains("duplicate"));
    }

    #[test]
    fn builtin_clash_rejected() {
        let e = fails("int malloc(int n) { return n; } void main() {}");
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn shadowing_in_nested_block_allowed() {
        let out = ok("void main() { int x; x = 1; { int x; x = 2; } }");
        // Two distinct slots.
        assert_eq!(out.functions[0].slots.len(), 2);
    }

    #[test]
    fn assign_to_array_rejected() {
        let e = fails("int a[4]; int b[4]; void main() { a = b; }");
        assert!(e.msg.contains("array"));
    }

    #[test]
    fn ternary_types_unify() {
        ok("void main() { int d; d = 3; d = (d > 0) ? d : -d; }");
        let e = fails("void main() { int d; int *p; p = 0; d = (d > 0) ? d : p; }");
        assert!(e.msg.contains("different types") || e.msg.contains("cannot assign"));
    }

    #[test]
    fn expr_statement_must_be_call() {
        let e = fails("void main() { int x; x + 1; }");
        assert!(e.msg.contains("function calls"));
    }
}
