//! # swifi-lang — the MiniC compiler
//!
//! A small C compiler targeting the P601-lite virtual machine
//! ([`swifi_vm`]), built as a substrate for reproducing *Madeira, Costa,
//! Vieira — "On the Emulation of Software Faults by Software Fault
//! Injection" (DSN 2000)*.
//!
//! The paper harvested real software faults from C programs and located
//! fault-injection targets "at the assembly level … using the compiler
//! facilities in terms of symbol tables and labels". This compiler makes
//! that workflow first-class: [`compile`] returns both the executable
//! [`Image`](swifi_vm::Image) and a [`DebugInfo`](debug::DebugInfo)
//! catalogue of every source-level *assignment* and *checking* statement
//! with its machine realisation — including pre-computed corrupted
//! instruction words for every checking error type of the paper's Table 3.
//!
//! MiniC supports: `int`/`char`/`void`, structs (with pointers and
//! `->`/`.`), fixed-size multi-dimensional arrays, pointers with scaled
//! arithmetic, all C comparison/logical/bitwise operators, short-circuit
//! `&&`/`||`, ternary `?:`, `if`/`while`/`for`/`break`/`continue`, and the
//! VM's runtime builtins (`print_*`, `read_*`, `malloc`/`free`,
//! `core_id`/`num_cores`/`barrier`).
//!
//! # Examples
//!
//! ```
//! use swifi_lang::compile;
//! use swifi_vm::{Machine, MachineConfig, Noop};
//!
//! let program = compile(
//!     "void main() {
//!        int i;
//!        int sum;
//!        sum = 0;
//!        for (i = 1; i <= 10; i = i + 1) { sum = sum + i; }
//!        print_int(sum);
//!      }",
//! )?;
//! let mut m = Machine::new(MachineConfig::default());
//! m.load(&program.image);
//! assert_eq!(m.run(&mut Noop).output(), b"55");
//! // Fault-location catalogue: one checking site (the for condition) and
//! // four assignment sites (sum=0, the for init, the body, the for step).
//! assert_eq!(program.debug.checks.len(), 1);
//! assert_eq!(program.debug.assigns.len(), 4);
//! # Ok::<(), swifi_lang::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod debug;
pub mod lexer;
pub mod mutate;
pub mod parser;
pub mod pretty;
pub mod sema;

pub use codegen::Compiled;
pub use lexer::CompileError;

/// A fully compiled MiniC program: machine image, debug info, and the
/// analysed AST (used by the software-metrics crate).
#[derive(Debug, Clone)]
pub struct Program {
    /// The linked executable.
    pub image: swifi_vm::Image,
    /// Fault-location debug information.
    pub debug: debug::DebugInfo,
    /// The parsed AST.
    pub ast: ast::Program,
    /// Semantic tables (types, layouts).
    pub sema: sema::SemaOutput,
}

/// Compile MiniC source to a P601-lite executable with debug info.
///
/// # Errors
///
/// Returns [`CompileError`] with a 1-based source line for lexical,
/// syntactic, semantic, and resource-limit errors.
pub fn compile(src: &str) -> Result<Program, CompileError> {
    let ast = parser::parse(src)?;
    let sema = sema::analyze(&ast)?;
    let out = codegen::generate(&ast, &sema)?;
    Ok(Program {
        image: out.image,
        debug: out.debug,
        ast,
        sema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_vm::machine::{InputTape, Machine, MachineConfig, RunOutcome};
    use swifi_vm::Noop;

    /// Compile and run, returning the output as a string.
    fn run(src: &str) -> String {
        run_with(src, InputTape::new())
    }

    fn run_with(src: &str, input: InputTape) -> String {
        let p = compile(src).expect("compiles");
        let mut m = Machine::new(MachineConfig::default());
        m.load(&p.image);
        m.set_input(input);
        match m.run(&mut Noop) {
            RunOutcome::Completed {
                exit_code: 0,
                output,
            } => String::from_utf8(output).unwrap(),
            other => panic!("abnormal outcome: {other:?}"),
        }
    }

    #[test]
    fn hello_print() {
        assert_eq!(run("void main() { print_str(\"hi\"); }"), "hi");
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(run("void main() { print_int(2 + 3 * 4); }"), "14");
        assert_eq!(run("void main() { print_int((2 + 3) * 4); }"), "20");
        assert_eq!(run("void main() { print_int(7 / 2); }"), "3");
        assert_eq!(run("void main() { print_int(7 % 3); }"), "1");
        assert_eq!(run("void main() { print_int(-7 / 2); }"), "-3");
    }

    #[test]
    fn bitwise_and_shifts() {
        assert_eq!(run("void main() { print_int(12 & 10); }"), "8");
        assert_eq!(run("void main() { print_int(12 | 3); }"), "15");
        assert_eq!(run("void main() { print_int(12 ^ 10); }"), "6");
        assert_eq!(run("void main() { print_int(3 << 4); }"), "48");
        assert_eq!(run("void main() { print_int(-16 >> 2); }"), "-4");
    }

    #[test]
    fn comparisons_as_values() {
        assert_eq!(
            run("void main() { print_int(3 < 4); print_int(4 < 3); }"),
            "10"
        );
        assert_eq!(
            run("void main() { print_int(1 && 0); print_int(1 || 0); }"),
            "01"
        );
        assert_eq!(run("void main() { print_int(!5); print_int(!0); }"), "01");
    }

    #[test]
    fn while_loop_sums() {
        assert_eq!(
            run("void main() {
                   int i; int s;
                   i = 0; s = 0;
                   while (i < 5) { s = s + i; i = i + 1; }
                   print_int(s);
                 }"),
            "10"
        );
    }

    #[test]
    fn for_loop_with_break_continue() {
        assert_eq!(
            run("void main() {
                   int i; int s;
                   s = 0;
                   for (i = 0; i < 100; i = i + 1) {
                     if (i == 7) { break; }
                     if (i % 2 == 0) { continue; }
                     s = s + i;
                   }
                   print_int(s);
                 }"),
            "9" // 1 + 3 + 5
        );
    }

    #[test]
    fn nested_loops() {
        assert_eq!(
            run("void main() {
                   int i; int j; int c;
                   c = 0;
                   for (i = 0; i < 3; i = i + 1)
                     for (j = 0; j < 4; j = j + 1)
                       c = c + 1;
                   print_int(c);
                 }"),
            "12"
        );
    }

    #[test]
    fn function_calls_and_recursion() {
        assert_eq!(
            run("int fib(int n) {
                   if (n < 2) { return n; }
                   return fib(n - 1) + fib(n - 2);
                 }
                 void main() { print_int(fib(12)); }"),
            "144"
        );
    }

    #[test]
    fn eight_parameters() {
        assert_eq!(
            run(
                "int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
                   return a + b + c + d + e + f + g + h;
                 }
                 void main() { print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8)); }"
            ),
            "36"
        );
    }

    #[test]
    fn globals_and_arrays() {
        assert_eq!(
            run("int grid[3][4];
                 int n = 7;
                 void main() {
                   int i; int j;
                   for (i = 0; i < 3; i = i + 1)
                     for (j = 0; j < 4; j = j + 1)
                       grid[i][j] = i * 10 + j;
                   print_int(grid[2][3]);
                   print_int(n);
                 }"),
            "237"
        );
    }

    #[test]
    fn local_arrays_and_chars() {
        assert_eq!(
            run("void main() {
                   char buf[8];
                   int i;
                   for (i = 0; i < 5; i = i + 1) { buf[i] = 'a' + i; }
                   buf[5] = 0;
                   print_str(buf);
                 }"),
            "abcde"
        );
    }

    #[test]
    fn pointers_and_address_of() {
        assert_eq!(
            run(
                "void swap(int *a, int *b) { int t; t = *a; *a = *b; *b = t; }
                 void main() {
                   int x; int y;
                   x = 1; y = 2;
                   swap(&x, &y);
                   print_int(x); print_int(y);
                 }"
            ),
            "21"
        );
    }

    #[test]
    fn pointer_arithmetic_scales() {
        assert_eq!(
            run("void main() {
                   int *p; int *q;
                   p = malloc(16);
                   *p = 5;
                   q = p + 3;
                   *q = 9;
                   print_int(p[0]); print_int(p[3]);
                   free(p);
                 }"),
            "59"
        );
    }

    #[test]
    fn structs_and_linked_list() {
        assert_eq!(
            run("struct node { int val; struct node *next; };
                 void main() {
                   struct node *head; struct node *n; int i; int s;
                   head = 0;
                   for (i = 1; i <= 4; i = i + 1) {
                     n = malloc(8);
                     n->val = i;
                     n->next = head;
                     head = n;
                   }
                   s = 0;
                   while (head != 0) {
                     s = s + head->val;
                     n = head;
                     head = head->next;
                     free(n);
                   }
                   print_int(s);
                 }"),
            "10"
        );
    }

    #[test]
    fn struct_by_value_fields() {
        assert_eq!(
            run("struct pt { int x; int y; };
                 struct pt p;
                 void main() {
                   p.x = 3; p.y = 4;
                   print_int(p.x * p.x + p.y * p.y);
                 }"),
            "25"
        );
    }

    #[test]
    fn ternary_expression() {
        assert_eq!(
            run("int myabs(int d) { return (d > 0) ? d : -d; }
                 void main() { print_int(myabs(-5)); print_int(myabs(3)); }"),
            "53"
        );
    }

    #[test]
    fn short_circuit_evaluation() {
        // The second operand must not run when the first decides.
        assert_eq!(
            run("int called = 0;
                 int probe() { called = called + 1; return 1; }
                 void main() {
                   int r;
                   r = 0;
                   if (0 && probe()) { r = 1; }
                   if (1 || probe()) { r = r + 2; }
                   print_int(r); print_int(called);
                 }"),
            "20"
        );
    }

    #[test]
    fn logical_operators_in_conditions() {
        assert_eq!(
            run("void main() {
                   int a; int b;
                   a = 3; b = 7;
                   if (a < 5 && b > 5) { print_int(1); }
                   if (a > 5 || b > 5) { print_int(2); }
                   if (a > 5 && b > 5) { print_int(3); }
                   if (a > 5 || b < 5) { print_int(4); }
                 }"),
            "12"
        );
    }

    #[test]
    fn read_int_input() {
        let mut input = InputTape::new();
        input.push_ints([3, 10, 20, 30]);
        assert_eq!(
            run_with(
                "void main() {
                   int n; int i; int s;
                   n = read_int();
                   s = 0;
                   for (i = 0; i < n; i = i + 1) { s = s + read_int(); }
                   print_int(s);
                 }",
                input
            ),
            "60"
        );
    }

    #[test]
    fn read_bytes_until_newline() {
        let mut input = InputTape::new();
        input.push_line("xyz");
        assert_eq!(
            run_with(
                "void main() {
                   int c;
                   c = read_byte();
                   while (c != '\\n' && c != -1) {
                     print_char(c + 1);
                     c = read_byte();
                   }
                 }",
                input
            ),
            "yz{"
        );
    }

    #[test]
    fn else_if_chains() {
        let src = "void classify(int x) {
                     if (x < 0) { print_str(\"neg\"); }
                     else if (x == 0) { print_str(\"zero\"); }
                     else { print_str(\"pos\"); }
                   }
                   void main() { classify(-1); classify(0); classify(5); }";
        assert_eq!(run(src), "negzeropos");
    }

    #[test]
    fn shadowing_uses_inner_slot() {
        assert_eq!(
            run("void main() {
                   int x;
                   x = 1;
                   { int x; x = 9; print_int(x); }
                   print_int(x);
                 }"),
            "91"
        );
    }

    #[test]
    fn decl_initializers() {
        assert_eq!(
            run("void main() {
                   int x = 4;
                   int y = x * 2;
                   print_int(x + y);
                 }"),
            "12"
        );
    }

    #[test]
    fn char_param_and_return() {
        assert_eq!(
            run("char rot(char c) { return c + 1; }
                 void main() { print_char(rot('a')); }"),
            "b"
        );
    }

    #[test]
    fn deep_recursion_overflows_stack() {
        let p = compile(
            "int down(int n) { return down(n + 1); }
             void main() { print_int(down(0)); }",
        )
        .unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&p.image);
        match m.run(&mut Noop) {
            RunOutcome::Trapped {
                trap: swifi_vm::Trap::StackOverflow,
                ..
            } => {}
            other => panic!("expected stack overflow, got {other:?}"),
        }
    }

    #[test]
    fn null_deref_crashes() {
        let p = compile("void main() { int *p; p = 0; print_int(*p); }").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&p.image);
        assert!(matches!(
            m.run(&mut Noop),
            RunOutcome::Trapped {
                trap: swifi_vm::Trap::Unmapped { addr: 0 },
                ..
            }
        ));
    }

    // ---- debug info ----------------------------------------------------

    #[test]
    fn assign_sites_are_stores() {
        let p = compile("void main() { int x; int *q; x = 1; q = 0; }").unwrap();
        assert_eq!(p.debug.assigns.len(), 2);
        assert!(!p.debug.assigns[0].is_pointer);
        assert!(p.debug.assigns[1].is_pointer);
        for a in &p.debug.assigns {
            let w = p.image.code[((a.store_addr - 0x100) / 4) as usize];
            let i = swifi_vm::decode(w).unwrap();
            assert!(
                matches!(i, swifi_vm::Instr::Stw { .. } | swifi_vm::Instr::Stb { .. }),
                "assign site should be a store, got {i}"
            );
        }
    }

    #[test]
    fn check_sites_have_table3_mutations() {
        let p = compile(
            "void main() {
               int i;
               for (i = 0; i < 10; i = i + 1) {
                 if (i == 5) { print_int(i); }
               }
             }",
        )
        .unwrap();
        assert_eq!(p.debug.checks.len(), 2);
        let for_site = &p.debug.checks[0];
        assert_eq!(for_site.op, debug::CheckOp::Lt);
        assert!(for_site
            .mutations
            .iter()
            .any(|(e, _)| *e == debug::CheckErrorType::LtToLe));
        let if_site = &p.debug.checks[1];
        assert_eq!(if_site.op, debug::CheckOp::Eq);
        let kinds: Vec<_> = if_site.mutations.iter().map(|(e, _)| *e).collect();
        assert!(kinds.contains(&debug::CheckErrorType::EqToNe));
        assert!(kinds.contains(&debug::CheckErrorType::EqToGe));
        assert!(kinds.contains(&debug::CheckErrorType::EqToLe));
    }

    #[test]
    fn logical_sites_record_swaps() {
        let p = compile(
            "void main() {
               int a; int b;
               a = 1; b = 2;
               if (a < 2 && b < 3) { print_int(1); }
               while (a > 5 || b > 1) { b = b - 1; }
             }",
        )
        .unwrap();
        let and_site = p
            .debug
            .checks
            .iter()
            .find(|c| c.op == debug::CheckOp::And)
            .unwrap();
        assert!(and_site
            .mutations
            .iter()
            .any(|(e, _)| *e == debug::CheckErrorType::AndToOr));
        let or_site = p
            .debug
            .checks
            .iter()
            .find(|c| c.op == debug::CheckOp::Or)
            .unwrap();
        assert!(or_site
            .mutations
            .iter()
            .any(|(e, _)| *e == debug::CheckErrorType::OrToAnd));
    }

    #[test]
    fn bool_test_records_stuck_ats() {
        let p = compile(
            "int flag;
             void main() { if (flag) { print_int(1); } }",
        )
        .unwrap();
        let site = &p.debug.checks[0];
        assert_eq!(site.op, debug::CheckOp::BoolTest);
        let kinds: Vec<_> = site.mutations.iter().map(|(e, _)| *e).collect();
        assert!(kinds.contains(&debug::CheckErrorType::TrueToFalse));
        assert!(kinds.contains(&debug::CheckErrorType::FalseToTrue));
    }

    #[test]
    fn array_checks_record_index_mutations() {
        let p = compile(
            "int seen[10];
             void main() {
               int i;
               i = 3;
               if (seen[i] == 0) { seen[i] = 1; }
             }",
        )
        .unwrap();
        let site = &p.debug.checks[0];
        let kinds: Vec<_> = site.mutations.iter().map(|(e, _)| *e).collect();
        assert!(kinds.contains(&debug::CheckErrorType::IndexPlus));
        assert!(kinds.contains(&debug::CheckErrorType::IndexMinus));
        // Index mutations carry the ±element-size byte delta.
        let (_, m) = site
            .mutations
            .iter()
            .find(|(e, _)| *e == debug::CheckErrorType::IndexPlus)
            .unwrap();
        match m {
            debug::CheckMutation::AdjustLoadAddr { delta, .. } => assert_eq!(*delta, 4),
            other => panic!("expected AdjustLoadAddr, got {other:?}"),
        }
    }

    #[test]
    fn functions_cover_all_code() {
        let p = compile(
            "int f(int x) { return x + 1; }
             void main() { print_int(f(1)); }",
        )
        .unwrap();
        assert_eq!(p.debug.functions.len(), 2);
        let f = p
            .debug
            .function_at(p.debug.functions[0].start_addr)
            .unwrap();
        assert_eq!(f.name, "f");
    }

    #[test]
    fn line_map_is_monotonic() {
        let p = compile(
            "void main() {
               int a;
               a = 1;
               a = 2;
               print_int(a);
             }",
        )
        .unwrap();
        let addrs: Vec<u32> = p.debug.line_map.iter().map(|&(a, _)| a).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted);
        assert!(p.debug.line_at(p.debug.assigns[0].store_addr).is_some());
    }

    #[test]
    fn mutated_word_differs_only_semantically() {
        // Applying a recorded mutation word changes program behaviour the
        // way the source-level operator change would.
        let src = "void main() {
                     int i;
                     for (i = 0; i < 3; i = i + 1) { print_int(i); }
                   }";
        let p = compile(src).unwrap();
        let site = &p.debug.checks[0];
        let (_, m) = site
            .mutations
            .iter()
            .find(|(e, _)| *e == debug::CheckErrorType::LtToLe)
            .unwrap();
        let (addr, word) = match m {
            debug::CheckMutation::ReplaceWord { addr, word } => (*addr, *word),
            other => panic!("unexpected mutation {other:?}"),
        };
        let mut m2 = Machine::new(MachineConfig::default());
        m2.load(&p.image);
        m2.poke_u32(addr, word).unwrap();
        // `i < 3` became `i <= 3`: one extra iteration.
        assert_eq!(m2.run(&mut Noop).output(), b"0123");
    }

    #[test]
    fn error_reporting_includes_lines() {
        let e = compile("void main() {\n  x = 1;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn missing_main_rejected() {
        let e = compile("int f() { return 1; }").unwrap_err();
        assert!(e.msg.contains("main"));
    }

    #[test]
    fn main_signature_enforced() {
        let e = compile("int main() { return 1; }").unwrap_err();
        assert!(e.msg.contains("void main"));
    }

    #[test]
    fn multicore_program_compiles_and_barriers() {
        let src = "int partial[4];
                   void main() {
                     int id; int i; int total;
                     id = core_id();
                     partial[id] = (id + 1) * 10;
                     barrier();
                     if (id == 0) {
                       total = 0;
                       for (i = 0; i < num_cores(); i = i + 1) { total = total + partial[i]; }
                       print_int(total);
                     }
                   }";
        let p = compile(src).unwrap();
        let mut m = Machine::new(MachineConfig {
            num_cores: 4,
            ..MachineConfig::default()
        });
        m.load(&p.image);
        assert_eq!(m.run(&mut Noop).output(), b"100");
    }
}
