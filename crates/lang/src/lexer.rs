//! Lexer for MiniC.
//!
//! MiniC is the C subset the reproduced paper's target programs are written
//! in: `int`/`char`/`void`, structs, pointers, fixed-size arrays, the usual
//! operators, and C89-style block-leading declarations.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal (decimal or `0x` hex).
    Int(i64),
    /// Character literal, e.g. `'a'`, `'\n'`.
    Char(u8),
    /// String literal with escapes resolved.
    Str(Vec<u8>),
    /// Identifier or keyword candidate.
    Ident(String),
    /// A keyword (subset of C keywords).
    Kw(Kw),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// MiniC keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Int,
    Char,
    Void,
    Struct,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Dot,
    Arrow,
    Question,
    Colon,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Char(c) => write!(f, "{:?}", *c as char),
            Tok::Str(_) => f.write_str("string literal"),
            Tok::Ident(s) => f.write_str(s),
            Tok::Kw(k) => write!(f, "{k:?}").map(|()| ()),
            Tok::Punct(p) => write!(f, "{p:?}"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexing/parsing/type error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line (0 when unknown).
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl CompileError {
    /// Construct an error at `line`.
    pub fn new(line: u32, msg: impl Into<String>) -> CompileError {
        CompileError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

fn kw_of(s: &str) -> Option<Kw> {
    Some(match s {
        "int" => Kw::Int,
        "char" => Kw::Char,
        "void" => Kw::Void,
        "struct" => Kw::Struct,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "for" => Kw::For,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        _ => return None,
    })
}

/// Tokenize MiniC source.
///
/// # Errors
///
/// Returns [`CompileError`] for unterminated literals/comments and unknown
/// characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = i64::from_str_radix(&src[start + 2..i], 16)
                        .map_err(|_| CompileError::new(line, "bad hex literal"))?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        line,
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v = src[start..i]
                        .parse::<i64>()
                        .map_err(|_| CompileError::new(line, "bad integer literal"))?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        line,
                    });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match kw_of(word) {
                    Some(k) => Tok::Kw(k),
                    None => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, line });
            }
            b'\'' => {
                i += 1;
                let (b, used) = read_char(bytes, i, line)?;
                i += used;
                if bytes.get(i) != Some(&b'\'') {
                    return Err(CompileError::new(line, "unterminated char literal"));
                }
                i += 1;
                out.push(Spanned {
                    tok: Tok::Char(b),
                    line,
                });
            }
            b'"' => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    match bytes.get(i) {
                        None | Some(&b'\n') => {
                            return Err(CompileError::new(line, "unterminated string literal"));
                        }
                        Some(&b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let (b, used) = read_char(bytes, i, line)?;
                            s.push(b);
                            i += used;
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (p, used) = match two {
                    "<=" => (Punct::Le, 2),
                    ">=" => (Punct::Ge, 2),
                    "==" => (Punct::EqEq, 2),
                    "!=" => (Punct::Ne, 2),
                    "&&" => (Punct::AndAnd, 2),
                    "||" => (Punct::OrOr, 2),
                    "<<" => (Punct::Shl, 2),
                    ">>" => (Punct::Shr, 2),
                    "->" => (Punct::Arrow, 2),
                    _ => {
                        let p = match c {
                            b'(' => Punct::LParen,
                            b')' => Punct::RParen,
                            b'{' => Punct::LBrace,
                            b'}' => Punct::RBrace,
                            b'[' => Punct::LBracket,
                            b']' => Punct::RBracket,
                            b';' => Punct::Semi,
                            b',' => Punct::Comma,
                            b'=' => Punct::Assign,
                            b'+' => Punct::Plus,
                            b'-' => Punct::Minus,
                            b'*' => Punct::Star,
                            b'/' => Punct::Slash,
                            b'%' => Punct::Percent,
                            b'<' => Punct::Lt,
                            b'>' => Punct::Gt,
                            b'!' => Punct::Bang,
                            b'&' => Punct::Amp,
                            b'|' => Punct::Pipe,
                            b'^' => Punct::Caret,
                            b'.' => Punct::Dot,
                            b'?' => Punct::Question,
                            b':' => Punct::Colon,
                            other => {
                                return Err(CompileError::new(
                                    line,
                                    format!("unexpected character `{}`", other as char),
                                ));
                            }
                        };
                        (p, 1)
                    }
                };
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    line,
                });
                i += used;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

/// Read one (possibly escaped) character; returns (byte, bytes consumed).
fn read_char(bytes: &[u8], i: usize, line: u32) -> Result<(u8, usize), CompileError> {
    match bytes.get(i) {
        None => Err(CompileError::new(
            line,
            "unexpected end of input in literal",
        )),
        Some(&b'\\') => {
            let b = match bytes.get(i + 1) {
                Some(&b'n') => b'\n',
                Some(&b't') => b'\t',
                Some(&b'r') => b'\r',
                Some(&b'0') => 0,
                Some(&b'\\') => b'\\',
                Some(&b'\'') => b'\'',
                Some(&b'"') => b'"',
                other => {
                    return Err(CompileError::new(
                        line,
                        format!("unknown escape `\\{:?}`", other.copied().map(|b| b as char)),
                    ));
                }
            };
            Ok((b, 2))
        }
        Some(&b) => Ok((b, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int foo"),
            vec![Tok::Kw(Kw::Int), Tok::Ident("foo".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0x1F"),
            vec![Tok::Int(42), Tok::Int(0x1F), Tok::Eof]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(
            toks(r#"'a' '\n' "hi\n""#),
            vec![
                Tok::Char(b'a'),
                Tok::Char(b'\n'),
                Tok::Str(b"hi\n".to_vec()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("<= >= == != && || << >> ->"),
            vec![
                Tok::Punct(Punct::Le),
                Tok::Punct(Punct::Ge),
                Tok::Punct(Punct::EqEq),
                Tok::Punct(Punct::Ne),
                Tok::Punct(Punct::AndAnd),
                Tok::Punct(Punct::OrOr),
                Tok::Punct(Punct::Shl),
                Tok::Punct(Punct::Shr),
                Tok::Punct(Punct::Arrow),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // c\nb /* x\ny */ c").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("'a").is_err());
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn unknown_char_errors() {
        let e = lex("int $x;").unwrap_err();
        assert!(e.msg.contains("unexpected character"));
    }
}
