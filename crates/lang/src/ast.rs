//! Abstract syntax tree for MiniC.
//!
//! Every expression node carries a unique `id` (assigned by the parser)
//! which the semantic pass uses to attach types, and a source `line` used
//! for debug info — the line↔instruction mapping is what lets the fault
//! injector tie machine-level fault locations back to source statements,
//! mirroring how the paper used compiler symbol tables.

/// Syntactic type: a base type, a pointer depth, and optional array
/// dimensions (outermost first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeExpr {
    /// The base type name.
    pub base: BaseType,
    /// Number of `*`s.
    pub ptr_depth: u32,
    /// Array dimensions, outermost first; empty for scalars.
    pub dims: Vec<usize>,
}

/// Base type of a [`TypeExpr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseType {
    /// 32-bit signed integer.
    Int,
    /// 8-bit unsigned character.
    Char,
    /// No value (function returns only).
    Void,
    /// A named struct.
    Struct(String),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<(String, TypeExpr)>,
    /// Definition line.
    pub line: u32,
}

/// A variable declaration (global or block-local).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Optional initializer (treated as an assignment statement).
    pub init: Option<Expr>,
    /// Declaration line.
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeExpr,
    /// Parameters.
    pub params: Vec<(String, TypeExpr)>,
    /// Body.
    pub body: Block,
    /// Definition line.
    pub line: u32,
}

/// A `{}` block: C89-style leading declarations, then statements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Leading declarations.
    pub decls: Vec<VarDecl>,
    /// Statements.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `target = value;` — an ODC *assignment* location.
    Assign {
        /// Assignment target (lvalue).
        target: Expr,
        /// Assigned value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// Expression statement (function call).
    Expr {
        /// The evaluated expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) … else …` — the condition is an ODC *checking* location.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
        /// Source line.
        line: u32,
    },
    /// `while (cond) …` — the condition is a *checking* location.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `for (init; cond; step) …` — cond is a *checking* location; init and
    /// step are *assignment* locations.
    For {
        /// Optional init assignment.
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step assignment.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `return e;`.
    Return {
        /// Optional return value.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `break;`.
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue;`.
    Continue {
        /// Source line.
        line: u32,
    },
    /// A nested block.
    Block(Block),
}

impl Stmt {
    /// Source line of the statement.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Assign { line, .. }
            | Stmt::Expr { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line } => *line,
            Stmt::Block(b) => b.stmts.first().map_or(0, Stmt::line),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e`.
    Not,
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&e`.
    Addr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// Whether this is one of the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether this is `&&` or `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Unique id assigned by the parser; indexes the semantic pass's type
    /// table.
    pub id: usize,
    /// Source line.
    pub line: u32,
    /// Node payload.
    pub kind: ExprKind,
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i32),
    /// Character literal.
    CharLit(u8),
    /// String literal (a `char*` into the data segment).
    StrLit(Vec<u8>),
    /// Variable reference.
    Var(String),
    /// `base[index]`.
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `base.field` (`arrow == false`) or `base->field` (`arrow == true`).
    Field {
        /// Struct (or struct pointer) expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// Whether `->` was used.
        arrow: bool,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? then_e : else_e`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_e: Box<Expr>,
        /// Value when false.
        else_e: Box<Expr>,
    },
    /// Function or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// A complete translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<VarDecl>,
    /// Functions (`main` required for executables).
    pub functions: Vec<Function>,
}

/// Walk every expression in a block, depth-first (used by metrics and by
/// analyses that count operators/operands).
pub fn visit_exprs<'a>(block: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    fn expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
        f(e);
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::StrLit(_) | ExprKind::Var(_) => {
            }
            ExprKind::Index { base, index } => {
                expr(base, f);
                expr(index, f);
            }
            ExprKind::Field { base, .. } => expr(base, f),
            ExprKind::Unary { operand, .. } => expr(operand, f),
            ExprKind::Binary { lhs, rhs, .. } => {
                expr(lhs, f);
                expr(rhs, f);
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                expr(cond, f);
                expr(then_e, f);
                expr(else_e, f);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    expr(a, f);
                }
            }
        }
    }
    fn stmt<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
        match s {
            Stmt::Assign { target, value, .. } => {
                expr(target, f);
                expr(value, f);
            }
            Stmt::Expr { expr: e, .. } => expr(e, f),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                expr(cond, f);
                visit_exprs(then_blk, f);
                if let Some(b) = else_blk {
                    visit_exprs(b, f);
                }
            }
            Stmt::While { cond, body, .. } => {
                expr(cond, f);
                visit_exprs(body, f);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(s) = init {
                    stmt(s, f);
                }
                if let Some(c) = cond {
                    expr(c, f);
                }
                if let Some(s) = step {
                    stmt(s, f);
                }
                visit_exprs(body, f);
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    expr(v, f);
                }
            }
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
            Stmt::Block(b) => visit_exprs(b, f),
        }
    }
    for d in &block.decls {
        if let Some(init) = &d.init {
            expr(init, f);
        }
    }
    for s in &block.stmts {
        stmt(s, f);
    }
}

/// Walk every statement in a block, depth-first, including nested blocks.
pub fn visit_stmts<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &block.stmts {
        f(s);
        match s {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                visit_stmts(then_blk, f);
                if let Some(b) = else_blk {
                    visit_stmts(b, f);
                }
            }
            Stmt::While { body, .. } => visit_stmts(body, f),
            Stmt::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    f(i);
                }
                if let Some(st) = step {
                    f(st);
                }
                visit_stmts(body, f);
            }
            Stmt::Block(b) => visit_stmts(b, f),
            _ => {}
        }
    }
}
