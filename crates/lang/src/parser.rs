//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::lexer::{lex, CompileError, Kw, Punct, Spanned, Tok};

/// Parse MiniC source into a [`Program`].
///
/// # Errors
///
/// Returns [`CompileError`] with the offending source line for lexical and
/// syntactic errors.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        next_id: 0,
    };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    next_id: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::new(self.line(), msg))
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), CompileError> {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{p:?}`, found `{}`", self.peek()))
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn mk(&mut self, line: u32, kind: ExprKind) -> Expr {
        let id = self.next_id;
        self.next_id += 1;
        Expr { id, line, kind }
    }

    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(Kw::Int | Kw::Char | Kw::Void | Kw::Struct)
        )
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        while self.peek() != &Tok::Eof {
            if self.peek() == &Tok::Kw(Kw::Struct) && matches!(self.peek2(), Tok::Ident(_)) {
                // Could be a struct definition or a struct-typed declaration;
                // a definition has `{` after the tag.
                if self.toks.get(self.pos + 2).map(|s| &s.tok) == Some(&Tok::Punct(Punct::LBrace)) {
                    prog.structs.push(self.struct_def()?);
                    continue;
                }
            }
            if !self.at_type() {
                return self.err(format!(
                    "expected declaration or function, found `{}`",
                    self.peek()
                ));
            }
            let line = self.line();
            let base = self.base_type()?;
            let mut ptr_depth = 0;
            while self.eat_punct(Punct::Star) {
                ptr_depth += 1;
            }
            let name = self.expect_ident()?;
            if self.peek() == &Tok::Punct(Punct::LParen) {
                prog.functions
                    .push(self.function(base, ptr_depth, name, line)?);
            } else {
                let dims = self.dims()?;
                let ty = TypeExpr {
                    base,
                    ptr_depth,
                    dims,
                };
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_punct(Punct::Semi)?;
                prog.globals.push(VarDecl {
                    name,
                    ty,
                    init,
                    line,
                });
            }
        }
        Ok(prog)
    }

    fn base_type(&mut self) -> Result<BaseType, CompileError> {
        match self.bump() {
            Tok::Kw(Kw::Int) => Ok(BaseType::Int),
            Tok::Kw(Kw::Char) => Ok(BaseType::Char),
            Tok::Kw(Kw::Void) => Ok(BaseType::Void),
            Tok::Kw(Kw::Struct) => {
                let name = self.expect_ident()?;
                Ok(BaseType::Struct(name))
            }
            other => Err(CompileError::new(
                self.line(),
                format!("expected type, found `{other}`"),
            )),
        }
    }

    fn type_expr(&mut self) -> Result<TypeExpr, CompileError> {
        let base = self.base_type()?;
        let mut ptr_depth = 0;
        while self.eat_punct(Punct::Star) {
            ptr_depth += 1;
        }
        Ok(TypeExpr {
            base,
            ptr_depth,
            dims: Vec::new(),
        })
    }

    fn dims(&mut self) -> Result<Vec<usize>, CompileError> {
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            match self.bump() {
                Tok::Int(v) if v > 0 => dims.push(v as usize),
                other => {
                    return Err(CompileError::new(
                        self.line(),
                        format!("array dimension must be a positive integer, found `{other}`"),
                    ));
                }
            }
            self.expect_punct(Punct::RBracket)?;
        }
        Ok(dims)
    }

    fn struct_def(&mut self) -> Result<StructDef, CompileError> {
        let line = self.line();
        self.bump(); // struct
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Tok::Punct(Punct::RBrace) {
            let mut ty = self.type_expr()?;
            let fname = self.expect_ident()?;
            ty.dims = self.dims()?;
            self.expect_punct(Punct::Semi)?;
            fields.push((fname, ty));
        }
        self.expect_punct(Punct::RBrace)?;
        self.expect_punct(Punct::Semi)?;
        Ok(StructDef { name, fields, line })
    }

    fn function(
        &mut self,
        base: BaseType,
        ptr_depth: u32,
        name: String,
        line: u32,
    ) -> Result<Function, CompileError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                if self.peek() == &Tok::Kw(Kw::Void) && self.peek2() == &Tok::Punct(Punct::RParen) {
                    self.bump();
                    self.expect_punct(Punct::RParen)?;
                    break;
                }
                let mut ty = self.type_expr()?;
                let pname = self.expect_ident()?;
                ty.dims = self.dims()?;
                params.push((pname, ty));
                if self.eat_punct(Punct::Comma) {
                    continue;
                }
                self.expect_punct(Punct::RParen)?;
                break;
            }
        }
        let body = self.block()?;
        Ok(Function {
            name,
            ret: TypeExpr {
                base,
                ptr_depth,
                dims: Vec::new(),
            },
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Block, CompileError> {
        self.expect_punct(Punct::LBrace)?;
        let mut block = Block::default();
        // C89: declarations first.
        while self.at_type() {
            let line = self.line();
            let mut ty = self.type_expr()?;
            let name = self.expect_ident()?;
            ty.dims = self.dims()?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(Punct::Semi)?;
            block.decls.push(VarDecl {
                name,
                ty,
                init,
                line,
            });
        }
        while !self.eat_punct(Punct::RBrace) {
            if self.at_type() {
                return self.err("declarations must precede statements (C89 style)");
            }
            block.stmts.push(self.stmt()?);
        }
        Ok(block)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_blk = self.block_or_stmt()?;
                let else_blk = if self.peek() == &Tok::Kw(Kw::Else) {
                    self.bump();
                    if self.peek() == &Tok::Kw(Kw::If) {
                        // else-if chains: wrap the nested if in a block.
                        let nested = self.stmt()?;
                        Some(Block {
                            decls: vec![],
                            stmts: vec![nested],
                        })
                    } else {
                        Some(self.block_or_stmt()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                    line,
                })
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body, line })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.peek() == &Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect_punct(Punct::Semi)?;
                let cond = if self.peek() == &Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.peek() == &Tok::Punct(Punct::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    line,
                })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let value = if self.peek() == &Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break { line })
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue { line })
            }
            Tok::Punct(Punct::LBrace) => Ok(Stmt::Block(self.block()?)),
            _ => {
                let s = self.simple_stmt()?;
                self.expect_punct(Punct::Semi)?;
                Ok(s)
            }
        }
    }

    /// A statement without trailing `;`: assignment or expression.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let e = self.expr()?;
        if self.eat_punct(Punct::Assign) {
            let value = self.expr()?;
            Ok(Stmt::Assign {
                target: e,
                value,
                line,
            })
        } else {
            Ok(Stmt::Expr { expr: e, line })
        }
    }

    /// A block, or a single statement promoted to a block.
    fn block_or_stmt(&mut self) -> Result<Block, CompileError> {
        if self.peek() == &Tok::Punct(Punct::LBrace) {
            self.block()
        } else {
            let s = self.stmt()?;
            Ok(Block {
                decls: vec![],
                stmts: vec![s],
            })
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if self.eat_punct(Punct::Question) {
            let line = cond.line;
            let then_e = self.expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_e = self.ternary()?;
            Ok(self.mk(
                line,
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_e: Box::new(then_e),
                    else_e: Box::new(else_e),
                },
            ))
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct(Punct::OrOr) => (BinOp::Or, 1),
                Tok::Punct(Punct::AndAnd) => (BinOp::And, 2),
                Tok::Punct(Punct::Pipe) => (BinOp::BitOr, 3),
                Tok::Punct(Punct::Caret) => (BinOp::BitXor, 4),
                Tok::Punct(Punct::Amp) => (BinOp::BitAnd, 5),
                Tok::Punct(Punct::EqEq) => (BinOp::Eq, 6),
                Tok::Punct(Punct::Ne) => (BinOp::Ne, 6),
                Tok::Punct(Punct::Lt) => (BinOp::Lt, 7),
                Tok::Punct(Punct::Le) => (BinOp::Le, 7),
                Tok::Punct(Punct::Gt) => (BinOp::Gt, 7),
                Tok::Punct(Punct::Ge) => (BinOp::Ge, 7),
                Tok::Punct(Punct::Shl) => (BinOp::Shl, 8),
                Tok::Punct(Punct::Shr) => (BinOp::Shr, 8),
                Tok::Punct(Punct::Plus) => (BinOp::Add, 9),
                Tok::Punct(Punct::Minus) => (BinOp::Sub, 9),
                Tok::Punct(Punct::Star) => (BinOp::Mul, 10),
                Tok::Punct(Punct::Slash) => (BinOp::Div, 10),
                Tok::Punct(Punct::Percent) => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let line = lhs.line;
            lhs = self.mk(
                line,
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            );
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let op = match self.peek() {
            Tok::Punct(Punct::Minus) => Some(UnOp::Neg),
            Tok::Punct(Punct::Bang) => Some(UnOp::Not),
            Tok::Punct(Punct::Star) => Some(UnOp::Deref),
            Tok::Punct(Punct::Amp) => Some(UnOp::Addr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(self.mk(
                line,
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
            ));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat_punct(Punct::LBracket) {
                let index = self.expr()?;
                self.expect_punct(Punct::RBracket)?;
                e = self.mk(
                    line,
                    ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                );
            } else if self.eat_punct(Punct::Dot) {
                let field = self.expect_ident()?;
                e = self.mk(
                    line,
                    ExprKind::Field {
                        base: Box::new(e),
                        field,
                        arrow: false,
                    },
                );
            } else if self.eat_punct(Punct::Arrow) {
                let field = self.expect_ident()?;
                e = self.mk(
                    line,
                    ExprKind::Field {
                        base: Box::new(e),
                        field,
                        arrow: true,
                    },
                );
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => {
                let v = i32::try_from(v).map_err(|_| {
                    CompileError::new(line, format!("integer literal `{v}` out of 32-bit range"))
                })?;
                Ok(self.mk(line, ExprKind::IntLit(v)))
            }
            Tok::Char(c) => Ok(self.mk(line, ExprKind::CharLit(c))),
            Tok::Str(s) => Ok(self.mk(line, ExprKind::StrLit(s))),
            Tok::Ident(name) => {
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(Punct::Comma) {
                                continue;
                            }
                            self.expect_punct(Punct::RParen)?;
                            break;
                        }
                    }
                    Ok(self.mk(line, ExprKind::Call { name, args }))
                } else {
                    Ok(self.mk(line, ExprKind::Var(name)))
                }
            }
            Tok::Punct(Punct::LParen) => {
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_main() {
        let p = parse("void main() { }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
    }

    #[test]
    fn parses_globals_and_arrays() {
        let p = parse("int n; int board[8][8]; char buf[81]; void main() {}").unwrap();
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[1].ty.dims, vec![8, 8]);
        assert_eq!(p.globals[2].ty.dims, vec![81]);
    }

    #[test]
    fn parses_struct_and_pointers() {
        let p = parse(
            "struct node { int val; struct node *next; };
             struct node *head;
             void main() {}",
        )
        .unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(p.globals[0].ty.ptr_depth, 1);
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            "void main() {
               int i;
               for (i = 0; i < 10; i = i + 1) {
                 if (i == 5) { break; } else { continue; }
               }
               while (i > 0) i = i - 1;
             }",
        )
        .unwrap();
        let f = &p.functions[0];
        assert_eq!(f.body.stmts.len(), 2);
        assert!(matches!(f.body.stmts[0], Stmt::For { .. }));
        assert!(matches!(f.body.stmts[1], Stmt::While { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("void main() { int x; x = 1 + 2 * 3; }").unwrap();
        match &p.functions[0].body.stmts[0] {
            Stmt::Assign { value, .. } => match &value.kind {
                ExprKind::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("wrong shape: {other:?}"),
            },
            other => panic!("not an assign: {other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_over_logical() {
        let p = parse("void main() { if (1 < 2 && 3 == 3) { } }").unwrap();
        match &p.functions[0].body.stmts[0] {
            Stmt::If { cond, .. } => match &cond.kind {
                ExprKind::Binary {
                    op: BinOp::And,
                    lhs,
                    rhs,
                } => {
                    assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Lt, .. }));
                    assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Eq, .. }));
                }
                other => panic!("wrong shape: {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn ternary_parses_right_associative() {
        let p = parse("void main() { int d; d = (d > 0) ? d : -d; }").unwrap();
        match &p.functions[0].body.stmts[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::Ternary { .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn else_if_chain() {
        let p =
            parse("void main() { int x; if (x == 1) { } else if (x == 2) { } else { x = 3; } }")
                .unwrap();
        match &p.functions[0].body.stmts[0] {
            Stmt::If {
                else_blk: Some(b), ..
            } => {
                assert!(matches!(b.stmts[0], Stmt::If { .. }));
            }
            _ => panic!("missing else-if"),
        }
    }

    #[test]
    fn member_access_forms() {
        let p =
            parse("struct s { int v; }; void main() { struct s *p; int x; x = p->v; }").unwrap();
        match &p.functions[0].body.stmts[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(&value.kind, ExprKind::Field { arrow: true, .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn decl_after_stmt_rejected() {
        let e = parse("void main() { int x; x = 1; int y; }").unwrap_err();
        assert!(e.msg.contains("precede"));
    }

    #[test]
    fn expr_ids_are_unique() {
        let p = parse("void main() { int x; x = 1 + 2 * (3 - x); }").unwrap();
        let mut ids = Vec::new();
        crate::ast::visit_exprs(&p.functions[0].body, &mut |e| ids.push(e.id));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn call_statement_and_args() {
        let p = parse("void main() { print_int(1 + 2); }").unwrap();
        match &p.functions[0].body.stmts[0] {
            Stmt::Expr { expr, .. } => match &expr.kind {
                ExprKind::Call { name, args } => {
                    assert_eq!(name, "print_int");
                    assert_eq!(args.len(), 1);
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn syntax_error_reports_line() {
        let e = parse("void main() {\n  int x\n}").unwrap_err();
        assert_eq!(e.line, 3); // missing `;` detected at `}`
    }

    #[test]
    fn negative_literal_via_unary() {
        let p = parse("int g = 0; void main() { g = -5; }").unwrap();
        match &p.functions[0].body.stmts[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::Unary { op: UnOp::Neg, .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn void_param_list() {
        let p = parse("int f(void) { return 1; } void main() {}").unwrap();
        assert!(p.functions[0].params.is_empty());
    }
}
