//! Source-level G-SWFIT mutation engine over the MiniC AST.
//!
//! The paper's §5 shows that Algorithm/Function faults cannot be emulated
//! at machine-code level. Unlike Xception we own the compiler, so this
//! module injects faults in the *source representation*: each
//! ODC-classified operator ([`MutationOperator`]) enumerates its
//! applicable sites over the AST in a stable depth-first order and
//! produces a **compilable mutant** — the mutated AST rendered back to
//! canonical MiniC by [`pretty::print_program`](crate::pretty) and
//! recompiled through the ordinary pipeline. The parse → print → reparse
//! round-trip property tests are the oracle that this serialization is
//! faithful.
//!
//! Mutant identity is stable: `(operator, site)` names the same code
//! change for a given source program across sessions, which is what lets
//! campaign checkpoints resume mutant-by-mutant.

use swifi_odc::MutationOperator;

use crate::ast::*;
use crate::pretty::{print_expr, print_program};

/// One generated mutant: a compilable faulty variant of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutant {
    /// Stable id: `<OP>#<site>@<func>:<line>`.
    pub id: String,
    /// The operator that produced the mutant.
    pub operator: MutationOperator,
    /// Site index within this operator's enumeration (stable DFS order).
    pub site: usize,
    /// Source line of the mutated construct (1-based).
    pub line: u32,
    /// Enclosing function, or `<global>` for global initializers.
    pub func: String,
    /// Human-readable before → after description of the change.
    pub description: String,
    /// The complete mutated program as canonical MiniC source.
    pub source: String,
}

/// Enumerate every mutant of `p`, all operators in
/// [`MutationOperator::ALL`] order, sites in stable DFS order.
pub fn mutants(p: &Program) -> Vec<Mutant> {
    MutationOperator::ALL
        .iter()
        .flat_map(|&op| mutants_for(p, op))
        .collect()
}

/// Enumerate the mutants of one operator, in stable site order.
pub fn mutants_for(p: &Program, op: MutationOperator) -> Vec<Mutant> {
    let n = count_sites(p, op);
    (0..n)
        .map(|site| {
            let mut copy = p.clone();
            let hit = apply(&mut copy, op, site).expect("enumerated site applies");
            Mutant {
                id: format!("{}#{site}@{}:{}", op.id(), hit.func, hit.line),
                operator: op,
                site,
                line: hit.line,
                func: hit.func,
                description: hit.description,
                source: print_program(&copy),
            }
        })
        .collect()
}

/// Number of applicable sites of `op` in `p`.
pub fn count_sites(p: &Program, op: MutationOperator) -> usize {
    let mut probe = p.clone();
    let mut ctx = Ctx {
        op,
        target: usize::MAX,
        seen: 0,
        hit: None,
    };
    walk_program(&mut probe, &mut ctx);
    ctx.seen
}

/// What one application changed.
struct Hit {
    line: u32,
    func: String,
    description: String,
}

/// Apply `op` at its `site`-th candidate (same traversal order as
/// [`count_sites`]); returns `None` when `site` is out of range.
fn apply(p: &mut Program, op: MutationOperator, site: usize) -> Option<Hit> {
    let mut ctx = Ctx {
        op,
        target: site,
        seen: 0,
        hit: None,
    };
    walk_program(p, &mut ctx);
    ctx.hit
}

struct Ctx {
    op: MutationOperator,
    target: usize,
    seen: usize,
    hit: Option<Hit>,
}

impl Ctx {
    /// Count one candidate site; true when this is the one to mutate.
    fn claim(&mut self) -> bool {
        let take = self.hit.is_none() && self.seen == self.target;
        self.seen += 1;
        take
    }
}

/// Expression context flags: where candidate checks are meaningful.
#[derive(Clone, Copy, Default)]
struct Pos {
    /// Inside an `if`/`while`/`for` condition (through logical operators).
    condition: bool,
    /// Inside a *loop* condition specifically (`while`/`for`).
    loop_cond: bool,
    /// Inside an assignment right-hand side or initializer.
    value: bool,
}

fn walk_program(p: &mut Program, ctx: &mut Ctx) {
    for g in &mut p.globals {
        if let Some(init) = &mut g.init {
            walk_expr(
                init,
                ctx,
                "<global>",
                Pos {
                    value: true,
                    ..Pos::default()
                },
            );
        }
    }
    for f in &mut p.functions {
        let name = f.name.clone();
        walk_block(&mut f.body, ctx, &name);
    }
}

fn walk_block(b: &mut Block, ctx: &mut Ctx, func: &str) {
    for d in &mut b.decls {
        if let Some(init) = &mut d.init {
            walk_expr(
                init,
                ctx,
                func,
                Pos {
                    value: true,
                    ..Pos::default()
                },
            );
        }
    }
    walk_stmts(&mut b.stmts, ctx, func);
}

fn walk_stmts(stmts: &mut Vec<Stmt>, ctx: &mut Ctx, func: &str) {
    let mut i = 0;
    while i < stmts.len() {
        if is_removal_candidate(ctx.op, &stmts[i]) && ctx.claim() {
            ctx.hit = Some(Hit {
                line: stmts[i].line(),
                func: func.to_string(),
                description: removal_desc(&stmts[i]),
            });
            stmts.remove(i);
            continue;
        }
        walk_stmt(&mut stmts[i], ctx, func);
        i += 1;
    }
}

/// Statement-level removal candidates (`MIF`/`MAS`/`MFC`). Only
/// statements in a block's statement list qualify — `for`-header init and
/// step stay, so every mutant still pretty-prints to valid syntax.
fn is_removal_candidate(op: MutationOperator, s: &Stmt) -> bool {
    match op {
        MutationOperator::MissingIfConstruct => matches!(s, Stmt::If { .. }),
        MutationOperator::MissingAssignment => matches!(s, Stmt::Assign { .. }),
        MutationOperator::MissingFunctionCall => {
            matches!(s, Stmt::Expr { expr, .. } if matches!(expr.kind, ExprKind::Call { .. }))
        }
        _ => false,
    }
}

fn removal_desc(s: &Stmt) -> String {
    match s {
        Stmt::If { cond, .. } => format!("removed `if ({})` construct", print_expr(cond)),
        Stmt::Assign { target, value, .. } => {
            format!("removed `{} = {};`", print_expr(target), print_expr(value))
        }
        Stmt::Expr { expr, .. } => format!("removed call `{};`", print_expr(expr)),
        other => unreachable!("not a removal candidate: {other:?}"),
    }
}

fn walk_stmt(s: &mut Stmt, ctx: &mut Ctx, func: &str) {
    match s {
        Stmt::Assign { target, value, .. } => {
            walk_expr(target, ctx, func, Pos::default());
            walk_expr(
                value,
                ctx,
                func,
                Pos {
                    value: true,
                    ..Pos::default()
                },
            );
        }
        Stmt::Expr { expr, .. } => walk_expr(expr, ctx, func, Pos::default()),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            walk_expr(
                cond,
                ctx,
                func,
                Pos {
                    condition: true,
                    ..Pos::default()
                },
            );
            walk_block(then_blk, ctx, func);
            if let Some(b) = else_blk {
                walk_block(b, ctx, func);
            }
        }
        Stmt::While { cond, body, .. } => {
            walk_expr(
                cond,
                ctx,
                func,
                Pos {
                    condition: true,
                    loop_cond: true,
                    ..Pos::default()
                },
            );
            walk_block(body, ctx, func);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(i) = init {
                walk_stmt(i, ctx, func);
            }
            if let Some(c) = cond {
                walk_expr(
                    c,
                    ctx,
                    func,
                    Pos {
                        condition: true,
                        loop_cond: true,
                        ..Pos::default()
                    },
                );
            }
            if let Some(st) = step {
                walk_stmt(st, ctx, func);
            }
            walk_block(body, ctx, func);
        }
        Stmt::Return { value, .. } => {
            if let Some(v) = value {
                walk_expr(v, ctx, func, Pos::default());
            }
        }
        Stmt::Break { .. } | Stmt::Continue { .. } => {}
        Stmt::Block(b) => walk_block(b, ctx, func),
    }
}

/// Reverse a relational operator — the `WBC` "wrong branch condition".
fn reversed(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// Widen/narrow a loop bound by one — the `OBB` operator.
fn off_by_one(op: BinOp) -> Option<BinOp> {
    match op {
        BinOp::Lt => Some(BinOp::Le),
        BinOp::Le => Some(BinOp::Lt),
        BinOp::Gt => Some(BinOp::Ge),
        BinOp::Ge => Some(BinOp::Gt),
        _ => None,
    }
}

fn walk_expr(e: &mut Expr, ctx: &mut Ctx, func: &str, pos: Pos) {
    let line = e.line;
    // Node-level candidates first (pre-order), so site numbering follows
    // the reading order of the source.
    match ctx.op {
        MutationOperator::WrongBranchCondition => {
            let is_cmp = matches!(&e.kind, ExprKind::Binary { op, .. } if op.is_comparison());
            if pos.condition && is_cmp && ctx.claim() {
                let before = print_expr(e);
                if let ExprKind::Binary { op, .. } = &mut e.kind {
                    *op = reversed(*op);
                }
                ctx.hit = Some(Hit {
                    line,
                    func: func.to_string(),
                    description: format!("`{before}` -> `{}`", print_expr(e)),
                });
            }
        }
        MutationOperator::OffByOneBound => {
            let swap = match &e.kind {
                ExprKind::Binary { op, .. } => off_by_one(*op),
                _ => None,
            };
            if let Some(new_op) = swap {
                if pos.loop_cond && ctx.claim() {
                    let before = print_expr(e);
                    if let ExprKind::Binary { op, .. } = &mut e.kind {
                        *op = new_op;
                    }
                    ctx.hit = Some(Hit {
                        line,
                        func: func.to_string(),
                        description: format!("`{before}` -> `{}`", print_expr(e)),
                    });
                }
            }
        }
        MutationOperator::WrongConstant => {
            if pos.value {
                if let ExprKind::IntLit(v) = &mut e.kind {
                    if ctx.claim() {
                        let new = v.wrapping_add(1);
                        ctx.hit = Some(Hit {
                            line,
                            func: func.to_string(),
                            description: format!("`{v}` -> `{new}`"),
                        });
                        *v = new;
                    }
                }
            }
        }
        MutationOperator::WrongCallArgument => {
            if let ExprKind::Call { name, args } = &mut e.kind {
                for a in args.iter_mut() {
                    // String literals stay: `"s" - 1` would point outside
                    // the literal, which is a *different* fault model.
                    if !matches!(a.kind, ExprKind::StrLit(_)) && ctx.claim() {
                        let before = print_expr(a);
                        let arg_line = a.line;
                        let original = std::mem::replace(
                            a,
                            Expr {
                                id: 0,
                                line: arg_line,
                                kind: ExprKind::IntLit(0),
                            },
                        );
                        *a = Expr {
                            id: 0,
                            line: arg_line,
                            kind: ExprKind::Binary {
                                op: BinOp::Sub,
                                lhs: Box::new(original),
                                rhs: Box::new(Expr {
                                    id: 0,
                                    line: arg_line,
                                    kind: ExprKind::IntLit(1),
                                }),
                            },
                        };
                        ctx.hit = Some(Hit {
                            line: arg_line,
                            func: func.to_string(),
                            description: format!(
                                "argument `{before}` -> `({before} - 1)` in call to `{name}`"
                            ),
                        });
                    }
                }
            }
        }
        // Statement-level operators: no expression candidates.
        MutationOperator::MissingIfConstruct
        | MutationOperator::MissingAssignment
        | MutationOperator::MissingFunctionCall => {}
    }
    // Descend. Condition context propagates only through `&&`/`||`/`!`;
    // value context propagates through value-shaped sub-expressions.
    match &mut e.kind {
        ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::StrLit(_) | ExprKind::Var(_) => {}
        ExprKind::Index { base, index } => {
            let inner = Pos {
                value: pos.value,
                ..Pos::default()
            };
            walk_expr(base, ctx, func, inner);
            walk_expr(index, ctx, func, inner);
        }
        ExprKind::Field { base, .. } => {
            walk_expr(
                base,
                ctx,
                func,
                Pos {
                    value: pos.value,
                    ..Pos::default()
                },
            );
        }
        ExprKind::Unary { op, operand } => {
            let inner = if *op == UnOp::Not {
                pos
            } else {
                Pos {
                    value: pos.value,
                    ..Pos::default()
                }
            };
            walk_expr(operand, ctx, func, inner);
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let inner = if op.is_logical() {
                pos
            } else {
                Pos {
                    value: pos.value,
                    ..Pos::default()
                }
            };
            walk_expr(lhs, ctx, func, inner);
            walk_expr(rhs, ctx, func, inner);
        }
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            walk_expr(cond, ctx, func, Pos::default());
            let inner = Pos {
                value: pos.value,
                ..Pos::default()
            };
            walk_expr(then_e, ctx, func, inner);
            walk_expr(else_e, ctx, func, inner);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                walk_expr(
                    a,
                    ctx,
                    func,
                    Pos {
                        value: pos.value,
                        ..Pos::default()
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_vm::machine::{Machine, MachineConfig};
    use swifi_vm::Noop;

    /// A fixture exercising every operator at least once.
    const FIXTURE: &str = "int limit = 10;
int total;
int square(int v) { return v * v; }
void bump(int d) { total = total + d; }
void main() {
    int i;
    int s;
    s = 0;
    for (i = 0; i < limit; i = i + 1) {
        if (i % 2 == 0 && i > 2) {
            s = s + square(i);
        }
        bump(1);
    }
    while (s > 100) { s = s - 3; }
    if (s == 55) { print_int(s); } else { print_int(total); }
    print_int(s);
}";

    fn fixture_ast() -> Program {
        crate::parser::parse(FIXTURE).expect("fixture parses")
    }

    #[test]
    fn every_operator_has_sites_in_the_fixture() {
        let ast = fixture_ast();
        for op in MutationOperator::ALL {
            assert!(
                count_sites(&ast, op) > 0,
                "operator {op} found no sites in the fixture"
            );
        }
    }

    #[test]
    fn every_mutant_compiles() {
        // The load-bearing guarantee: mutants re-enter the standard
        // compile → run → classify pipeline without special cases.
        let ast = fixture_ast();
        for m in mutants(&ast) {
            crate::compile(&m.source)
                .unwrap_or_else(|e| panic!("mutant {} does not compile: {e:?}", m.id));
        }
    }

    #[test]
    fn mutant_ids_are_unique_and_stable() {
        let ast = fixture_ast();
        let all = mutants(&ast);
        let mut ids: Vec<&str> = all.iter().map(|m| m.id.as_str()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate mutant ids");
        // Pin two ids: checkpoints and golden summaries depend on them.
        assert!(all.iter().any(|m| m.id == "MIF#0@main:10"), "{all:#?}");
        assert!(all.iter().any(|m| m.id.starts_with("WCV#0@<global>")));
    }

    #[test]
    fn enumeration_is_deterministic() {
        let ast = fixture_ast();
        assert_eq!(mutants(&ast), mutants(&ast));
    }

    #[test]
    fn every_mutant_differs_from_the_original_source() {
        let ast = fixture_ast();
        let base = print_program(&ast);
        for m in mutants(&ast) {
            assert_ne!(m.source, base, "mutant {} is a no-op", m.id);
        }
    }

    #[test]
    fn off_by_one_mutant_changes_behaviour() {
        let src = "void main() {
            int i;
            for (i = 0; i < 3; i = i + 1) { print_int(i); }
        }";
        let ast = crate::parser::parse(src).unwrap();
        let ms = mutants_for(&ast, MutationOperator::OffByOneBound);
        assert_eq!(ms.len(), 1);
        let run = |s: &str| {
            let p = crate::compile(s).expect("compiles");
            let mut m = Machine::new(MachineConfig::default());
            m.load(&p.image);
            m.run(&mut Noop).output().to_vec()
        };
        assert_eq!(run(src), b"012");
        // `i < 3` became `i <= 3`: one extra iteration.
        assert_eq!(run(&ms[0].source), b"0123");
    }

    #[test]
    fn missing_assignment_keeps_for_headers_intact() {
        // `for`-header init/step are not removal candidates, so every MAS
        // mutant still prints to parseable source.
        let src = "void main() {
            int i;
            int s;
            s = 0;
            for (i = 0; i < 4; i = i + 1) { s = s + i; }
            print_int(s);
        }";
        let ast = crate::parser::parse(src).unwrap();
        let ms = mutants_for(&ast, MutationOperator::MissingAssignment);
        // Candidates: `s = 0;` and the loop body `s = s + i;` only.
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert!(
                m.source.contains("for (i = 0; (i < 4); i = (i + 1))"),
                "{}",
                m.source
            );
            crate::compile(&m.source).expect("compiles");
        }
    }

    #[test]
    fn descriptions_show_before_and_after() {
        let ast = fixture_ast();
        let wbc = mutants_for(&ast, MutationOperator::WrongBranchCondition);
        assert!(
            wbc[0].description.contains("->"),
            "{:?}",
            wbc[0].description
        );
        let mif = mutants_for(&ast, MutationOperator::MissingIfConstruct);
        assert!(mif[0].description.starts_with("removed `if ("));
    }
}
