//! Pretty-printer round-trip properties: for randomly generated
//! well-formed programs, parse → `pretty::print_program` → reparse yields
//! an equivalent AST, and every G-SWFIT mutant serializes faithfully.
//!
//! Equivalence oracle: the canonical rendering. Line numbers and node ids
//! shift across a reparse, so two ASTs are considered equivalent when
//! they pretty-print to identical source — which also makes the printed
//! form a fixpoint (`canon(canon(x)) == canon(x)`), the property the
//! mutation engine relies on for stable mutant identity.

use proptest::prelude::*;
use swifi_lang::mutate::mutants;
use swifi_lang::{compile, parser::parse, pretty::print_program};

/// A generator of well-formed programs, richer than the one in
/// `fuzz_compile`: char literals, helper-function calls, `while` loops
/// and nested conditions, so that every mutation operator finds sites.
#[derive(Debug, Clone)]
enum GenStmt {
    Assign {
        var: usize,
        a: usize,
        lit: i8,
        op: usize,
    },
    AssignChar {
        var: usize,
        c: u8,
    },
    If {
        var: usize,
        cmp: usize,
        lit: i8,
        then_var: usize,
        with_else: bool,
    },
    Loop {
        var: usize,
        bound: u8,
        body_var: usize,
        strict: bool,
    },
    While {
        var: usize,
        body_var: usize,
    },
    CallHelper {
        arg_var: usize,
        lit: i8,
    },
    Print {
        var: usize,
    },
}

fn arb_stmt() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        (0usize..4, 0usize..4, any::<i8>(), 0usize..4)
            .prop_map(|(var, a, lit, op)| GenStmt::Assign { var, a, lit, op }),
        (0usize..4, 32u8..127).prop_map(|(var, c)| GenStmt::AssignChar { var, c }),
        (0usize..4, 0usize..6, any::<i8>(), 0usize..4, any::<bool>()).prop_map(
            |(var, cmp, lit, then_var, with_else)| GenStmt::If {
                var,
                cmp,
                lit,
                then_var,
                with_else,
            }
        ),
        (0usize..4, 0u8..15, 0usize..4, any::<bool>()).prop_map(
            |(var, bound, body_var, strict)| GenStmt::Loop {
                var,
                bound,
                body_var,
                strict,
            }
        ),
        (0usize..4, 0usize..4).prop_map(|(var, body_var)| GenStmt::While { var, body_var }),
        (0usize..4, any::<i8>()).prop_map(|(arg_var, lit)| GenStmt::CallHelper { arg_var, lit }),
        (0usize..4).prop_map(|var| GenStmt::Print { var }),
    ]
}

fn render(stmts: &[GenStmt]) -> String {
    let vars = ["v0", "v1", "v2", "v3"];
    let ops = ["+", "-", "*", "^"];
    let cmps = ["<", "<=", ">", ">=", "==", "!="];
    let mut src = String::from("int acc;\nint helper(int x) { return x + 1; }\nvoid main() {\n");
    for v in vars {
        src.push_str(&format!("  int {v};\n"));
    }
    for v in vars {
        src.push_str(&format!("  {v} = 1;\n"));
    }
    let mut loop_var = 0;
    for s in stmts {
        match s {
            GenStmt::Assign { var, a, lit, op } => {
                src.push_str(&format!(
                    "  {} = {} {} {};\n",
                    vars[*var], vars[*a], ops[*op], *lit as i32
                ));
            }
            GenStmt::AssignChar { var, c } => {
                let lit = match *c {
                    b'\\' => "'\\\\'".to_string(),
                    b'\'' => "'\\''".to_string(),
                    c => format!("'{}'", c as char),
                };
                src.push_str(&format!("  {} = {lit};\n", vars[*var]));
            }
            GenStmt::If {
                var,
                cmp,
                lit,
                then_var,
                with_else,
            } => {
                src.push_str(&format!(
                    "  if ({} {} {} && {} != 0) {{ {} = {} + 1; }}",
                    vars[*var], cmps[*cmp], lit, vars[*var], vars[*then_var], vars[*then_var]
                ));
                if *with_else {
                    src.push_str(&format!(
                        " else {{ {} = {} - 1; }}",
                        vars[*then_var], vars[*then_var]
                    ));
                }
                src.push('\n');
            }
            GenStmt::Loop {
                var,
                bound,
                body_var,
                strict,
            } => {
                let c = format!("c{loop_var}");
                loop_var += 1;
                src = src.replacen(
                    "void main() {\n",
                    &format!("void main() {{\n  int {c};\n"),
                    1,
                );
                let cmp = if *strict { "<" } else { "<=" };
                src.push_str(&format!(
                    "  for ({c} = 0; {c} {cmp} {bound}; {c} = {c} + 1) {{ {} = {} + {}; }}\n",
                    vars[*var], vars[*var], vars[*body_var]
                ));
            }
            GenStmt::While { var, body_var } => {
                src.push_str(&format!(
                    "  while ({} > 100) {{ {} = {} - {}; }}\n",
                    vars[*var], vars[*var], vars[*var], vars[*body_var]
                ));
            }
            GenStmt::CallHelper { arg_var, lit } => {
                src.push_str(&format!(
                    "  acc = helper({} + {});\n",
                    vars[*arg_var], *lit as i32
                ));
            }
            GenStmt::Print { var } => {
                src.push_str(&format!("  print_int({});\n", vars[*var]));
            }
        }
    }
    src.push_str("}\n");
    src
}

/// Canonical rendering of a source text.
fn canon(src: &str) -> String {
    print_program(&parse(src).unwrap_or_else(|e| panic!("{e}\n{src}")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → print → reparse yields an equivalent AST: the reparsed
    /// tree pretty-prints to exactly the same source, so the printed
    /// form is a fixpoint of the round trip.
    #[test]
    fn printed_form_is_a_round_trip_fixpoint(
        stmts in proptest::collection::vec(arb_stmt(), 0..15)
    ) {
        let src = render(&stmts);
        let printed = canon(&src);
        prop_assert_eq!(&canon(&printed), &printed, "reparse drifted for\n{}", src);
    }

    /// Every mutant of a generated program is serialized faithfully: its
    /// source is already canonical (the mutated AST survives the
    /// print → reparse → print cycle byte-for-byte) and it recompiles.
    #[test]
    fn mutants_serialize_canonically_and_recompile(
        stmts in proptest::collection::vec(arb_stmt(), 0..10)
    ) {
        let src = render(&stmts);
        let ast = parse(&src).expect("generated program parses");
        for m in mutants(&ast) {
            prop_assert_eq!(
                &canon(&m.source), &m.source,
                "mutant {} is not canonical for\n{}", m.id, src
            );
            let compiled = compile(&m.source);
            prop_assert!(
                compiled.is_ok(),
                "mutant {} does not compile: {:?}\n{}",
                m.id,
                compiled.err(),
                m.source
            );
        }
    }
}
