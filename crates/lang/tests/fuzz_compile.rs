//! Fuzz-style totality tests: randomly generated well-formed MiniC
//! programs must compile, run without host panics, and round-trip through
//! the pretty-printer; random byte soup must produce errors, not panics.

use proptest::prelude::*;
use swifi_lang::{compile, parser::parse, pretty::print_program};
use swifi_vm::machine::{Machine, MachineConfig, RunOutcome};
use swifi_vm::Noop;

/// A tiny generator of well-formed programs: straight-line integer
/// arithmetic with loops and conditionals over a fixed variable pool.
#[derive(Debug, Clone)]
enum GenStmt {
    Assign {
        var: usize,
        a: usize,
        b: usize,
        op: usize,
        lit: i8,
    },
    If {
        var: usize,
        cmp: usize,
        lit: i8,
        then_var: usize,
    },
    Loop {
        var: usize,
        bound: u8,
        body_var: usize,
    },
    Print {
        var: usize,
    },
}

fn arb_stmt() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        (0usize..4, 0usize..4, 0usize..4, 0usize..6, any::<i8>())
            .prop_map(|(var, a, b, op, lit)| GenStmt::Assign { var, a, b, op, lit }),
        (0usize..4, 0usize..6, any::<i8>(), 0usize..4).prop_map(|(var, cmp, lit, then_var)| {
            GenStmt::If {
                var,
                cmp,
                lit,
                then_var,
            }
        }),
        (0usize..4, 0u8..20, 0usize..4).prop_map(|(var, bound, body_var)| GenStmt::Loop {
            var,
            bound,
            body_var
        }),
        (0usize..4).prop_map(|var| GenStmt::Print { var }),
    ]
}

fn render(stmts: &[GenStmt]) -> String {
    let vars = ["v0", "v1", "v2", "v3"];
    let ops = ["+", "-", "*", "/", "%", "^"];
    let cmps = ["<", "<=", ">", ">=", "==", "!="];
    let mut src = String::from("void main() {\n");
    for v in vars {
        src.push_str(&format!("  int {v};\n"));
    }
    for v in vars {
        src.push_str(&format!("  {v} = 1;\n"));
    }
    let mut loop_var = 0;
    for s in stmts {
        match s {
            GenStmt::Assign { var, a, b, op, lit } => {
                // Guard divisions: divide by a non-zero literal instead.
                if *op == 3 || *op == 4 {
                    let d = (*lit as i32).unsigned_abs() % 7 + 1;
                    src.push_str(&format!(
                        "  {} = {} {} {};\n",
                        vars[*var], vars[*a], ops[*op], d
                    ));
                } else {
                    src.push_str(&format!(
                        "  {} = {} {} ({} + {});\n",
                        vars[*var], vars[*a], ops[*op], vars[*b], lit
                    ));
                }
            }
            GenStmt::If {
                var,
                cmp,
                lit,
                then_var,
            } => {
                src.push_str(&format!(
                    "  if ({} {} {}) {{ {} = {} + 1; }}\n",
                    vars[*var], cmps[*cmp], lit, vars[*then_var], vars[*then_var]
                ));
            }
            GenStmt::Loop {
                var,
                bound,
                body_var,
            } => {
                // Fresh counter per loop keeps termination trivial.
                let c = format!("c{loop_var}");
                loop_var += 1;
                src = src.replacen(
                    "void main() {\n",
                    &format!("void main() {{\n  int {c};\n"),
                    1,
                );
                src.push_str(&format!(
                    "  for ({c} = 0; {c} < {bound}; {c} = {c} + 1) {{ {} = {} + {}; }}\n",
                    vars[*var], vars[*var], vars[*body_var]
                ));
            }
            GenStmt::Print { var } => {
                src.push_str(&format!("  print_int({});\n", vars[*var]));
            }
        }
    }
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated programs always compile and terminate without host
    /// panics; outcomes are completed runs (terminating loops, guarded
    /// divisions).
    #[test]
    fn generated_programs_compile_and_run(stmts in proptest::collection::vec(arb_stmt(), 0..25)) {
        let src = render(&stmts);
        let p = compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let mut m = Machine::new(MachineConfig { budget: 5_000_000, ..MachineConfig::default() });
        m.load(&p.image);
        match m.run(&mut Noop) {
            RunOutcome::Completed { exit_code: 0, .. } => {}
            other => panic!("abnormal outcome {other:?} for\n{src}"),
        }
    }

    /// Generated programs round-trip through the pretty printer with
    /// identical behaviour.
    #[test]
    fn generated_programs_pretty_round_trip(stmts in proptest::collection::vec(arb_stmt(), 0..15)) {
        let src = render(&stmts);
        let printed = print_program(&parse(&src).unwrap());
        let run = |s: &str| {
            let p = compile(s).unwrap_or_else(|e| panic!("{e}\n{s}"));
            let mut m = Machine::new(MachineConfig { budget: 5_000_000, ..MachineConfig::default() });
            m.load(&p.image);
            m.run(&mut Noop).output().to_vec()
        };
        prop_assert_eq!(run(&src), run(&printed), "printed form diverged:\n{}", printed);
    }

    /// Arbitrary byte soup never panics the compiler — it may only return
    /// a CompileError.
    #[test]
    fn garbage_input_is_rejected_gracefully(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(src) = String::from_utf8(bytes) {
            let _ = compile(&src); // must not panic
        }
    }

    /// Structured garbage: random token soup from a C-ish alphabet.
    #[test]
    fn token_soup_is_rejected_gracefully(
        toks in proptest::collection::vec(0usize..20, 0..120)
    ) {
        let alphabet = [
            "int", "char", "void", "if", "else", "while", "for", "return", "{", "}", "(",
            ")", ";", "=", "+", "*", "x", "1", "[3]", "struct",
        ];
        let src: String = toks
            .iter()
            .map(|&t| alphabet[t])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = compile(&src); // must not panic
    }
}
