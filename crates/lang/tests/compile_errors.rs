//! Golden tests for compiler diagnostics: every rejection carries the
//! right source line and a message a user can act on.

use swifi_lang::compile;

/// Assert compilation fails on `line` with a message containing `needle`.
fn rejects(src: &str, line: u32, needle: &str) {
    match compile(src) {
        Ok(_) => panic!("expected a compile error containing `{needle}`:\n{src}"),
        Err(e) => {
            assert!(
                e.msg.contains(needle),
                "expected `{needle}` in `{}` for:\n{src}",
                e.msg
            );
            assert_eq!(e.line, line, "wrong line for `{}`:\n{src}", e.msg);
        }
    }
}

#[test]
fn lexical_errors() {
    rejects("void main() { int x@; }", 1, "unexpected character");
    rejects(
        "void main() {\n  print_str(\"unterminated);\n}",
        2,
        "unterminated string",
    );
    rejects(
        "/* comment never ends\nvoid main() {}",
        1,
        "unterminated block comment",
    );
}

#[test]
fn syntax_errors() {
    rejects("void main() { int x \n x = 1; }", 2, "expected");
    rejects("void main() { if x > 1 { } }", 1, "expected");
    rejects("void main() { for (;;) }", 1, "expected");
    rejects("int a[0]; void main() {}", 1, "positive");
    rejects("void main() { x = ; }", 1, "expected expression");
}

#[test]
fn name_resolution_errors() {
    rejects("void main() { y = 1; }", 1, "unknown variable");
    rejects("void main() { frob(); }", 1, "unknown function");
    rejects("struct missing *p; void main() {}", 1, "unknown struct");
    rejects("void main() { int x; int x; }", 1, "duplicate variable");
    rejects("int g; int g; void main() {}", 1, "duplicate global");
}

#[test]
fn type_errors() {
    rejects("void main() { int *p; p = 3; }", 1, "cannot assign");
    rejects("void main() { int x; x = \"str\"; }", 1, "cannot assign");
    rejects("void main() { int x; x = *x; }", 1, "dereference");
    rejects(
        "struct s { int v; }; void main() { struct s a; a.w = 1; }",
        1,
        "no field",
    );
    rejects("void main() { int a[3]; int b[3]; a = b; }", 1, "array");
    rejects(
        "int f() { return; } void main() {}",
        1,
        "must return a value",
    );
    rejects("void g() { return 5; } void main() {}", 1, "cannot return");
}

#[test]
fn structural_errors() {
    rejects("void main() { break; }", 1, "outside");
    rejects("void main() { continue; }", 1, "outside");
    rejects(
        "int f(int a) { return a; } void main() { int x; x = f(); }",
        1,
        "expects 1",
    );
    rejects("void main() { int x; x + 1; }", 1, "function calls");
    rejects("void main() { 3 = 4; }", 1, "not an lvalue");
}

#[test]
fn resource_limit_errors() {
    rejects("int f() { return 1; }", 0, "no `main`");
    rejects("int main() { return 0; }", 1, "void main");
    // Frame too large: a giant local array.
    rejects(
        "void main() { int big[20000]; big[0] = 1; }",
        1,
        "too large",
    );
    // More than 8 parameters.
    rejects(
        "int f(int a, int b, int c, int d, int e, int f2, int g, int h, int i) { return a; }
         void main() {}",
        1,
        "at most 8",
    );
}

#[test]
fn error_lines_track_multiline_programs() {
    rejects(
        "int g;\n\nvoid main() {\n  int x;\n  x = unknown_var;\n}",
        5,
        "unknown variable",
    );
}

#[test]
fn helpful_c89_decl_message() {
    rejects(
        "void main() {\n  int x;\n  x = 1;\n  int y;\n}",
        4,
        "precede",
    );
}
