//! `swifi` — command-line front end for the SWIFI reproduction.
//!
//! ```text
//! swifi list                                   roster of target programs
//! swifi compile FILE [--asm] [--sites]         compile MiniC; show code / fault sites
//! swifi run FILE [--int N]... [--line S]       run a MiniC program
//! swifi sites FILE                             fault-location catalogue
//! swifi inject FILE --fault N [--int N]...     inject the N-th generated fault
//! swifi emulate NAME                           §5 emulability analysis for a roster program
//! swifi campaign NAME [--inputs N]             §6 class campaign on a roster program
//! swifi mutants FILE|NAME [--op ID]            G-SWFIT source mutant catalogue
//! swifi source-campaign NAME [--mutants N]     source-level mutation campaign
//! swifi compare-representations [--inputs N]   source vs binary on the comparison roster
//! swifi metrics FILE|NAME                      software metrics
//! swifi trace-validate FILE                    check a --trace-out file
//! swifi serve [--addr A]                       campaign server (sharded workers)
//! swifi submit NAME --addr A [--shards N]      submit a campaign to a server
//! ```

mod args;
mod commands;

use args::ParsedArgs;

fn main() {
    let parsed = ParsedArgs::parse(std::env::args().skip(1));
    let result = match parsed.command.as_str() {
        "list" => commands::list(),
        "compile" => commands::compile_cmd(&parsed),
        "run" => commands::run_cmd(&parsed),
        "sites" => commands::sites(&parsed),
        "inject" => commands::inject(&parsed),
        "emulate" => commands::emulate(&parsed),
        "campaign" => commands::campaign(&parsed),
        "mutants" => commands::mutants_cmd(&parsed),
        "source-campaign" => commands::source_campaign_cmd(&parsed),
        "compare-representations" => commands::compare_cmd(&parsed),
        "metrics" => commands::metrics_cmd(&parsed),
        "trace-validate" => commands::trace_validate_cmd(&parsed),
        "serve" => commands::serve_cmd(&parsed),
        "submit" => commands::submit_cmd(&parsed),
        // Hidden: the worker-process entry `swifi serve` re-executes.
        "shard-exec" => commands::shard_exec_cmd(&parsed),
        "" | "help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", commands::USAGE)),
    };
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
