//! Tiny dependency-free argument parsing for the `swifi` CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional operands, and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional operands after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options; bare `--flag`s map to an empty string.
    pub options: HashMap<String, Vec<String>>,
}

impl ParsedArgs {
    /// Parse an argument list (without the program name).
    ///
    /// Every `--key` consumes the next argument as its value unless that
    /// argument also starts with `--` (then it is a bare flag). Repeated
    /// keys accumulate.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> ParsedArgs {
        let mut out = ParsedArgs::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let takes_value = it.peek().is_some_and(|n| !n.starts_with("--"));
                let value = if takes_value {
                    it.next().unwrap_or_default()
                } else {
                    // Bare flag (`--asm`, or `--seed` at the end of the
                    // line): recorded with an empty value. Accessors that
                    // *need* a value turn this into a usage error naming
                    // the flag instead of parsing the empty string.
                    String::new()
                };
                out.options.entry(key.to_string()).or_default().push(value);
            } else if out.command.is_empty() {
                out.command = a;
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// Last value of an option, if present.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Whether a bare flag (or option) was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// All values of a repeatable option.
    pub fn all(&self, key: &str) -> Vec<&str> {
        self.options
            .get(key)
            .map(|v| v.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Last value of an option, as a usage error when the option was given
    /// without one (e.g. `swifi campaign --seed` with nothing after).
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when it was given bare.
    pub fn value_opt(&self, key: &str) -> Result<Option<&str>, String> {
        match self.opt(key) {
            None => Ok(None),
            Some("") => Err(format!("--{key} requires a value (e.g. `--{key} VALUE`)")),
            Some(v) => Ok(Some(v)),
        }
    }

    /// Parse an option as an integer with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the option was given without a value or the
    /// value is not an integer.
    pub fn int_opt(&self, key: &str, default: i64) -> Result<i64, String> {
        match self.value_opt(key)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// Parse an option that must be a *strictly positive* integer
    /// (`--watchdog-ms`, `--watchdog-poll`, `--profile-every`, `--shards`,
    /// ... — zero or negative values would panic or spin downstream).
    /// `None` when the option is absent.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the option was given bare,
    /// is not an integer, or is not positive.
    pub fn positive_int_opt(&self, key: &str) -> Result<Option<i64>, String> {
        match self.value_opt(key)? {
            None => Ok(None),
            Some(v) => {
                let n: i64 = v
                    .parse()
                    .map_err(|_| format!("--{key} expects an integer, got `{v}`"))?;
                if n <= 0 {
                    return Err(format!("--{key} must be a positive integer, got {n}"));
                }
                Ok(Some(n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ParsedArgs {
        ParsedArgs::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn command_and_positionals() {
        let p = parse("run prog.mc extra");
        assert_eq!(p.command, "run");
        assert_eq!(p.positional, vec!["prog.mc", "extra"]);
    }

    #[test]
    fn options_and_flags() {
        let p = parse("inject f.mc --site 3 --asm --int 1 --int 2");
        assert_eq!(p.opt("site"), Some("3"));
        assert!(p.flag("asm"));
        assert_eq!(p.all("int"), vec!["1", "2"]);
        assert_eq!(p.int_opt("site", 0), Ok(3));
    }

    #[test]
    fn flag_before_flag_is_bare() {
        // A `--flag` immediately followed by another `--flag` takes no
        // value; a trailing operand would be consumed as a value, so the
        // documented usage puts flags last.
        let p = parse("compile f.mc --asm --sites");
        assert!(p.flag("asm"));
        assert!(p.flag("sites"));
        assert_eq!(p.positional, vec!["f.mc"]);
    }

    #[test]
    fn int_opt_errors_on_garbage() {
        let p = parse("x --n abc");
        // "abc" does not start with --, so it is the value of --n.
        assert!(p.int_opt("n", 1).is_err());
    }

    #[test]
    fn missing_value_is_a_usage_error_naming_the_flag() {
        // Regression: `swifi campaign --seed` used to silently record an
        // empty value and fail later with a confusing parse error.
        let p = parse("campaign SOR --seed");
        let err = p.int_opt("seed", 7).unwrap_err();
        assert!(err.contains("--seed"), "error must name the flag: {err}");
        assert!(err.contains("requires a value"), "{err}");
        let err = p.value_opt("seed").unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        // Bare boolean flags are still fine through `flag()`.
        assert!(p.flag("seed"));
        // And options that do have values are unaffected.
        let p = parse("campaign SOR --seed 9");
        assert_eq!(p.int_opt("seed", 7), Ok(9));
        assert_eq!(p.value_opt("seed"), Ok(Some("9")));
    }

    #[test]
    fn defaults_apply() {
        let p = parse("campaign SOR");
        assert_eq!(p.int_opt("inputs", 10), Ok(10));
        assert_eq!(p.opt("missing"), None);
        assert!(!p.flag("missing"));
    }

    #[test]
    fn negative_numbers_are_values() {
        // `-5` does not start with `--`, so it is consumed as a value.
        let p = parse("run --int -5");
        assert_eq!(p.all("int"), vec!["-5"]);
    }

    #[test]
    fn positive_int_opt_rejects_zero_and_negative() {
        // Regression: `--watchdog-ms 0` / `--watchdog-poll -1` /
        // `--profile-every 0` were silently accepted and panicked or spun
        // downstream; each must be a usage error naming the flag.
        for flag in ["watchdog-ms", "watchdog-poll", "profile-every"] {
            for bad in ["0", "-3"] {
                let p = parse(&format!("campaign SOR --{flag} {bad}"));
                let err = p.positive_int_opt(flag).unwrap_err();
                assert!(err.contains(&format!("--{flag}")), "{err}");
                assert!(err.contains("positive"), "{err}");
            }
        }
    }

    #[test]
    fn positive_int_opt_accepts_positive_and_absent() {
        let p = parse("campaign SOR --watchdog-ms 250");
        assert_eq!(p.positive_int_opt("watchdog-ms"), Ok(Some(250)));
        assert_eq!(p.positive_int_opt("watchdog-poll"), Ok(None));
        // Bare and non-integer forms still error, naming the flag.
        let p = parse("campaign SOR --watchdog-ms");
        assert!(p.positive_int_opt("watchdog-ms").is_err());
        let p = parse("campaign SOR --watchdog-ms soon");
        let err = p.positive_int_opt("watchdog-ms").unwrap_err();
        assert!(err.contains("integer"), "{err}");
    }
}
