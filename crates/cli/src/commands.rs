//! Implementations of the `swifi` subcommands.

use std::sync::Arc;

use swifi_campaign::compare::{compare_representations_with, comparison_table};
use swifi_campaign::report::{class_campaign_report, render_table, source_campaign_report};
use swifi_campaign::section6::{class_campaign_with, CampaignScale};
use swifi_campaign::source::{source_campaign_with, SourceScale};
use swifi_campaign::{CampaignOptions, Throughput};
use swifi_core::emulate::{plan_emulation, EmulationVerdict};
use swifi_core::injector::{Injector, TriggerMode};
use swifi_core::locations::generate_error_set;
use swifi_lang::compile;
use swifi_programs::{all_programs, program};
use swifi_server::{CampaignRequest, Driver, Event, JobConfig, Request, WorkerMode};
use swifi_trace::metrics::names as metric_names;
use swifi_trace::profile::DEFAULT_SAMPLE_EVERY;
use swifi_trace::{
    attribute, collapsed_stacks, top_table, validate_chrome_trace, FuncRange, Telemetry,
    TelemetryConfig,
};
use swifi_vm::asm::disassemble;
use swifi_vm::machine::{InputTape, Machine, MachineConfig, RunOutcome};
use swifi_vm::Noop;

use crate::args::ParsedArgs;

/// CLI usage text.
pub const USAGE: &str = "\
swifi - software fault injection playground (DSN 2000 reproduction)

USAGE:
  swifi list                                 roster of target programs
  swifi compile FILE [--asm] [--sites]       compile MiniC; show code / fault sites
  swifi run FILE [--int N]... [--line S]     run a MiniC program
  swifi sites FILE                           fault-location catalogue
  swifi inject FILE --fault N [--int N]...   inject the N-th generated fault
  swifi emulate NAME                         emulability analysis (paper sec. 5)
  swifi campaign NAME [--inputs N]           class campaign (paper sec. 6)
  swifi mutants FILE|NAME [--op ID]          G-SWFIT source mutant catalogue
  swifi source-campaign NAME [--mutants N]   source-level mutation campaign
                         [--inputs N]
  swifi compare-representations [--inputs N] source vs binary SWIFI on the
                         [--mutants N]       comparison roster (4 programs)
  swifi metrics FILE|NAME                    software complexity metrics
  swifi trace-validate FILE                  check a --trace-out file (schema
                                             + Chrome trace well-formedness)

CAMPAIGN OPTIONS:
  --seed N          campaign seed (default 2024)
  --checkpoint F    append completed run records to the JSONL file F
  --resume          resume from F: recorded runs replay instead of re-running
  --watchdog-ms N   per-run wall-clock budget; slower runs classify as Hang
  --watchdog-poll N scheduler rounds between watchdog deadline polls
                    (default 64)
  --chaos-panic N   panic the worker on campaign item N (harness self-test)
  --no-prefix-fork  disable the prefix-fork cache (full prefix per run;
                    reported results are identical either way)
  --no-block-cache  disable basic-block translation (predecoded line
                    cache only; reported results are identical either way)
  --no-prune        disable trace-guided pruning (provable-dormancy skips
                    and outcome-equivalence collapse; reported results
                    are identical either way)
  --prune-sample N  re-run N% of pruned runs in full and check the
                    predicted outcome (sampling oracle; default 0)

TELEMETRY OPTIONS (campaign / source-campaign; reported results are
identical with or without telemetry):
  --trace-out F     write a Chrome trace-event JSON of the campaign to F
                    (load in Perfetto or chrome://tracing)
  --metrics-out F   write the metrics registry snapshot (counters, gauges,
                    run-latency / retired-instruction histograms) to F
  --profile         sample guest PCs; print the hottest functions
  --profile-out F   also write the profile as collapsed stacks to F
  --profile-every N slow-path sampling period (default 64)

SERVER (campaign-as-a-service):
  swifi serve [--addr A] [--workdir D] [--in-process]
                    accept campaign submissions; prints `serving on ADDR`
                    (default --addr 127.0.0.1:0 picks a free port); shard
                    passes run in worker processes unless --in-process
  swifi submit NAME --addr A [--source] [--seed N] [--inputs N]
                    [--mutants N] [--shards N] [--pool N]
                    [--trace-out F] [--metrics-out F]
                    run a class (default) or --source campaign on the
                    server, sharded --shards ways, --pool workers at a
                    time; progress streams to stderr, the report (byte-
                    identical to the single-process command) to stdout
  swifi submit --ping|--shutdown --addr A
                    probe or gracefully stop a server

FILE is a MiniC source path; NAME is a roster program (see `swifi list`).
";

type CmdResult = Result<(), String>;

fn read_source(parsed: &ParsedArgs) -> Result<(String, String), String> {
    let path = parsed
        .positional
        .first()
        .ok_or_else(|| "expected a MiniC source file".to_string())?;
    // Roster names are accepted anywhere a file is.
    if let Some(p) = program(path) {
        return Ok((path.clone(), p.source_correct.to_string()));
    }
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok((path.clone(), src))
}

fn input_from_args(parsed: &ParsedArgs) -> Result<InputTape, String> {
    let mut tape = InputTape::new();
    for v in parsed.all("int") {
        let n: i32 = v
            .parse()
            .map_err(|_| format!("--int expects integers, got `{v}`"))?;
        tape.push_ints([n]);
    }
    if let Some(line) = parsed.opt("line") {
        tape.push_line(line);
    }
    Ok(tape)
}

/// `swifi list`
pub fn list() -> CmdResult {
    let rows: Vec<Vec<String>> = all_programs()
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                p.family.name().to_string(),
                p.real_fault
                    .map(|f| f.defect_type.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                if p.section6_target { "yes" } else { "no" }.to_string(),
                p.features.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "Program",
                "Family",
                "Real fault",
                "Sec.6 target",
                "Features"
            ],
            &rows
        )
    );
    Ok(())
}

/// `swifi compile FILE [--asm] [--sites]`
pub fn compile_cmd(parsed: &ParsedArgs) -> CmdResult {
    let (path, src) = read_source(parsed)?;
    let p = compile(&src).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: {} instructions, {} data bytes, {} functions",
        p.image.code.len(),
        p.image.data.len(),
        p.debug.functions.len()
    );
    if parsed.flag("asm") {
        for line in disassemble(&p.image) {
            println!("{line}");
        }
    }
    if parsed.flag("sites") {
        print_sites(&p);
    }
    Ok(())
}

fn print_sites(p: &swifi_lang::Program) {
    println!(
        "{} assignment location(s), {} checking location(s):",
        p.debug.assigns.len(),
        p.debug.checks.len()
    );
    for (i, a) in p.debug.assigns.iter().enumerate() {
        println!(
            "  A{i:<3} line {:<4} {:<12} store @ {:#010x}{}",
            a.line,
            a.func,
            a.store_addr,
            if a.is_pointer { "  (pointer)" } else { "" }
        );
    }
    for (i, c) in p.debug.checks.iter().enumerate() {
        let types: Vec<&str> = c.mutations.iter().map(|(e, _)| e.label()).collect();
        println!(
            "  C{i:<3} line {:<4} {:<12} branch @ {:#010x}  [{}]",
            c.line,
            c.func,
            c.branch_addr,
            types.join(", ")
        );
    }
}

/// `swifi run FILE [--int N]... [--line S] [--cores N]`
pub fn run_cmd(parsed: &ParsedArgs) -> CmdResult {
    let (path, src) = read_source(parsed)?;
    let p = compile(&src).map_err(|e| format!("{path}: {e}"))?;
    let cores = parsed.int_opt("cores", 1)? as usize;
    let mut m = Machine::new(MachineConfig {
        num_cores: cores.max(1),
        ..MachineConfig::default()
    });
    m.load(&p.image);
    m.set_input(input_from_args(parsed)?);
    report_outcome(m.run(&mut Noop));
    Ok(())
}

fn report_outcome(out: RunOutcome) {
    match out {
        RunOutcome::Completed { exit_code, output } => {
            println!("{}", String::from_utf8_lossy(&output));
            println!("[exit code {exit_code}]");
        }
        RunOutcome::Trapped {
            trap,
            pc,
            core,
            output,
        } => {
            println!("{}", String::from_utf8_lossy(&output));
            println!("[CRASH on core {core} at {pc:#010x}: {trap}]");
        }
        RunOutcome::Hang { output } => {
            println!("{}", String::from_utf8_lossy(&output));
            println!("[HANG: instruction budget exhausted]");
        }
    }
}

/// `swifi sites FILE`
pub fn sites(parsed: &ParsedArgs) -> CmdResult {
    let (path, src) = read_source(parsed)?;
    let p = compile(&src).map_err(|e| format!("{path}: {e}"))?;
    print_sites(&p);
    Ok(())
}

/// `swifi inject FILE --fault N [--int N]... [--line S] [--seed N]`
pub fn inject(parsed: &ParsedArgs) -> CmdResult {
    let (path, src) = read_source(parsed)?;
    let p = compile(&src).map_err(|e| format!("{path}: {e}"))?;
    let seed = parsed.int_opt("seed", 42)? as u64;
    let set = generate_error_set(&p.debug, usize::MAX, usize::MAX, seed);
    let faults: Vec<_> = set.assign_faults.iter().chain(&set.check_faults).collect();
    if faults.is_empty() {
        return Err("the program has no fault locations".to_string());
    }
    let n = parsed.int_opt("fault", -1)?;
    if n < 0 {
        println!(
            "{} generated faults; pick one with --fault N:",
            faults.len()
        );
        for (i, f) in faults.iter().enumerate() {
            println!(
                "  {i:<4} {:<10} line {:<4} {:<12} @ {:#010x}",
                f.error.label(),
                f.line,
                f.func,
                f.site_addr
            );
        }
        return Ok(());
    }
    let fault = faults
        .get(n as usize)
        .ok_or_else(|| format!("--fault {n} out of range (0..{})", faults.len()))?;
    println!(
        "injecting `{}` (line {}, {}) ...",
        fault.error.label(),
        fault.line,
        fault.func
    );
    let mut inj =
        Injector::new(vec![fault.spec], TriggerMode::Hardware, seed).map_err(|e| e.to_string())?;
    let mut m = Machine::new(MachineConfig::default());
    m.load(&p.image);
    m.set_input(input_from_args(parsed)?);
    inj.prepare(&mut m).map_err(|e| e.to_string())?;
    let out = m.run(&mut inj);
    report_outcome(out);
    println!("[fault fired: {}]", inj.any_fired());
    Ok(())
}

/// `swifi emulate NAME`
pub fn emulate(parsed: &ParsedArgs) -> CmdResult {
    let name = parsed
        .positional
        .first()
        .ok_or_else(|| "expected a roster program name".to_string())?;
    let p = program(name).ok_or_else(|| format!("unknown program `{name}` (see `swifi list`)"))?;
    let faulty_src = p
        .source_faulty
        .ok_or_else(|| format!("{name} has no recorded real fault"))?;
    let fault = p.real_fault.expect("faulty implies fault");
    println!(
        "{name}: {} fault — {}",
        fault.defect_type, fault.description
    );
    let corrected = compile(p.source_correct).map_err(|e| e.to_string())?;
    let faulty = compile(faulty_src).map_err(|e| e.to_string())?;
    match plan_emulation(&corrected.image, &faulty.image) {
        EmulationVerdict::Identical => println!("binaries are identical"),
        EmulationVerdict::Emulable { diffs } => {
            println!(
                "class A: emulable with hardware triggers ({} differing word(s))",
                diffs.len()
            );
            for d in diffs {
                println!(
                    "  {:#010x}: {:#010x} -> {:#010x}",
                    d.addr, d.corrected, d.faulty
                );
            }
        }
        EmulationVerdict::BreakpointBudgetExceeded {
            diffs,
            required_triggers,
        } => {
            println!(
                "class B: needs {required_triggers} triggers for {} diffs — beyond the 2 \
                 hardware breakpoint registers; intrusive traps required",
                diffs.len()
            );
        }
        EmulationVerdict::NotEmulable {
            corrected_len,
            faulty_len,
        } => {
            println!(
                "class C: structural change ({faulty_len} -> {corrected_len} instructions); \
                 not emulable by any SWIFI tool"
            );
        }
    }
    Ok(())
}

/// Parse the robustness options shared by every campaign-style command
/// (`--checkpoint/--resume`, `--watchdog-ms`, `--watchdog-poll`,
/// `--chaos-panic`, `--no-prefix-fork`, `--no-block-cache`, `--no-prune`,
/// `--prune-sample`).
fn campaign_opts(parsed: &ParsedArgs) -> Result<CampaignOptions, String> {
    let mut opts = CampaignOptions {
        checkpoint: parsed.value_opt("checkpoint")?.map(Into::into),
        resume: parsed.flag("resume"),
        no_prefix_fork: parsed.flag("no-prefix-fork"),
        no_block_cache: parsed.flag("no-block-cache"),
        no_prune: parsed.flag("no-prune"),
        ..CampaignOptions::default()
    };
    if let Some(pct) = parsed.positive_int_opt("prune-sample")? {
        if pct > 100 {
            return Err("--prune-sample takes a percentage (0-100)".to_string());
        }
        opts.prune_sample = pct as u32;
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err("--resume requires --checkpoint FILE".to_string());
    }
    if let Some(watchdog_ms) = parsed.positive_int_opt("watchdog-ms")? {
        opts.watchdog = Some(std::time::Duration::from_millis(watchdog_ms as u64));
    }
    if let Some(watchdog_poll) = parsed.positive_int_opt("watchdog-poll")? {
        opts.watchdog_poll = Some(watchdog_poll as u32);
    }
    if parsed.flag("chaos-panic") {
        opts.chaos_panic = Some(parsed.int_opt("chaos-panic", 0)? as u64);
    }
    Ok(opts)
}

/// The telemetry flags of the campaign commands plus the hub they
/// configure (`None` when every pillar is off — the no-op contract).
struct TelemetrySink {
    hub: Option<Arc<Telemetry>>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    profile: bool,
    profile_out: Option<String>,
}

/// Parse `--trace-out F`, `--metrics-out F`, `--profile`,
/// `--profile-out F`, `--profile-every N`.
fn telemetry_opts(parsed: &ParsedArgs) -> Result<TelemetrySink, String> {
    let trace_out = parsed.value_opt("trace-out")?.map(str::to_string);
    let metrics_out = parsed.value_opt("metrics-out")?.map(str::to_string);
    let profile_out = parsed.value_opt("profile-out")?.map(str::to_string);
    let profile = parsed.flag("profile") || profile_out.is_some();
    let config = TelemetryConfig {
        trace: trace_out.is_some(),
        metrics: metrics_out.is_some(),
        profile,
        profile_every: parsed
            .positive_int_opt("profile-every")?
            .unwrap_or(DEFAULT_SAMPLE_EVERY as i64) as u32,
    };
    Ok(TelemetrySink {
        hub: config.any().then(|| Telemetry::shared(config)),
        trace_out,
        metrics_out,
        profile,
        profile_out,
    })
}

/// Export the collected telemetry after a campaign: campaign-level
/// gauges, the Chrome trace, the metrics JSON, and the attributed guest
/// profile.
fn export_telemetry(
    sink: &TelemetrySink,
    target: &swifi_programs::TargetProgram,
    tp: &Throughput,
) -> CmdResult {
    let Some(hub) = sink.hub.as_ref() else {
        return Ok(());
    };
    if hub.config().metrics {
        let injected = tp.fired_runs + tp.dormant_runs;
        let prefix_rate = if injected > 0 {
            (tp.prefix_fork_hits + tp.prefix_dormant_short_circuits) as f64 / injected as f64
        } else {
            0.0
        };
        let dispatches = tp.block_hits + tp.block_fallbacks;
        let block_rate = if dispatches > 0 {
            tp.block_hits as f64 / dispatches as f64
        } else {
            0.0
        };
        hub.with_metrics(|m| {
            m.gauge_set(metric_names::PREFIX_HIT_RATE, prefix_rate);
            m.gauge_set(metric_names::BLOCK_CACHE_HIT_RATE, block_rate);
        });
    }
    if let Some(path) = &sink.trace_out {
        hub.write_chrome_trace(std::path::Path::new(path))?;
        println!(
            "trace: {} events written to {path} (load in Perfetto / chrome://tracing)",
            hub.event_count()
        );
    }
    if let Some(path) = &sink.metrics_out {
        std::fs::write(path, hub.metrics_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics: written to {path}");
    }
    if sink.profile {
        let compiled = compile(target.source_correct).map_err(|e| e.to_string())?;
        let funcs: Vec<FuncRange> = compiled
            .debug
            .functions
            .iter()
            .map(|f| FuncRange {
                name: f.name.clone(),
                start: f.start_addr,
                // FunctionInfo.end_addr is one past the last instruction;
                // FuncRange.end is inclusive.
                end: f.end_addr.saturating_sub(1).max(f.start_addr),
            })
            .collect();
        let hist = hub.profile_snapshot();
        let rows = attribute(&hist, &funcs);
        println!(
            "profile: {} samples over {} guest PCs",
            hist.total(),
            hist.distinct_pcs()
        );
        print!("{}", top_table(&rows, 10));
        if let Some(path) = &sink.profile_out {
            std::fs::write(path, collapsed_stacks(target.name, &rows))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("profile: collapsed stacks written to {path}");
        }
    }
    Ok(())
}

/// `swifi trace-validate FILE`
pub fn trace_validate_cmd(parsed: &ParsedArgs) -> CmdResult {
    let path = parsed
        .positional
        .first()
        .ok_or_else(|| "expected a trace file (from --trace-out)".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let s = validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: OK — {} events ({} spans, {} instants), {} phase span(s), {} run span(s), {} lane(s)",
        s.events, s.spans, s.instants, s.phases, s.runs, s.lanes
    );
    Ok(())
}

/// `swifi campaign NAME [--inputs N] [--seed N] [--checkpoint F [--resume]]
/// [--watchdog-ms N] [--chaos-panic N] [--no-prefix-fork] [--no-block-cache]
/// [--no-prune] [--prune-sample N]`
pub fn campaign(parsed: &ParsedArgs) -> CmdResult {
    let name = parsed
        .positional
        .first()
        .ok_or_else(|| "expected a roster program name".to_string())?;
    let target =
        program(name).ok_or_else(|| format!("unknown program `{name}` (see `swifi list`)"))?;
    let inputs = parsed.int_opt("inputs", 10)? as usize;
    let seed = parsed.int_opt("seed", 2024)? as u64;
    let sink = telemetry_opts(parsed)?;
    let mut opts = campaign_opts(parsed)?;
    opts.telemetry = sink.hub.clone();
    println!("campaign on {name} ({inputs} inputs per fault, seed {seed})...");
    let c = class_campaign_with(
        &target,
        CampaignScale {
            inputs_per_fault: inputs.max(1),
        },
        seed,
        &opts,
    )?;
    // The server's `submit` reply renders through the same function, so
    // sharded and single-process reports stay byte-comparable.
    print!("{}", class_campaign_report(&c));
    export_telemetry(&sink, &target, &c.throughput)?;
    Ok(())
}

/// `swifi mutants FILE|NAME [--op ID] [--source N]`
///
/// Lists the G-SWFIT mutant catalogue of a program; `--op` filters to one
/// operator, `--source N` prints the N-th mutant's full source.
pub fn mutants_cmd(parsed: &ParsedArgs) -> CmdResult {
    let (path, src) = read_source(parsed)?;
    let p = compile(&src).map_err(|e| format!("{path}: {e}"))?;
    let all = match parsed.value_opt("op")? {
        None => swifi_lang::mutate::mutants(&p.ast),
        Some(id) => {
            let op = swifi_odc::MutationOperator::from_id(id)
                .ok_or_else(|| format!("unknown operator `{id}` (MIF WBC MAS OBB WCV MFC WCA)"))?;
            swifi_lang::mutate::mutants_for(&p.ast, op)
        }
    };
    if let Some(n) = parsed.value_opt("source")? {
        let n: usize = n
            .parse()
            .map_err(|_| format!("--source expects an index, got `{n}`"))?;
        let m = all
            .get(n)
            .ok_or_else(|| format!("--source {n} out of range (0..{})", all.len()))?;
        print!("{}", m.source);
        return Ok(());
    }
    println!("{} mutant(s):", all.len());
    for (i, m) in all.iter().enumerate() {
        println!(
            "  {i:<4} {:<24} {:<10} {}",
            m.id,
            m.operator.defect_type().to_string(),
            m.description
        );
    }
    Ok(())
}

/// `swifi source-campaign NAME [--mutants N] [--inputs N] [--seed N]
/// [--checkpoint F [--resume]] [--watchdog-ms N] [--chaos-panic N]`
pub fn source_campaign_cmd(parsed: &ParsedArgs) -> CmdResult {
    let name = parsed
        .positional
        .first()
        .ok_or_else(|| "expected a roster program name".to_string())?;
    let target =
        program(name).ok_or_else(|| format!("unknown program `{name}` (see `swifi list`)"))?;
    let scale = SourceScale {
        mutant_budget: parsed.int_opt("mutants", 18)?.max(1) as usize,
        inputs_per_mutant: parsed.int_opt("inputs", 6)?.max(1) as usize,
    };
    let seed = parsed.int_opt("seed", 2024)? as u64;
    let sink = telemetry_opts(parsed)?;
    let mut opts = campaign_opts(parsed)?;
    opts.telemetry = sink.hub.clone();
    println!(
        "source-mutation campaign on {name} ({} mutants, {} inputs per mutant, seed {seed})...",
        scale.mutant_budget, scale.inputs_per_mutant
    );
    let c = source_campaign_with(&target, scale, seed, &opts)?;
    print!("{}", source_campaign_report(&c));
    export_telemetry(&sink, &target, &c.throughput)?;
    Ok(())
}

/// `swifi compare-representations [--inputs N] [--mutants N] [--seed N]
/// [--checkpoint F [--resume]] [--watchdog-ms N]`
pub fn compare_cmd(parsed: &ParsedArgs) -> CmdResult {
    let binary_scale = CampaignScale {
        inputs_per_fault: parsed.int_opt("inputs", 6)?.max(1) as usize,
    };
    let source_scale = SourceScale {
        mutant_budget: parsed.int_opt("mutants", 18)?.max(1) as usize,
        inputs_per_mutant: binary_scale.inputs_per_fault,
    };
    let seed = parsed.int_opt("seed", 2024)? as u64;
    let opts = campaign_opts(parsed)?;
    println!(
        "comparing binary vs source injection ({} inputs, {} mutants, seed {seed})...",
        binary_scale.inputs_per_fault, source_scale.mutant_budget
    );
    let c = compare_representations_with(binary_scale, source_scale, seed, &opts)?;
    print!("{}", comparison_table(&c));
    Ok(())
}

/// `swifi metrics FILE|NAME`
pub fn metrics_cmd(parsed: &ParsedArgs) -> CmdResult {
    let (path, src) = read_source(parsed)?;
    let ast = swifi_lang::parser::parse(&src).map_err(|e| format!("{path}: {e}"))?;
    let m = swifi_metrics::measure(&src, &ast);
    println!(
        "{path}: {} LoC, {} globals, {} structs",
        m.loc, m.globals, m.structs
    );
    let rows: Vec<Vec<String>> = m
        .functions
        .iter()
        .map(|f| {
            vec![
                f.name.clone(),
                f.cyclomatic.to_string(),
                f.statements.to_string(),
                f.max_nesting.to_string(),
                format!("{:.0}", f.halstead.volume()),
                format!("{:.1}", f.proneness()),
                if f.recursive { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "Function",
                "Cyclo",
                "Stmts",
                "Nesting",
                "Volume",
                "Proneness",
                "Recursive"
            ],
            &rows
        )
    );
    Ok(())
}

/// Parse the shared submit/shard-exec campaign description flags into a
/// server [`CampaignRequest`].
fn campaign_request(parsed: &ParsedArgs, target: &str) -> Result<CampaignRequest, String> {
    Ok(CampaignRequest {
        driver: if parsed.flag("source") || parsed.opt("driver") == Some("source") {
            Driver::Source
        } else {
            Driver::Class
        },
        target: target.to_string(),
        seed: parsed.int_opt("seed", 2024)? as u64,
        inputs: parsed.positive_int_opt("inputs")?.unwrap_or(10) as usize,
        mutants: parsed.positive_int_opt("mutants")?.unwrap_or(18) as usize,
        shards: parsed.positive_int_opt("shards")?.unwrap_or(4) as u64,
        pool: parsed.positive_int_opt("pool")?.unwrap_or(4) as usize,
        want_trace: parsed.value_opt("trace-out")?.is_some(),
        want_metrics: parsed.value_opt("metrics-out")?.is_some(),
    })
}

/// `swifi serve [--addr A] [--workdir D] [--in-process]`
pub fn serve_cmd(parsed: &ParsedArgs) -> CmdResult {
    let addr = parsed.value_opt("addr")?.unwrap_or("127.0.0.1:0");
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let actual = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let workdir = match parsed.value_opt("workdir")? {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("swifi-serve-{}", std::process::id())),
    };
    let mode = if parsed.flag("in-process") {
        WorkerMode::InProcess
    } else {
        swifi_server::current_exe_mode()?
    };
    // `serving on ADDR` is the startup handshake scripts parse to learn
    // the picked port — print it before blocking in the accept loop.
    println!("serving on {actual}");
    use std::io::Write;
    std::io::stdout().flush().ok();
    swifi_server::serve(listener, JobConfig { workdir, mode })
}

/// `swifi submit NAME --addr A [--source] [--seed N] [--inputs N]
/// [--mutants N] [--shards N] [--pool N] [--trace-out F] [--metrics-out F]`,
/// plus `swifi submit --ping|--shutdown --addr A`.
///
/// Progress events stream to stderr; the report — byte-identical to the
/// single-process `campaign` / `source-campaign` output — goes to
/// stdout, so `swifi submit ... > report.txt` composes with the same
/// tooling as the local commands.
pub fn submit_cmd(parsed: &ParsedArgs) -> CmdResult {
    let addr = parsed
        .value_opt("addr")?
        .ok_or("--addr HOST:PORT is required (printed by `swifi serve`)")?;
    if parsed.flag("ping") {
        swifi_server::request(addr, &Request::Ping, |_| {})?;
        println!("pong from {addr}");
        return Ok(());
    }
    if parsed.flag("shutdown") {
        swifi_server::request(addr, &Request::Shutdown, |_| {})?;
        println!("server at {addr} shut down");
        return Ok(());
    }
    let name = parsed
        .positional
        .first()
        .ok_or_else(|| "expected a roster program name".to_string())?;
    let req = campaign_request(parsed, name)?;
    let trace_out = parsed.value_opt("trace-out")?.map(str::to_string);
    let metrics_out = parsed.value_opt("metrics-out")?.map(str::to_string);
    let mut failure: Option<String> = None;
    swifi_server::request(addr, &Request::Submit(req), |event| match event {
        Event::Accepted { campaign, shards } => {
            eprintln!("accepted: {campaign}, {shards} shard(s)");
        }
        Event::ShardStart { shard } => eprintln!("shard {shard}: started"),
        Event::ShardDone {
            shard, ok: true, ..
        } => eprintln!("shard {shard}: done"),
        Event::ShardDone {
            shard,
            ok: false,
            detail,
        } => eprintln!("shard {shard}: FAILED ({detail}) — merge pass will re-run its slice"),
        Event::Merged {
            shards_read,
            shards_missing,
            records,
            duplicates,
        } => eprintln!(
            "merged: {records} record(s) from {shards_read} shard(s) \
             ({shards_missing} missing, {duplicates} duplicate(s))"
        ),
        Event::Phase { name, runs } => eprintln!("phase {name}: {runs} run(s)"),
        Event::Abnormal {
            phase,
            index,
            message,
            detail,
        } => eprintln!("abnormal: {phase}#{index} — {message} ({detail})"),
        Event::Report { text } => print!("{text}"),
        Event::Metrics { text } => {
            if let Some(path) = &metrics_out {
                match std::fs::write(path, text) {
                    Ok(()) => println!("metrics: written to {path}"),
                    Err(e) => failure = Some(format!("cannot write {path}: {e}")),
                }
            }
        }
        Event::Trace { text } => {
            if let Some(path) = &trace_out {
                match std::fs::write(path, text) {
                    Ok(()) => println!("trace: written to {path}"),
                    Err(e) => failure = Some(format!("cannot write {path}: {e}")),
                }
            }
        }
        Event::Done | Event::Error { .. } | Event::Pong => {}
    })?;
    failure.map_or(Ok(()), Err)
}

/// `swifi shard-exec --driver D --target NAME --seed N --inputs N
/// --mutants N --shard K --shards N --checkpoint F
/// [--metrics-out F] [--trace-out F]` — hidden worker-process entry
/// point; `swifi serve` re-executes its own binary with these flags,
/// one process per shard.
pub fn shard_exec_cmd(parsed: &ParsedArgs) -> CmdResult {
    let target = parsed
        .value_opt("target")?
        .ok_or("--target NAME is required")?
        .to_string();
    let req = campaign_request(parsed, &target)?;
    let shard = swifi_campaign::Shard::new(
        parsed.int_opt("shard", 0)? as u64,
        parsed.positive_int_opt("shards")?.unwrap_or(1) as u64,
    )?;
    let checkpoint = parsed
        .value_opt("checkpoint")?
        .ok_or("--checkpoint FILE is required")?
        .to_string();
    // want_* is derived from the -out flags by campaign_request; the
    // paths themselves say where this worker writes its snapshots.
    let metrics_out = parsed
        .value_opt("metrics-out")?
        .map(std::path::PathBuf::from);
    let trace_out = parsed.value_opt("trace-out")?.map(std::path::PathBuf::from);
    swifi_server::shard_exec(
        &req,
        shard,
        std::path::Path::new(&checkpoint),
        metrics_out.as_deref(),
        trace_out.as_deref(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_succeeds() {
        assert!(list().is_ok());
    }

    #[test]
    fn roster_names_resolve_as_sources() {
        let parsed = ParsedArgs::parse(["compile".into(), "C.team8".into()]);
        assert!(compile_cmd(&parsed).is_ok());
    }

    #[test]
    fn unknown_file_errors() {
        let parsed = ParsedArgs::parse(["compile".into(), "/no/such/file.mc".into()]);
        assert!(compile_cmd(&parsed).is_err());
    }

    #[test]
    fn emulate_runs_for_faulty_programs() {
        let parsed = ParsedArgs::parse(["emulate".into(), "C.team4".into()]);
        assert!(emulate(&parsed).is_ok());
        let parsed = ParsedArgs::parse(["emulate".into(), "C.team8".into()]);
        assert!(emulate(&parsed).is_err(), "C.team8 has no real fault");
    }

    #[test]
    fn inject_lists_faults_without_selection() {
        let parsed = ParsedArgs::parse(["inject".into(), "JB.team11".into()]);
        assert!(inject(&parsed).is_ok());
    }

    #[test]
    fn metrics_on_roster_program() {
        let parsed = ParsedArgs::parse(["metrics".into(), "SOR".into()]);
        assert!(metrics_cmd(&parsed).is_ok());
    }

    #[test]
    fn mutants_lists_and_prints_source() {
        let parsed = ParsedArgs::parse(["mutants".into(), "JB.team11".into()]);
        assert!(mutants_cmd(&parsed).is_ok());
        let parsed = ParsedArgs::parse([
            "mutants".into(),
            "JB.team11".into(),
            "--op".into(),
            "WBC".into(),
            "--source".into(),
            "0".into(),
        ]);
        assert!(mutants_cmd(&parsed).is_ok());
        let parsed = ParsedArgs::parse([
            "mutants".into(),
            "JB.team11".into(),
            "--op".into(),
            "NOPE".into(),
        ]);
        assert!(mutants_cmd(&parsed).is_err());
    }

    #[test]
    fn source_campaign_runs_small() {
        let parsed = ParsedArgs::parse([
            "source-campaign".into(),
            "JB.team11".into(),
            "--mutants".into(),
            "4".into(),
            "--inputs".into(),
            "2".into(),
            "--seed".into(),
            "7".into(),
        ]);
        assert!(source_campaign_cmd(&parsed).is_ok());
    }

    #[test]
    fn submit_requires_an_address() {
        let parsed = ParsedArgs::parse(["submit".into(), "SOR".into()]);
        assert!(submit_cmd(&parsed).unwrap_err().contains("--addr"));
    }

    #[test]
    fn shard_exec_validates_its_flags() {
        let parsed = ParsedArgs::parse(["shard-exec".into()]);
        assert!(shard_exec_cmd(&parsed).unwrap_err().contains("--target"));
        let parsed = ParsedArgs::parse([
            "shard-exec".into(),
            "--target".into(),
            "SOR".into(),
            "--shard".into(),
            "5".into(),
            "--shards".into(),
            "3".into(),
        ]);
        let err = shard_exec_cmd(&parsed).unwrap_err();
        assert!(err.contains("shard index 5 out of range"), "{err}");
    }

    #[test]
    fn campaign_request_maps_flags() {
        let parsed = ParsedArgs::parse([
            "submit".into(),
            "SOR".into(),
            "--source".into(),
            "--seed".into(),
            "7".into(),
            "--shards".into(),
            "3".into(),
            "--metrics-out".into(),
            "m.json".into(),
        ]);
        let req = campaign_request(&parsed, "SOR").unwrap();
        assert_eq!(req.driver, Driver::Source);
        assert_eq!((req.seed, req.shards), (7, 3));
        assert!(req.want_metrics && !req.want_trace);
    }

    #[test]
    fn resume_requires_checkpoint_everywhere() {
        for cmd in ["campaign", "source-campaign"] {
            let parsed = ParsedArgs::parse([cmd.into(), "JB.team11".into(), "--resume".into()]);
            let run = match cmd {
                "campaign" => campaign(&parsed),
                _ => source_campaign_cmd(&parsed),
            };
            assert!(run.unwrap_err().contains("--checkpoint"), "{cmd}");
        }
    }
}
