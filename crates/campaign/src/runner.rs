//! Single-run execution and failure-mode classification.
//!
//! One *run* = one clean-booted machine ("the target system is rebooted
//! between injections to assure a clean state"), one input data set, and
//! at most one injected fault. The outcome is classified into the paper's
//! four failure modes (§6.2).
//!
//! [`execute`] is the cold-boot convenience entry point: it builds a
//! one-shot [`crate::session::RunSession`] per call. Campaign drivers
//! that execute thousands of runs hold a long-lived session per worker
//! instead (the warm-reboot engine) and get identical results faster.

use serde::{Deserialize, Serialize};
use swifi_core::fault::FaultSpec;
use swifi_lang::Program;
use swifi_programs::input::TestInput;
use swifi_vm::machine::{MachineConfig, RunOutcome};

use crate::session::RunSession;

/// The paper's failure modes (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// Program terminated normally and the output is correct.
    Correct,
    /// Program terminated normally but the output is incorrect.
    Incorrect,
    /// Program hung (dead loop); killed on timeout.
    Hang,
    /// Program terminated abnormally with a system-detected error.
    Crash,
}

impl FailureMode {
    /// All four modes in the paper's presentation order.
    pub const ALL: [FailureMode; 4] = [
        FailureMode::Correct,
        FailureMode::Incorrect,
        FailureMode::Hang,
        FailureMode::Crash,
    ];

    /// Table/figure label.
    pub fn label(self) -> &'static str {
        match self {
            FailureMode::Correct => "Correct",
            FailureMode::Incorrect => "Incorrect",
            FailureMode::Hang => "Hang",
            FailureMode::Crash => "Crash",
        }
    }
}

/// Failure-mode counts with helpers for percentage reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeCounts {
    /// Runs with correct results.
    pub correct: u64,
    /// Runs with incorrect results.
    pub incorrect: u64,
    /// Hangs.
    pub hang: u64,
    /// Crashes.
    pub crash: u64,
}

impl ModeCounts {
    /// Record one outcome.
    pub fn add(&mut self, mode: FailureMode) {
        match mode {
            FailureMode::Correct => self.correct += 1,
            FailureMode::Incorrect => self.incorrect += 1,
            FailureMode::Hang => self.hang += 1,
            FailureMode::Crash => self.crash += 1,
        }
    }

    /// Total runs.
    pub fn total(&self) -> u64 {
        self.correct + self.incorrect + self.hang + self.crash
    }

    /// Percentage of a mode (0 when empty).
    pub fn pct(&self, mode: FailureMode) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let n = match mode {
            FailureMode::Correct => self.correct,
            FailureMode::Incorrect => self.incorrect,
            FailureMode::Hang => self.hang,
            FailureMode::Crash => self.crash,
        };
        n as f64 * 100.0 / t as f64
    }

    /// Merge another count set in.
    pub fn merge(&mut self, other: &ModeCounts) {
        self.correct += other.correct;
        self.incorrect += other.incorrect;
        self.hang += other.hang;
        self.crash += other.crash;
    }
}

/// Machine sizing for campaign runs — smaller than the default so that
/// per-run zeroing cost stays low across tens of thousands of runs.
pub fn campaign_config(family: swifi_programs::Family) -> MachineConfig {
    MachineConfig {
        mem_size: 512 << 10,
        num_cores: family.cores(),
        stack_size: 48 << 10,
        budget: family.run_budget(),
        output_limit: 1 << 18,
        quantum: 64,
    }
}

/// Classify one raw [`RunOutcome`] against the oracle's expected output.
///
/// Abnormal exit codes count as crashes (system-detected error), matching
/// the paper's observables.
pub fn classify_outcome(outcome: &RunOutcome, expected: &[u8]) -> FailureMode {
    match outcome {
        RunOutcome::Completed {
            exit_code: 0,
            output,
        } => {
            if output.as_slice() == expected {
                FailureMode::Correct
            } else {
                FailureMode::Incorrect
            }
        }
        RunOutcome::Completed { .. } => FailureMode::Crash,
        RunOutcome::Trapped { .. } => FailureMode::Crash,
        RunOutcome::Hang { .. } => FailureMode::Hang,
    }
}

/// Execute one cold-boot run of a compiled program on `input`, optionally
/// with one injected fault, and classify the outcome.
///
/// Returns the failure mode and whether the fault actually fired
/// (injected runs only; fault-free runs report `false`).
///
/// This is a thin wrapper over a one-shot [`RunSession`]; the session's
/// warm-reboot path is observably identical (a tested invariant), so
/// campaign code uses long-lived sessions instead.
pub fn execute(
    program: &Program,
    family: swifi_programs::Family,
    input: &TestInput,
    fault: Option<&FaultSpec>,
    seed: u64,
) -> (FailureMode, bool) {
    RunSession::new(program, family).run(input, fault, seed)
}

/// The pre-session cold-boot lifecycle, kept as the benchmark baseline for
/// the warm-reboot engine: a fresh machine (zeroing all guest memory), a
/// fresh image load, a freshly compiled injector for every single run, the
/// injector's exhaustive reference dispatch (no hot-path filters), and the
/// seed decode-every-fetch reference interpreter (no translation cache).
///
/// Observably identical to [`execute`] (same classification, same fired
/// flag) — just slower, which is the point of keeping it around.
pub fn execute_cold(
    program: &Program,
    family: swifi_programs::Family,
    input: &TestInput,
    fault: Option<&FaultSpec>,
    seed: u64,
) -> (FailureMode, bool) {
    use swifi_core::injector::{Injector, TriggerMode};
    use swifi_vm::machine::Machine;
    use swifi_vm::Noop;

    let mut machine = Machine::new(campaign_config(family));
    machine.set_reference_interp(true);
    machine.load(&program.image);
    machine.set_input(input.to_tape());
    let expected = input.expected_output();
    match fault {
        None => (classify_outcome(&machine.run(&mut Noop), &expected), false),
        Some(spec) => {
            let mut injector = Injector::new(vec![*spec], TriggerMode::Hardware, seed)
                .expect("a single fault fits the hardware trigger budget");
            injector.set_reference_dispatch(true);
            injector
                .prepare(&mut machine)
                .expect("fault addresses lie in mapped memory");
            let outcome = machine.run(&mut injector);
            (classify_outcome(&outcome, &expected), injector.any_fired())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_lang::compile;
    use swifi_programs::Family;

    #[test]
    fn mode_counts_accumulate_and_percentage() {
        let mut c = ModeCounts::default();
        for m in [
            FailureMode::Correct,
            FailureMode::Correct,
            FailureMode::Crash,
        ] {
            c.add(m);
        }
        assert_eq!(c.total(), 3);
        assert!((c.pct(FailureMode::Correct) - 66.666).abs() < 0.01);
        assert_eq!(c.pct(FailureMode::Hang), 0.0);
        let mut d = ModeCounts::default();
        d.add(FailureMode::Hang);
        c.merge(&d);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn clean_run_classifies_correct() {
        let p = swifi_programs::program("JB.team11").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let input = TestInput::JamesB {
            seed: 5,
            line: b"hello".to_vec(),
        };
        let (mode, fired) = execute(&compiled, Family::JamesB, &input, None, 0);
        assert_eq!(mode, FailureMode::Correct);
        assert!(!fired);
    }

    #[test]
    fn cold_baseline_matches_session_execute() {
        use swifi_core::locations::generate_error_set;
        let p = swifi_programs::program("JB.team11").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let input = TestInput::JamesB {
            seed: 2,
            line: b"baseline".to_vec(),
        };
        let set = generate_error_set(&compiled.debug, 3, 3, 17);
        for (i, f) in set
            .assign_faults
            .iter()
            .chain(&set.check_faults)
            .enumerate()
        {
            let a = execute(&compiled, Family::JamesB, &input, Some(&f.spec), i as u64);
            let b = execute_cold(&compiled, Family::JamesB, &input, Some(&f.spec), i as u64);
            assert_eq!(a, b, "fault {i}");
        }
        let a = execute(&compiled, Family::JamesB, &input, None, 0);
        let b = execute_cold(&compiled, Family::JamesB, &input, None, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn injected_check_fault_flips_outcome() {
        use swifi_core::locations::generate_error_set;
        let p = swifi_programs::program("JB.team6").unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let input = TestInput::JamesB {
            seed: 5,
            line: b"hello world".to_vec(),
        };
        let set = generate_error_set(&compiled.debug, 8, 8, 3);
        // At least one generated fault must change the outcome.
        let mut any_noncorrect = false;
        for f in set.assign_faults.iter().chain(&set.check_faults) {
            let (mode, _) = execute(&compiled, Family::JamesB, &input, Some(&f.spec), 1);
            if mode != FailureMode::Correct {
                any_noncorrect = true;
                break;
            }
        }
        assert!(any_noncorrect);
    }
}
