//! Class-based fault-injection campaigns (paper §6, Tables 2 & 4,
//! Figures 7–10).
//!
//! For every Table-2 target program: enumerate all assignment/checking
//! locations, choose a random subset (the paper's per-program counts),
//! generate every applicable Table-3 error type per location, and run the
//! family's shared random test case with exactly one fault per run,
//! rebooting between runs. Outcomes aggregate into failure-mode profiles
//! per program (Figures 7–8) and per error type (Figures 9–10).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use swifi_core::locations::{choose_locations, ErrorClass, GeneratedFault, LocationPlan};
use swifi_core::source::{BinarySwifiSource, FaultSource, PreparedFault};
use swifi_lang::compile;
use swifi_odc::{AssignErrorType, CheckErrorType};
use swifi_programs::{all_programs, TargetProgram};
use swifi_trace::event::{arg_str, arg_u64};
use swifi_trace::{Telemetry, TraceEvent, ENGINE_TID};

use crate::engine::{
    split_records, AbnormalRun, CampaignEngine, CampaignOptions, CheckpointHeader, PhaseTime,
};
use crate::prefix::{watch_pcs_of, PrefixCache};
use crate::runner::ModeCounts;
use crate::session::{RunSession, Throughput};

/// Campaign sizing. The paper used 300 inputs per fault and hand-picked
/// location counts; [`CampaignScale::paper`] reproduces those counts,
/// [`CampaignScale::reduced`] keeps wall-clock reasonable (the
/// distributions converge long before 300 samples per cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignScale {
    /// Runs per generated fault (the shared test case size).
    pub inputs_per_fault: usize,
}

impl CampaignScale {
    /// The paper's scale (300 inputs per fault — hours of wall clock).
    pub fn paper() -> CampaignScale {
        CampaignScale {
            inputs_per_fault: 300,
        }
    }

    /// The default reproduction scale (kept small so the whole harness
    /// finishes in minutes on a laptop; the recorded EXPERIMENTS.md run
    /// used 25).
    pub fn reduced() -> CampaignScale {
        CampaignScale {
            inputs_per_fault: 12,
        }
    }

    /// Honour the `REPRO_FULL` environment variable.
    pub fn from_env() -> CampaignScale {
        if std::env::var_os("REPRO_FULL").is_some() {
            CampaignScale::paper()
        } else {
            CampaignScale::reduced()
        }
    }
}

/// The paper's Table 4 "chosen locations" counts, mapped onto our roster.
pub fn chosen_locations(name: &str) -> (usize, usize) {
    match name {
        "C.team1" => (8, 8),
        "C.team2" => (5, 6),
        "C.team8" => (8, 9),
        "C.team9" => (9, 9),
        "C.team10" => (9, 8),
        "JB.team6" => (5, 5),
        "JB.team11" => (5, 5),
        "SOR" => (12, 12),
        _ => (5, 5),
    }
}

/// Campaign results for one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramCampaign {
    /// Program name.
    pub program: String,
    /// Location selection (the program's Table 4 row).
    pub plan: LocationPlan,
    /// Generated assignment faults (locations × applicable types).
    pub assign_fault_count: usize,
    /// Generated checking faults.
    pub check_fault_count: usize,
    /// Failure modes over all assignment-fault runs (Figure 7 column).
    pub assign_modes: ModeCounts,
    /// Failure modes over all checking-fault runs (Figure 8 column).
    pub check_modes: ModeCounts,
    /// Failure modes per assignment error type (Figure 9 contribution).
    pub by_assign_type: BTreeMap<AssignErrorType, ModeCounts>,
    /// Failure modes per checking error type (Figure 10 contribution).
    pub by_check_type: BTreeMap<CheckErrorType, ModeCounts>,
    /// Runs in which the injected fault never fired (dormant faults).
    pub dormant_runs: u64,
    /// Total injected-fault runs.
    pub total_runs: u64,
    /// Run-engine throughput for the whole campaign (equality ignores
    /// wall-clock; see [`Throughput`]). Run counts are folded from the
    /// per-fault records, so a resumed campaign reports the same totals
    /// as an uninterrupted one.
    pub throughput: Throughput,
    /// Per-phase wall clock (equality ignores the elapsed component; see
    /// [`PhaseTime`]).
    pub phase_times: Vec<PhaseTime>,
    /// Work items that panicked out of the harness — the paper's
    /// "abnormal outcome" bucket. The campaign completes around them.
    pub abnormal: Vec<AbnormalRun>,
}

impl ProgramCampaign {
    /// Total injected faults (Table 4 "Injected faults" ×2 columns).
    pub fn injected_assign(&self) -> u64 {
        self.assign_modes.total()
    }

    /// Total injected checking faults.
    pub fn injected_check(&self) -> u64 {
        self.check_modes.total()
    }
}

/// Run the class campaign for one program.
///
/// # Panics
///
/// Panics if the program's corrected source fails to compile (programs are
/// vendored; this is a build error, not an input error).
pub fn class_campaign(target: &TargetProgram, scale: CampaignScale, seed: u64) -> ProgramCampaign {
    class_campaign_with(target, scale, seed, &CampaignOptions::default())
        .expect("no checkpoint configured")
}

/// Run the class campaign for one program under explicit robustness
/// options: checkpoint/resume, per-run watchdog, chaos injection.
///
/// Each fault is one work item; a fault whose runs panic the harness is
/// recorded as [`AbnormalRun`] and the campaign continues. With
/// [`CampaignOptions::checkpoint`] set, every completed fault appends to
/// the JSONL checkpoint as it finishes, and with `resume` the recorded
/// faults replay from disk instead of re-running — the resumed campaign
/// compares equal (per the seed-determinism [`Throughput`]/report
/// equality) to an uninterrupted one.
///
/// # Errors
///
/// Checkpoint I/O failures and header/record corruption.
///
/// # Panics
///
/// Panics if the program's corrected source fails to compile.
pub fn class_campaign_with(
    target: &TargetProgram,
    scale: CampaignScale,
    seed: u64,
    opts: &CampaignOptions,
) -> Result<ProgramCampaign, String> {
    let compiled = compile(target.source_correct).expect("vendored source compiles");
    let (n_assign, n_check) = chosen_locations(target.name);
    // The binary SWIFI path through the representation-agnostic boundary:
    // `BinarySwifiSource` yields the same faults in the same order as
    // `generate_error_set`, grouped into the two campaign phases.
    let fault_source = BinarySwifiSource::new(compiled.debug.clone(), n_assign, n_check);
    let plan = choose_locations(&compiled.debug, n_assign, n_check, seed);
    let mut assign_faults: Vec<GeneratedFault> = Vec::new();
    let mut check_faults: Vec<GeneratedFault> = Vec::new();
    for p in fault_source.plans(seed)? {
        let PreparedFault::Runtime(fault) = p.fault else {
            return Err("binary fault source yielded a baked plan".to_string());
        };
        match p.group.as_str() {
            "assign" => assign_faults.push(fault),
            _ => check_faults.push(fault),
        }
    }
    let inputs = target
        .family
        .test_case(scale.inputs_per_fault, seed ^ 0x5EED);

    let header = CheckpointHeader::new(
        format!("section6:{}", target.name),
        seed,
        scale.inputs_per_fault as u64,
    );
    let mut engine = CampaignEngine::new(header, opts)?;
    let t0 = std::time::Instant::now();
    let campaign_start = opts.telemetry.as_deref().map(Telemetry::now_us);
    let mut sessions: Vec<RunSession> = Vec::new();
    // One prefix-fork cache per compiled program, shared by every worker
    // session of both phases: all runs of the campaign share the same
    // input set, so each (input, trigger) golden prefix is paid for once.
    let prefix = (!opts.no_prefix_fork).then(PrefixCache::shared);
    // Declare both phases' candidate trigger PCs before the pool starts:
    // the traced clean run (one per input) watches exactly these, giving
    // the planner its provable-dormancy and collapse evidence.
    if let Some(cache) = &prefix {
        cache.set_watch_pcs(watch_pcs_of(
            assign_faults.iter().chain(&check_faults).map(|f| &f.spec),
        ));
    }

    // One work item per fault: runs the whole shared test case. Each
    // worker thread owns a warm-reboot session reused across all the
    // faults it processes (one session per worker, not per run);
    // `chaos_base` makes `CampaignOptions::chaos_panic` a global item
    // index across the two phases.
    // One phase's outcome: the ok per-fault results plus the abnormal runs.
    type PhaseBatch = (Vec<(ErrorClass, ModeCounts, u64)>, Vec<AbnormalRun>);
    let mut run_batch =
        |phase: &str, faults: &[GeneratedFault], chaos_base: u64| -> Result<PhaseBatch, String> {
            let (records, mut batch_sessions) = engine.run_phase(
                phase,
                faults,
                || {
                    let mut s = RunSession::new(&compiled, target.family);
                    opts.configure_session(&mut s);
                    s.set_prefix_cache(prefix.clone());
                    s.set_block_cache(!opts.no_block_cache);
                    s
                },
                |session, i, fault| {
                    if opts.chaos_panic == Some(chaos_base + i as u64) {
                        panic!(
                            "chaos-panic injected at campaign item {}",
                            chaos_base + i as u64
                        );
                    }
                    let mut counts = ModeCounts::default();
                    let mut dormant = 0;
                    for (j, input) in inputs.iter().enumerate() {
                        let run_seed = seed
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add(fault.site_addr as u64)
                            .wrapping_add(j as u64);
                        let (mode, fired) = session.run(input, Some(&fault.spec), run_seed);
                        counts.add(mode);
                        if !fired {
                            dormant += 1;
                        }
                    }
                    (fault.error, counts, dormant)
                },
                |i, fault| {
                    format!(
                        "{phase} fault #{i}: {:?} at {:#x}",
                        fault.error, fault.site_addr
                    )
                },
            )?;
            sessions.append(&mut batch_sessions);
            let (ok, abnormal) = split_records(records);
            Ok((ok.into_iter().map(|(_, r)| r).collect(), abnormal))
        };

    let (assign_results, assign_abnormal) = run_batch("assign", &assign_faults, 0)?;
    let (check_results, check_abnormal) =
        run_batch("check", &check_faults, assign_faults.len() as u64)?;
    // `run_batch` captures `engine` mutably; end that borrow so the phase
    // timings can be taken back out of the engine.
    #[allow(clippy::drop_non_drop)]
    drop(run_batch);
    let phase_times = engine.take_phase_times();

    // Fold the run totals from the records, not the live sessions: on
    // resume the replayed faults never touch a session, and the totals
    // must not depend on where the previous process died. Wall-clock and
    // interpreter counters (ignored by `Throughput` equality) still come
    // from the sessions that actually ran.
    let mut throughput = Throughput::collect(&sessions, t0.elapsed());
    throughput.runs = 0;
    throughput.fired_runs = 0;
    throughput.dormant_runs = 0;
    for (_, counts, dormant) in assign_results.iter().chain(&check_results) {
        throughput.runs += counts.total();
        throughput.fired_runs += counts.total() - dormant;
        throughput.dormant_runs += dormant;
    }

    let mut out = ProgramCampaign {
        program: target.name.to_string(),
        plan,
        assign_fault_count: assign_faults.len(),
        check_fault_count: check_faults.len(),
        assign_modes: ModeCounts::default(),
        check_modes: ModeCounts::default(),
        by_assign_type: BTreeMap::new(),
        by_check_type: BTreeMap::new(),
        dormant_runs: 0,
        total_runs: 0,
        throughput,
        phase_times,
        abnormal: assign_abnormal.into_iter().chain(check_abnormal).collect(),
    };
    for (err, counts, dormant) in assign_results {
        out.assign_modes.merge(&counts);
        out.dormant_runs += dormant;
        out.total_runs += counts.total();
        if let ErrorClass::Assign(t) = err {
            out.by_assign_type.entry(t).or_default().merge(&counts);
        }
    }
    for (err, counts, dormant) in check_results {
        out.check_modes.merge(&counts);
        out.dormant_runs += dormant;
        out.total_runs += counts.total();
        if let ErrorClass::Check(t) = err {
            out.by_check_type.entry(t).or_default().merge(&counts);
        }
    }
    // Worker telemetry drains on session drop; retire the sessions now so
    // a metrics-merge failure surfaces in this campaign's abnormal bucket
    // (a data point, like any other abnormal run) instead of being lost.
    drop(sessions);
    if let Some(telemetry) = opts.telemetry.as_deref() {
        for message in telemetry.take_merge_errors() {
            out.abnormal.push(AbnormalRun {
                phase: "telemetry".to_string(),
                index: out.abnormal.len() as u64,
                message,
                detail: "metrics merge on worker retire".to_string(),
            });
        }
    }
    if let (Some(telemetry), Some(start)) = (opts.telemetry.as_deref(), campaign_start) {
        telemetry.engine_event(TraceEvent::complete(
            "campaign",
            start,
            telemetry.now_us().saturating_sub(start),
            ENGINE_TID,
            vec![
                arg_str("campaign", format!("section6:{}", target.name)),
                arg_u64("runs", out.total_runs),
            ],
        ));
    }
    Ok(out)
}

/// Run the campaign over all eight Table-2 targets.
pub fn campaign_all(scale: CampaignScale, seed: u64) -> Vec<ProgramCampaign> {
    all_programs()
        .iter()
        .filter(|p| p.section6_target)
        .map(|p| class_campaign(p, scale, seed))
        .collect()
}

/// Merge per-program results into the global per-error-type profiles of
/// Figures 9 and 10 ("all faults").
pub fn merge_by_error_type(
    campaigns: &[ProgramCampaign],
) -> (
    BTreeMap<AssignErrorType, ModeCounts>,
    BTreeMap<CheckErrorType, ModeCounts>,
) {
    let mut assign: BTreeMap<AssignErrorType, ModeCounts> = BTreeMap::new();
    let mut check: BTreeMap<CheckErrorType, ModeCounts> = BTreeMap::new();
    for c in campaigns {
        for (&t, m) in &c.by_assign_type {
            assign.entry(t).or_default().merge(m);
        }
        for (&t, m) in &c.by_check_type {
            check.entry(t).or_default().merge(m);
        }
    }
    (assign, check)
}

/// A Table-2 row: program features, measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Program name.
    pub program: String,
    /// Narrative features (from the roster).
    pub features: String,
    /// Measured non-blank, non-comment lines of code.
    pub loc: usize,
    /// Whether any function is recursive.
    pub recursive: bool,
    /// Whether the program uses heap structures.
    pub dynamic_structures: bool,
    /// Number of cores used.
    pub cores: usize,
    /// Whether a real fault was found (and corrected) in it.
    pub had_real_fault: bool,
}

/// Build Table 2 from the roster plus measured metrics.
pub fn table2() -> Vec<Table2Row> {
    all_programs()
        .iter()
        .filter(|p| p.section6_target)
        .map(|p| {
            let ast = swifi_lang::parser::parse(p.source_correct).expect("parses");
            let m = swifi_metrics::measure(p.source_correct, &ast);
            Table2Row {
                program: p.name.to_string(),
                features: p.features.to_string(),
                loc: m.loc,
                recursive: m.any_recursive(),
                dynamic_structures: m.uses_dynamic_structures(),
                cores: p.family.cores(),
                had_real_fault: p.source_faulty.is_some(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_programs::program;

    #[test]
    fn table2_covers_the_eight_targets() {
        let rows = table2();
        assert_eq!(rows.len(), 8);
        let sor = rows.iter().find(|r| r.program == "SOR").unwrap();
        assert_eq!(sor.cores, 4);
        assert!(rows.iter().all(|r| r.loc > 0));
        let t9 = rows.iter().find(|r| r.program == "C.team9").unwrap();
        assert!(t9.dynamic_structures);
        let t1 = rows.iter().find(|r| r.program == "C.team1").unwrap();
        assert!(t1.recursive);
        // SOR is the largest program (Table 2's "larger size").
        assert!(rows.iter().all(|r| r.program == "SOR" || r.loc <= sor.loc));
    }

    #[test]
    fn small_campaign_produces_full_accounting() {
        let target = program("JB.team11").unwrap();
        let scale = CampaignScale {
            inputs_per_fault: 3,
        };
        let c = class_campaign(&target, scale, 11);
        assert_eq!(c.plan.chosen_assign.len(), 5);
        assert_eq!(c.plan.chosen_check.len(), 5);
        // 5 assignment locations × 4 error types × 3 inputs.
        assert_eq!(c.injected_assign(), 5 * 4 * 3);
        assert!(c.injected_check() > 0);
        assert_eq!(c.total_runs, c.injected_assign() + c.injected_check());
        // Injected faults hit hard: not everything can stay correct.
        assert!(c.assign_modes.correct < c.assign_modes.total());
        // The per-type split accounts for every assignment run.
        let split: u64 = c.by_assign_type.values().map(ModeCounts::total).sum();
        assert_eq!(split, c.injected_assign());
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let target = program("JB.team6").unwrap();
        let scale = CampaignScale {
            inputs_per_fault: 2,
        };
        let a = class_campaign(&target, scale, 5);
        let b = class_campaign(&target, scale, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_by_error_type_sums_totals() {
        let target = program("JB.team11").unwrap();
        let scale = CampaignScale {
            inputs_per_fault: 2,
        };
        let c = class_campaign(&target, scale, 3);
        let (assign, check) = merge_by_error_type(std::slice::from_ref(&c));
        let merged: u64 = assign
            .values()
            .chain(check.values())
            .map(ModeCounts::total)
            .sum();
        assert_eq!(merged, c.total_runs);
    }
}
