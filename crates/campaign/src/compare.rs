//! Source-vs-binary representation comparison (the §5 argument, measured).
//!
//! The paper *argues* that binary SWIFI reaches only the Assignment and
//! Checking defect types — the Algorithm/Function faults (≈44 % of the
//! field distribution) are structurally out of reach. This driver turns
//! the argument into a table: run the §6.3 binary campaign **and** the
//! source-mutation campaign over the same programs, with the same inputs
//! scheme and the same failure-mode classifier, and report the
//! failure-mode profile and ODC defect-type coverage side by side.

use serde::{Deserialize, Serialize};
use swifi_odc::DefectType;
use swifi_programs::{all_programs, TargetProgram};

use crate::engine::CampaignOptions;
use crate::report::{mode_cells, render_table, MODE_HEADERS};
use crate::runner::ModeCounts;
use crate::section5::not_emulable_field_fraction;
use crate::section6::{class_campaign_with, CampaignScale};
use crate::source::{source_campaign_with, SourceScale};

/// One (program, representation) row of the comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepresentationRow {
    /// Program name.
    pub program: String,
    /// `"binary"` or `"source"`.
    pub representation: String,
    /// Injected faults (generated errors / selected mutants).
    pub faults: usize,
    /// Failure modes over all injected runs.
    pub modes: ModeCounts,
    /// Runs where the fault never influenced the execution.
    pub dormant_runs: u64,
    /// Total injected runs.
    pub total_runs: u64,
    /// Distinct ODC defect types this representation injected, in
    /// [`DefectType`] order.
    pub defect_types: Vec<DefectType>,
}

/// The full comparison: rows per (program, representation) plus the
/// field-distribution headline the coverage gap corresponds to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Two rows per compared program: binary first, then source.
    pub rows: Vec<RepresentationRow>,
    /// Fraction of field faults whose defect types the binary rows never
    /// reach (the paper's ≈0.44).
    pub not_emulable_fraction: f64,
}

impl Comparison {
    /// Defect types injected by any row of `representation`.
    pub fn coverage(&self, representation: &str) -> Vec<DefectType> {
        let mut types: Vec<DefectType> = self
            .rows
            .iter()
            .filter(|r| r.representation == representation)
            .flat_map(|r| r.defect_types.iter().copied())
            .collect();
        types.sort_unstable();
        types.dedup();
        types
    }
}

/// The programs the comparison runs over — §6 targets spanning both
/// families, kept to four so the double campaign stays minutes-scale.
pub fn comparison_targets() -> Vec<TargetProgram> {
    const NAMES: [&str; 4] = ["JB.team6", "JB.team11", "C.team1", "C.team2"];
    all_programs()
        .iter()
        .filter(|p| NAMES.contains(&p.name))
        .cloned()
        .collect()
}

/// Run the comparison at default options.
pub fn compare_representations(
    binary_scale: CampaignScale,
    source_scale: SourceScale,
    seed: u64,
) -> Comparison {
    compare_representations_with(
        binary_scale,
        source_scale,
        seed,
        &CampaignOptions::default(),
    )
    .expect("no checkpoint configured")
}

/// [`compare_representations`] under explicit robustness options.
///
/// When a checkpoint path is set, each sub-campaign appends to its own
/// derived file (`<path>.<program>.<representation>`), so `--checkpoint`
/// and `--resume` behave exactly as they do for single campaigns.
///
/// # Errors
///
/// Checkpoint I/O failures, corruption, or a mutant that fails to compile.
pub fn compare_representations_with(
    binary_scale: CampaignScale,
    source_scale: SourceScale,
    seed: u64,
    opts: &CampaignOptions,
) -> Result<Comparison, String> {
    let sub_opts = |program: &str, repr: &str| -> CampaignOptions {
        let mut o = opts.clone();
        if let Some(path) = &o.checkpoint {
            o.checkpoint = Some(std::path::PathBuf::from(format!(
                "{}.{program}.{repr}",
                path.display()
            )));
        }
        o
    };
    let mut rows = Vec::new();
    for target in comparison_targets() {
        let b = class_campaign_with(
            &target,
            binary_scale,
            seed,
            &sub_opts(target.name, "binary"),
        )?;
        let mut binary_types = Vec::new();
        if b.assign_fault_count > 0 {
            binary_types.push(DefectType::Assignment);
        }
        if b.check_fault_count > 0 {
            binary_types.push(DefectType::Checking);
        }
        let mut binary_modes = b.assign_modes;
        binary_modes.merge(&b.check_modes);
        rows.push(RepresentationRow {
            program: target.name.to_string(),
            representation: "binary".to_string(),
            faults: b.assign_fault_count + b.check_fault_count,
            modes: binary_modes,
            dormant_runs: b.dormant_runs,
            total_runs: b.total_runs,
            defect_types: binary_types,
        });

        let s = source_campaign_with(
            &target,
            source_scale,
            seed,
            &sub_opts(target.name, "source"),
        )?;
        rows.push(RepresentationRow {
            program: target.name.to_string(),
            representation: "source".to_string(),
            faults: s.selected_mutants,
            modes: s.modes,
            dormant_runs: s.dormant_runs,
            total_runs: s.total_runs,
            defect_types: s.by_defect_type.keys().copied().collect(),
        });
    }
    Ok(Comparison {
        rows,
        not_emulable_fraction: not_emulable_field_fraction(),
    })
}

/// Render the comparison as a §5-style text table plus the coverage
/// contrast footer.
pub fn comparison_table(c: &Comparison) -> String {
    let mut headers = vec!["Program", "Repr", "Faults", "Runs"];
    headers.extend_from_slice(&MODE_HEADERS);
    headers.push("Dormant");
    headers.push("ODC types");
    let rows: Vec<Vec<String>> = c
        .rows
        .iter()
        .map(|r| {
            let mut cells = vec![
                r.program.clone(),
                r.representation.clone(),
                r.faults.to_string(),
                r.total_runs.to_string(),
            ];
            cells.extend(mode_cells(&r.modes));
            cells.push(r.dormant_runs.to_string());
            cells.push(
                r.defect_types
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            cells
        })
        .collect();
    let mut out = render_table(&headers, &rows);
    let fmt_types = |types: Vec<DefectType>| {
        types
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str(&format!(
        "\nbinary SWIFI covers: {}\nsource mutation covers: {}\nfield faults beyond binary SWIFI: {:.0}%\n",
        fmt_types(c.coverage("binary")),
        fmt_types(c.coverage("source")),
        c.not_emulable_fraction * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scales() -> (CampaignScale, SourceScale) {
        (
            CampaignScale {
                inputs_per_fault: 2,
            },
            // Budget 18 is the smallest reduced-scale budget at which the
            // largest-remainder apportionment hands the rare Function type
            // (3.6 % of field faults) a slot.
            SourceScale {
                mutant_budget: 18,
                inputs_per_mutant: 2,
            },
        )
    }

    #[test]
    fn comparison_covers_four_programs_in_both_representations() {
        let (bs, ss) = tiny_scales();
        let c = compare_representations(bs, ss, 7);
        assert_eq!(c.rows.len(), 8, "4 programs x 2 representations");
        for pair in c.rows.chunks(2) {
            assert_eq!(pair[0].program, pair[1].program);
            assert_eq!(pair[0].representation, "binary");
            assert_eq!(pair[1].representation, "source");
            assert!(pair[0].total_runs > 0);
            assert!(pair[1].total_runs > 0);
        }
        // The coverage gap the paper quantifies: source reaches defect
        // types binary never does.
        let binary = c.coverage("binary");
        let source = c.coverage("source");
        assert!(binary
            .iter()
            .all(|t| matches!(t, DefectType::Assignment | DefectType::Checking)));
        assert!(source.contains(&DefectType::Algorithm));
        assert!(source.contains(&DefectType::Function));
        assert!((c.not_emulable_fraction - 0.44).abs() < 0.005);
    }

    #[test]
    fn comparison_table_renders_rows_and_coverage() {
        let (bs, ss) = tiny_scales();
        let c = compare_representations(bs, ss, 3);
        let t = comparison_table(&c);
        assert!(t.contains("JB.team11"), "{t}");
        assert!(t.contains("binary"), "{t}");
        assert!(t.contains("source"), "{t}");
        assert!(t.contains("field faults beyond binary SWIFI: 44%"), "{t}");
    }
}
