//! # swifi-campaign — experiment drivers for the reproduction
//!
//! Each module reproduces one experiment of *Madeira, Costa, Vieira —
//! "On the Emulation of Software Faults by Software Fault Injection"
//! (DSN 2000)*:
//!
//! - [`intensive`] — Table 1: failure symptoms of the seven real faults
//!   under intensive random testing;
//! - [`section5`] — §5: emulability classification (A/B/C) of each real
//!   fault plus behavioural verification of the emulations;
//! - [`section6`] — §6: class-based injection campaigns over the eight
//!   Table-2 targets (Tables 2 & 4, Figures 7–10);
//! - [`ablation`] — §6.1: uniform vs metrics-guided vs field-data
//!   injection allocation;
//! - [`exposure`] — Figure 2 made empirical: measured `p1·p2·p3` chains
//!   for the addressable real faults;
//! - [`triggers`] — the paper's closing future-work question implemented:
//!   how firing sparsity (the When attribute) shapes fault impact;
//! - [`hardware`] — the §6.4 baseline: random bit-flip (hardware) faults
//!   to compare against the rule-generated software errors;
//! - [`source`] — source-level G-SWFIT mutation campaigns: ODC-classified
//!   mutants compiled and run through the same engine, reaching the
//!   Algorithm/Function defect types binary SWIFI cannot;
//! - [`compare`] — the source-vs-binary comparison driver: both
//!   representations over the same programs, one table;
//! - [`runner`] — single-run execution and the four failure modes;
//! - [`session`] — the warm-reboot run engine: one machine + clean
//!   snapshot per worker, restored (not rebuilt) between runs;
//! - [`prefix`] — the prefix-fork cache: injected runs resume from a
//!   shared snapshot of the fault-free prefix at their trigger point,
//!   executing only the divergent suffix;
//! - [`pool`] — order-preserving parallel map over independent runs, with
//!   per-worker state carrying the warm sessions;
//! - [`report`] — paper-style text tables.
//!
//! # Quick start
//!
//! ```
//! use swifi_campaign::section6::{class_campaign, CampaignScale};
//!
//! let target = swifi_programs::program("JB.team11").unwrap();
//! let result = class_campaign(&target, CampaignScale { inputs_per_fault: 2 }, 42);
//! assert!(result.total_runs > 0);
//! // Injected faults hit much harder than real software faults:
//! assert!(result.assign_modes.correct < result.assign_modes.total());
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod compare;
pub mod engine;
pub mod exposure;
pub mod hardware;
pub mod intensive;
pub mod plan;
pub mod pool;
pub mod prefix;
pub mod report;
pub mod runner;
pub mod section5;
pub mod section6;
pub mod session;
pub mod shard;
pub mod source;
pub mod triggers;

pub use compare::{compare_representations, comparison_table, Comparison, RepresentationRow};
pub use engine::{
    AbnormalRun, CampaignEngine, CampaignOptions, CheckpointHeader, CheckpointLog, PhaseTime,
    RunRecord, RunStatus,
};
pub use plan::{RunPlan, RunPlanner};
pub use prefix::{watch_pcs_of, CollapseClass, GoldenRun, PrefixCache};
pub use runner::{classify_outcome, execute, execute_cold, FailureMode, ModeCounts};
pub use section6::{campaign_all, class_campaign, CampaignScale, ProgramCampaign};
pub use session::{RunSession, SessionError, SessionStats, Throughput};
pub use shard::{merge_checkpoints, run_sharded, MergeSummary, Shard};
pub use source::{source_campaign, SourceCampaign, SourceMutationSource, SourceScale};
