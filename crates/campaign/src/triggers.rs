//! Trigger-sparsity ablation — the paper's *future work*, implemented.
//!
//! The paper closes: "Further research is needed to understand the fault
//! triggers required for the emulation of subtle software faults", and
//! blames the *random fault triggers* (the Which/When attributes, fired on
//! every execution) for the unrealistically strong impact of injected
//! errors (§6.4).
//!
//! This experiment varies only the **When** attribute of the same §6.3
//! error set: firing on *every* trigger occurrence (the paper's setting),
//! only the *first* occurrence, or only the *k-th* occurrence. Sparser
//! firing should shift the failure-mode profile toward *correct* — i.e.
//! toward the dormancy profile of real software faults (Table 1).

use serde::{Deserialize, Serialize};
use swifi_core::fault::Firing;
use swifi_core::locations::generate_error_set;
use swifi_lang::compile;
use swifi_programs::TargetProgram;

use crate::pool::parallel_map_with;
use crate::prefix::PrefixCache;
use crate::runner::ModeCounts;
use crate::section6::CampaignScale;
use crate::session::RunSession;

/// Results for one firing policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerRow {
    /// Human-readable policy label.
    pub policy: String,
    /// Failure modes over all runs.
    pub modes: ModeCounts,
    /// Runs where the fault never fired.
    pub dormant_runs: u64,
}

/// Run the same error set under different firing schedules.
pub fn trigger_ablation(
    target: &TargetProgram,
    scale: CampaignScale,
    seed: u64,
) -> Vec<TriggerRow> {
    let compiled = compile(target.source_correct).expect("vendored source compiles");
    let set = generate_error_set(&compiled.debug, 8, 8, seed);
    let faults: Vec<_> = set.assign_faults.iter().chain(&set.check_faults).collect();
    let inputs = target
        .family
        .test_case(scale.inputs_per_fault, seed ^ 0x7219);

    // One cache across all four policies: they reuse the same trigger
    // PCs at different firing occurrences, so the `Nth(k)` policies fork
    // from prefixes whose totals the `EveryTime` pass already measured.
    let prefix = PrefixCache::shared();

    let policies: Vec<(String, Firing)> = vec![
        ("every occurrence (paper)".to_string(), Firing::EveryTime),
        ("first occurrence only".to_string(), Firing::First),
        ("5th occurrence only".to_string(), Firing::Nth(5)),
        ("50th occurrence only".to_string(), Firing::Nth(50)),
    ];

    policies
        .into_iter()
        .map(|(label, when)| {
            let (per_fault, _sessions) = parallel_map_with(
                &faults,
                || {
                    let mut s = RunSession::new(&compiled, target.family);
                    s.set_prefix_cache(Some(prefix.clone()));
                    s
                },
                |session, fault| {
                    let mut spec = fault.spec;
                    spec.when = when;
                    let mut counts = ModeCounts::default();
                    let mut dormant = 0u64;
                    for (i, input) in inputs.iter().enumerate() {
                        let (mode, fired) =
                            session.run(input, Some(&spec), seed.wrapping_add(i as u64));
                        counts.add(mode);
                        if !fired {
                            dormant += 1;
                        }
                    }
                    (counts, dormant)
                },
            );
            let mut modes = ModeCounts::default();
            let mut dormant_runs = 0;
            for (c, d) in per_fault {
                modes.merge(&c);
                dormant_runs += d;
            }
            TriggerRow {
                policy: label,
                modes,
                dormant_runs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::FailureMode;
    use swifi_programs::program;

    #[test]
    fn sparser_triggers_soften_impact() {
        let target = program("JB.team11").unwrap();
        let rows = trigger_ablation(
            &target,
            CampaignScale {
                inputs_per_fault: 6,
            },
            11,
        );
        assert_eq!(rows.len(), 4);
        let every = &rows[0];
        let nth50 = &rows[3];
        assert_eq!(every.modes.total(), nth50.modes.total());
        // Firing only on the 50th occurrence leaves many faults dormant →
        // strictly more correct outcomes than always-on injection.
        assert!(
            nth50.modes.pct(FailureMode::Correct) > every.modes.pct(FailureMode::Correct),
            "every: {every:?}\nnth50: {nth50:?}"
        );
        // And strictly more dormancy.
        assert!(nth50.dormant_runs > every.dormant_runs);
    }

    #[test]
    fn every_policy_matches_section6_setting() {
        // At the EveryTime end, the ablation is just the §6 campaign shape:
        // few dormant faults.
        let target = program("JB.team6").unwrap();
        let rows = trigger_ablation(
            &target,
            CampaignScale {
                inputs_per_fault: 4,
            },
            7,
        );
        let every = &rows[0];
        let dormancy = every.dormant_runs as f64 / every.modes.total() as f64;
        assert!(
            dormancy < 0.5,
            "always-on triggers should rarely stay dormant: {dormancy}"
        );
    }
}
