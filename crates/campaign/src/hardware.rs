//! Hardware-fault injection baseline (paper §6.4).
//!
//! The paper observes that "the injected errors also emulate hardware
//! faults, which might explain the general small percentage of correct
//! results", and that its random fault triggers are "also typical from
//! hardware faults", citing earlier Xception and pin-level experiments
//! whose hardware faults produced large fractions of incorrect results
//! and crashes.
//!
//! This module injects *classic hardware faults* — single-bit flips at
//! uniformly random code locations, with the usual transient
//! (first-occurrence) and intermittent (every-occurrence) schedules — so
//! the software-error campaigns of §6 can be compared against the
//! hardware-fault profile the paper alludes to.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use swifi_core::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
use swifi_lang::compile;
use swifi_programs::TargetProgram;

use crate::engine::{split_records, CampaignEngine, CampaignOptions, CheckpointHeader};
use crate::runner::ModeCounts;
use crate::section6::CampaignScale;
use crate::session::RunSession;

/// Hardware-fault flavours injected by [`hardware_campaign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HwFaultKind {
    /// Transient bit flip on the instruction bus: one random bit of one
    /// random instruction's fetch, first execution only.
    TransientInstr,
    /// Intermittent (stuck-ish) bit flip: every fetch of that instruction.
    IntermittentInstr,
    /// Transient bit flip in a random GPR's write-back.
    TransientGpr,
}

impl HwFaultKind {
    /// All flavours.
    pub const ALL: [HwFaultKind; 3] = [
        HwFaultKind::TransientInstr,
        HwFaultKind::IntermittentInstr,
        HwFaultKind::TransientGpr,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            HwFaultKind::TransientInstr => "transient instr bit-flip",
            HwFaultKind::IntermittentInstr => "intermittent instr bit-flip",
            HwFaultKind::TransientGpr => "transient GPR bit-flip",
        }
    }
}

/// Results of one hardware-fault flavour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareRow {
    /// The fault flavour.
    pub kind: HwFaultKind,
    /// Failure modes over all runs.
    pub modes: ModeCounts,
    /// Runs where the fault never fired.
    pub dormant_runs: u64,
    /// Work items that panicked out of the harness (recorded, not fatal).
    pub abnormal: u64,
}

/// Generate `count` random hardware faults of the given kind over a
/// program's code range.
pub fn random_hw_faults(
    kind: HwFaultKind,
    code_words: usize,
    count: usize,
    seed: u64,
) -> Vec<FaultSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let addr = swifi_vm::CODE_BASE + rng.gen_range(0..code_words as u32) * 4;
            let bit: u32 = rng.gen_range(0..32);
            match kind {
                HwFaultKind::TransientInstr => FaultSpec {
                    what: ErrorOp::Xor(1 << bit),
                    target: Target::InstrBus,
                    trigger: Trigger::OpcodeFetch(addr),
                    when: Firing::First,
                },
                HwFaultKind::IntermittentInstr => FaultSpec {
                    what: ErrorOp::Xor(1 << bit),
                    target: Target::InstrBus,
                    trigger: Trigger::OpcodeFetch(addr),
                    when: Firing::EveryTime,
                },
                HwFaultKind::TransientGpr => FaultSpec {
                    what: ErrorOp::Xor(1 << bit),
                    target: Target::Gpr(rng.gen_range(0..32)),
                    trigger: Trigger::OpcodeFetch(addr),
                    when: Firing::First,
                },
            }
        })
        .collect()
}

/// Run the hardware-fault baseline: `faults_per_kind` random faults of
/// each flavour, each over the family's shared test case.
pub fn hardware_campaign(
    target: &TargetProgram,
    faults_per_kind: usize,
    scale: CampaignScale,
    seed: u64,
) -> Vec<HardwareRow> {
    hardware_campaign_with(
        target,
        faults_per_kind,
        scale,
        seed,
        &CampaignOptions::default(),
    )
    .expect("no checkpoint configured")
}

/// [`hardware_campaign`] under explicit robustness options; each fault
/// flavour is one checkpoint phase.
///
/// # Errors
///
/// Checkpoint I/O failures and header/record corruption.
pub fn hardware_campaign_with(
    target: &TargetProgram,
    faults_per_kind: usize,
    scale: CampaignScale,
    seed: u64,
    opts: &CampaignOptions,
) -> Result<Vec<HardwareRow>, String> {
    let compiled = compile(target.source_correct).expect("vendored source compiles");
    let inputs = target
        .family
        .test_case(scale.inputs_per_fault, seed ^ 0x44D);
    let header = CheckpointHeader::new(
        format!("hardware:{}", target.name),
        seed,
        scale.inputs_per_fault as u64,
    );
    let mut engine = CampaignEngine::new(header, opts)?;
    let mut chaos_base = 0u64;
    HwFaultKind::ALL
        .iter()
        .map(|&kind| {
            let faults = random_hw_faults(kind, compiled.image.code.len(), faults_per_kind, seed);
            let base = chaos_base;
            chaos_base += faults.len() as u64;
            let (records, _sessions) = engine.run_phase(
                kind.label(),
                &faults,
                || {
                    let mut s = RunSession::new(&compiled, target.family);
                    opts.configure_session(&mut s);
                    s
                },
                |session, i, spec| {
                    if opts.chaos_panic == Some(base + i as u64) {
                        panic!("chaos-panic injected at campaign item {}", base + i as u64);
                    }
                    let mut counts = ModeCounts::default();
                    let mut dormant = 0u64;
                    for (j, input) in inputs.iter().enumerate() {
                        let (mode, fired) =
                            session.run(input, Some(spec), seed.wrapping_add(j as u64));
                        counts.add(mode);
                        if !fired {
                            dormant += 1;
                        }
                    }
                    (counts, dormant)
                },
                |i, spec| format!("{} fault #{i}: {:?}", kind.label(), spec.trigger),
            )?;
            let (per_fault, abnormal) = split_records(records);
            let mut modes = ModeCounts::default();
            let mut dormant_runs = 0;
            for (_, (c, d)) in per_fault {
                modes.merge(&c);
                dormant_runs += d;
            }
            Ok(HardwareRow {
                kind,
                modes,
                dormant_runs,
                abnormal: abnormal.len() as u64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::FailureMode;
    use swifi_programs::program;

    #[test]
    fn fault_generation_is_deterministic_and_in_range() {
        let a = random_hw_faults(HwFaultKind::TransientInstr, 100, 50, 7);
        let b = random_hw_faults(HwFaultKind::TransientInstr, 100, 50, 7);
        assert_eq!(a, b);
        for f in &a {
            match f.trigger {
                Trigger::OpcodeFetch(addr) => {
                    assert!(addr >= swifi_vm::CODE_BASE);
                    assert!(addr < swifi_vm::CODE_BASE + 400);
                }
                other => panic!("{other:?}"),
            }
            assert!(matches!(f.what, ErrorOp::Xor(m) if m.count_ones() == 1));
        }
    }

    #[test]
    fn hardware_profile_produces_crashes() {
        // Random instruction bit flips decode into wild instructions far
        // more often than semantics-preserving software errors do: the
        // crash share must be visible even in a small sample.
        let target = program("JB.team11").unwrap();
        let rows = hardware_campaign(
            &target,
            40,
            CampaignScale {
                inputs_per_fault: 3,
            },
            99,
        );
        assert_eq!(rows.len(), 3);
        let total_crashes: u64 = rows.iter().map(|r| r.modes.crash).sum();
        assert!(
            total_crashes > 0,
            "bit flips should crash sometimes: {rows:?}"
        );
        for r in &rows {
            assert!(r.modes.total() == 40 * 3);
            assert!(FailureMode::ALL.len() == 4);
        }
    }
}
