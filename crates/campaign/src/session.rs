//! The warm-reboot run engine: snapshot/restore machine lifecycle unified
//! behind a [`RunSession`].
//!
//! The paper's methodology demands that "the target system is rebooted
//! between injections to assure a clean state". The seed implementation
//! honoured that by building a fresh [`Machine`] per run — zeroing
//! 512 KiB of guest memory, re-copying the image, and recompiling the
//! injector's trigger tables tens of thousands of times per campaign.
//!
//! A `RunSession` keeps the reboot *semantics* while dropping the cost:
//!
//! 1. build the machine and [`Machine::load`] the program **once**;
//! 2. take a [`MachineSnapshot`](swifi_vm::MachineSnapshot) of the clean
//!    post-load state **once**;
//! 3. for every run: [`Machine::restore`] (copies only the pages the
//!    previous run dirtied), re-arm the injector with
//!    [`Injector::reset`], and run.
//!
//! The campaign drivers hold **one session per worker thread, not one per
//! run** (see [`crate::pool::parallel_map_with`]); the equivalence of a
//! restored machine and a freshly booted one is a tested invariant (VM
//! unit tests plus the property suite in `tests/fault_injection_properties.rs`),
//! which is exactly what licenses the reuse.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use swifi_core::fault::FaultSpec;
use swifi_core::injector::{Injector, TriggerMode};
use swifi_lang::Program;
use swifi_programs::input::TestInput;
use swifi_programs::Family;
use swifi_trace::event::{arg_str, arg_u64};
use swifi_trace::metrics::names as metric_names;
use swifi_trace::{ProfiledInspector, WorkerTelemetry};
use swifi_vm::defuse::{DefUseRecorder, DefUseTrace};
use swifi_vm::inspect::Inspector;
use swifi_vm::machine::{FetchStop, Machine, MachineSnapshot, RunOutcome};
use swifi_vm::Noop;

use crate::plan::{RunPlan, RunPlanner};
use crate::prefix::{CollapseClass, GoldenRun, PrefixCache};
use crate::runner::{campaign_config, classify_outcome, FailureMode};

/// Per-session run counters, folded into a campaign-level [`Throughput`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Total runs executed by this session (clean + injected).
    pub runs: u64,
    /// Runs that had a fault set armed.
    pub injected_runs: u64,
    /// Injected runs where at least one fault fired.
    pub fired_runs: u64,
    /// Injected runs where no fault fired (dormant faults).
    pub dormant_runs: u64,
    /// Times the injector had to be rebuilt because the fault set changed
    /// (diagnostic: a low number means the reset fast path is working).
    pub injector_rebuilds: u64,
    /// Guest instructions retired across all runs (the numerator of the
    /// campaign's instructions-per-second figure).
    pub retired_instrs: u64,
    /// Translation-cache lines decoded by this session's machine.
    pub decode_lines_built: u64,
    /// Translation-cache lines invalidated by writes into the code region
    /// (injector patches, guest stores, warm-reboot restores).
    pub decode_invalidations: u64,
    /// Instructions that took the slow fetch→`on_fetch`→decode path
    /// (armed PCs, reference mode, PCs outside the cached code region).
    pub slow_fetches: u64,
    /// Golden prefixes captured (paused runs snapshotted) by this session.
    pub prefix_snapshots_built: u64,
    /// Injected runs resumed from a cached prefix snapshot.
    pub prefix_fork_hits: u64,
    /// Guest instructions *not* executed thanks to the prefix cache
    /// (forked-over prefixes, memoized golden runs, dormant
    /// short-circuits). Disjoint from `retired_instrs`, which counts only
    /// instructions actually executed.
    pub prefix_instrs_skipped: u64,
    /// Injected runs classified dormant from the golden trigger-arrival
    /// count, without executing anything.
    pub prefix_dormant_short_circuits: u64,
    /// Clean runs answered from the memoized golden run.
    pub prefix_golden_hits: u64,
    /// Injected runs that bypassed the fork machinery because the trigger
    /// memo proved the prefix too shallow to pay for a snapshot restore.
    pub prefix_shallow_skips: u64,
    /// Basic blocks translated by this session's machine.
    pub blocks_built: u64,
    /// Dispatches answered by executing a whole translated block.
    pub block_hits: u64,
    /// Guest instructions retired from inside translated blocks
    /// (a subset of `retired_instrs`).
    pub block_instrs: u64,
    /// Block-mode dispatches that fell back to per-instruction execution
    /// (untranslatable or pinned words, nearly-exhausted quanta).
    pub block_fallbacks: u64,
    /// Translated blocks discarded because a write touched their words.
    pub block_invalidations: u64,
    /// Dedicated def-use-traced clean runs executed (one per input when
    /// pruning is enabled and trigger PCs are declared).
    pub prune_trace_runs: u64,
    /// Injected runs answered by a provable-dormancy proof from the
    /// def-use trace, without executing.
    pub prune_dormant_skips: u64,
    /// Injected runs answered by an outcome-equivalence collapse class,
    /// without executing.
    pub prune_collapse_hits: u64,
    /// Executed fired runs whose complete corruption log was retained as
    /// a collapse representative.
    pub prune_collapse_logged: u64,
    /// Pruned/collapsed answers re-validated by a full sampled run.
    pub prune_sample_checks: u64,
    /// Sampled validations whose full run disagreed with the prediction
    /// (must stay zero; a nonzero count is a soundness bug).
    pub prune_sample_mispredicts: u64,
}

impl SessionStats {
    /// Fold another session's counters in.
    pub fn merge(&mut self, other: &SessionStats) {
        self.runs += other.runs;
        self.injected_runs += other.injected_runs;
        self.fired_runs += other.fired_runs;
        self.dormant_runs += other.dormant_runs;
        self.injector_rebuilds += other.injector_rebuilds;
        self.retired_instrs += other.retired_instrs;
        self.decode_lines_built += other.decode_lines_built;
        self.decode_invalidations += other.decode_invalidations;
        self.slow_fetches += other.slow_fetches;
        self.prefix_snapshots_built += other.prefix_snapshots_built;
        self.prefix_fork_hits += other.prefix_fork_hits;
        self.prefix_instrs_skipped += other.prefix_instrs_skipped;
        self.prefix_dormant_short_circuits += other.prefix_dormant_short_circuits;
        self.prefix_golden_hits += other.prefix_golden_hits;
        self.prefix_shallow_skips += other.prefix_shallow_skips;
        self.blocks_built += other.blocks_built;
        self.block_hits += other.block_hits;
        self.block_instrs += other.block_instrs;
        self.block_fallbacks += other.block_fallbacks;
        self.block_invalidations += other.block_invalidations;
        self.prune_trace_runs += other.prune_trace_runs;
        self.prune_dormant_skips += other.prune_dormant_skips;
        self.prune_collapse_hits += other.prune_collapse_hits;
        self.prune_collapse_logged += other.prune_collapse_logged;
        self.prune_sample_checks += other.prune_sample_checks;
        self.prune_sample_mispredicts += other.prune_sample_mispredicts;
    }
}

/// Aggregate campaign throughput: run counts plus wall-clock, surfaced in
/// reports and the `swifi campaign` command.
///
/// `PartialEq` compares through [`Throughput::equality_key`], which
/// deliberately **ignores** `elapsed_secs` and the engine-level counters
/// (`retired_instrs`, `decode_*`, `slow_fetches`, `prefix_*`,
/// `block_*`): two campaigns with identical seeds must compare equal
/// even though their wall-clock differs, their sessions split the work
/// (and hence the per-worker caches) differently, and the prefix-fork
/// and block caches may or may not be enabled — the seed-determinism
/// and on/off equivalence tests rely on this.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Throughput {
    /// Total runs executed.
    pub runs: u64,
    /// Injected runs where the fault fired.
    pub fired_runs: u64,
    /// Injected runs where the fault stayed dormant.
    pub dormant_runs: u64,
    /// Wall-clock seconds for the measured region.
    pub elapsed_secs: f64,
    /// Guest instructions retired across all runs.
    pub retired_instrs: u64,
    /// Translation-cache lines decoded across all sessions.
    pub decode_lines_built: u64,
    /// Translation-cache lines invalidated across all sessions.
    pub decode_invalidations: u64,
    /// Instructions executed via the slow fetch path across all sessions.
    pub slow_fetches: u64,
    /// Golden prefixes captured across all sessions.
    pub prefix_snapshots_built: u64,
    /// Injected runs resumed from a cached prefix snapshot.
    pub prefix_fork_hits: u64,
    /// Guest instructions skipped by the prefix cache (not part of
    /// `retired_instrs`).
    pub prefix_instrs_skipped: u64,
    /// Injected runs classified dormant without execution.
    pub prefix_dormant_short_circuits: u64,
    /// Clean runs answered from the memoized golden run.
    pub prefix_golden_hits: u64,
    /// Injected runs that bypassed forking via the shallow-trigger memo.
    pub prefix_shallow_skips: u64,
    /// Basic blocks translated across all sessions.
    pub blocks_built: u64,
    /// Dispatches answered by executing a whole translated block.
    pub block_hits: u64,
    /// Guest instructions retired from inside translated blocks.
    pub block_instrs: u64,
    /// Block-mode dispatches that fell back to per-instruction execution.
    pub block_fallbacks: u64,
    /// Translated blocks discarded by code writes.
    pub block_invalidations: u64,
    /// Def-use-traced clean runs executed across all sessions.
    pub prune_trace_runs: u64,
    /// Injected runs answered by a provable-dormancy proof.
    pub prune_dormant_skips: u64,
    /// Injected runs answered by an outcome-equivalence collapse class.
    pub prune_collapse_hits: u64,
    /// Fired runs retained as collapse representatives.
    pub prune_collapse_logged: u64,
    /// Pruned answers re-validated by a full sampled run.
    pub prune_sample_checks: u64,
    /// Sampled validations that disagreed with the prediction.
    pub prune_sample_mispredicts: u64,
}

impl PartialEq for Throughput {
    fn eq(&self, other: &Throughput) -> bool {
        self.equality_key() == other.equality_key()
    }
}

impl Throughput {
    /// The counters that define campaign equality: the run counts, and
    /// nothing else.
    ///
    /// Everything else on [`Throughput`] describes *how* the campaign
    /// executed rather than *what* it observed, and legitimately varies
    /// between equivalent campaigns: wall clock depends on the host,
    /// worker splits shuffle the per-session `decode_*`/`block_*`
    /// counters, and entire execution strategies can be toggled
    /// (`--no-prefix-fork`, `--no-block-cache`) without changing a
    /// single classified outcome. The seed-determinism, resume-equality,
    /// and strategy-on/off oracles all compare through this key — any
    /// counter added to [`Throughput`] stays out of equality unless it
    /// is appended here deliberately.
    pub fn equality_key(&self) -> (u64, u64, u64) {
        (self.runs, self.fired_runs, self.dormant_runs)
    }
    /// Aggregate the stats of the sessions that executed a measured region.
    pub fn collect(sessions: &[RunSession], elapsed: std::time::Duration) -> Throughput {
        let mut stats = SessionStats::default();
        for s in sessions {
            stats.merge(&s.stats());
        }
        Throughput {
            runs: stats.runs,
            fired_runs: stats.fired_runs,
            dormant_runs: stats.dormant_runs,
            elapsed_secs: elapsed.as_secs_f64(),
            retired_instrs: stats.retired_instrs,
            decode_lines_built: stats.decode_lines_built,
            decode_invalidations: stats.decode_invalidations,
            slow_fetches: stats.slow_fetches,
            prefix_snapshots_built: stats.prefix_snapshots_built,
            prefix_fork_hits: stats.prefix_fork_hits,
            prefix_instrs_skipped: stats.prefix_instrs_skipped,
            prefix_dormant_short_circuits: stats.prefix_dormant_short_circuits,
            prefix_golden_hits: stats.prefix_golden_hits,
            prefix_shallow_skips: stats.prefix_shallow_skips,
            blocks_built: stats.blocks_built,
            block_hits: stats.block_hits,
            block_instrs: stats.block_instrs,
            block_fallbacks: stats.block_fallbacks,
            block_invalidations: stats.block_invalidations,
            prune_trace_runs: stats.prune_trace_runs,
            prune_dormant_skips: stats.prune_dormant_skips,
            prune_collapse_hits: stats.prune_collapse_hits,
            prune_collapse_logged: stats.prune_collapse_logged,
            prune_sample_checks: stats.prune_sample_checks,
            prune_sample_mispredicts: stats.prune_sample_mispredicts,
        }
    }

    /// Runs per wall-clock second (0 when nothing was measured).
    pub fn runs_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.runs as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Guest instructions per wall-clock second (0 when nothing was
    /// measured) — the figure the translation cache exists to raise.
    pub fn instrs_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.retired_instrs as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Fold another region's throughput in (wall-clock adds, matching the
    /// sequential composition of campaign phases).
    pub fn merge(&mut self, other: &Throughput) {
        self.runs += other.runs;
        self.fired_runs += other.fired_runs;
        self.dormant_runs += other.dormant_runs;
        self.elapsed_secs += other.elapsed_secs;
        self.retired_instrs += other.retired_instrs;
        self.decode_lines_built += other.decode_lines_built;
        self.decode_invalidations += other.decode_invalidations;
        self.slow_fetches += other.slow_fetches;
        self.prefix_snapshots_built += other.prefix_snapshots_built;
        self.prefix_fork_hits += other.prefix_fork_hits;
        self.prefix_instrs_skipped += other.prefix_instrs_skipped;
        self.prefix_dormant_short_circuits += other.prefix_dormant_short_circuits;
        self.prefix_golden_hits += other.prefix_golden_hits;
        self.prefix_shallow_skips += other.prefix_shallow_skips;
        self.blocks_built += other.blocks_built;
        self.block_hits += other.block_hits;
        self.block_instrs += other.block_instrs;
        self.block_fallbacks += other.block_fallbacks;
        self.block_invalidations += other.block_invalidations;
        self.prune_trace_runs += other.prune_trace_runs;
        self.prune_dormant_skips += other.prune_dormant_skips;
        self.prune_collapse_hits += other.prune_collapse_hits;
        self.prune_collapse_logged += other.prune_collapse_logged;
        self.prune_sample_checks += other.prune_sample_checks;
        self.prune_sample_mispredicts += other.prune_sample_mispredicts;
    }
}

/// A fork snapshot is captured only when the paused prefix covers at
/// least `1 / FORK_SHALLOW_DENOM` of the memoized golden run — see
/// [`RunSession::fork_worthwhile`]. A quarter splits the measured field
/// cleanly: JB.team11's regressing triggers sit at ~4% depth, the
/// profitable JB.team6 / C.team10 prefixes at ~28% / ~49%.
const FORK_SHALLOW_DENOM: u64 = 4;

/// Cached injector, keyed by the fault set it was compiled from.
struct CachedInjector {
    specs: Vec<FaultSpec>,
    mode: TriggerMode,
    injector: Injector,
}

/// Salt folded into the run seed when deciding whether a pruned answer is
/// re-validated by a full sampled run, so the sampling stream is
/// independent of the injector's random-value stream.
const SAMPLE_SALT: u64 = 0x5057_4946_5052_4E45;

/// SplitMix64 finalizer: a cheap, well-mixed hash of the run seed for the
/// deterministic sampling decision.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A structured failure from the fallible run entry points
/// ([`RunSession::try_run_injected`]). The campaign generators never
/// produce fault sets that hit these, so the infallible paths panic
/// instead; callers feeding *external* fault descriptions (checkpoint
/// replay, the CLI, the server) get an error they can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The fault set cannot be compiled for the requested trigger mode
    /// (breakpoint budget exceeded, invalid spec, …).
    InjectorBuild(String),
    /// Arming the faults against the loaded machine failed — a
    /// [`swifi_core::fault::Target::Memory`] fault addresses unmapped
    /// guest memory.
    Prepare(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::InjectorBuild(e) => write!(f, "injector build failed: {e}"),
            SessionError::Prepare(e) => write!(f, "fault preparation failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A reusable run engine for one compiled program: one machine, one clean
/// snapshot, one (cached) injector — many runs.
///
/// # Examples
///
/// ```
/// use swifi_campaign::session::RunSession;
/// use swifi_lang::compile;
/// use swifi_programs::{program, Family};
///
/// let target = program("JB.team11").unwrap();
/// let compiled = compile(target.source_correct).unwrap();
/// let inputs = target.family.test_case(3, 7);
/// let mut session = RunSession::new(&compiled, target.family);
/// for input in &inputs {
///     let (mode, fired) = session.run(input, None, 0);
///     assert!(!fired);
///     assert_eq!(mode, swifi_campaign::FailureMode::Correct);
/// }
/// assert_eq!(session.stats().runs, 3);
/// ```
pub struct RunSession {
    family: Family,
    machine: Machine,
    snapshot: MachineSnapshot,
    cached: Option<CachedInjector>,
    /// Oracle outputs memoized per input. A class campaign runs every
    /// fault against the same shared input set, so each input's expected
    /// output is recomputed once per session instead of once per run —
    /// on the short JamesB runs the oracle call is a measurable slice of
    /// the per-run wall clock. When a [`PrefixCache`] is attached it acts
    /// as a shared second level behind this per-session map.
    expected: HashMap<TestInput, Arc<Vec<u8>>>,
    /// Shared prefix-fork cache; `None` disables forking entirely (every
    /// run executes from the clean snapshot).
    prefix: Option<Arc<PrefixCache>>,
    stats: SessionStats,
    started: Instant,
    /// Retired-instruction count of the most recent run, as a full
    /// (unforked) run would report it — memoized answers report the
    /// golden run's count. The forked-vs-full equivalence oracle pins
    /// this.
    last_retired: u64,
    /// Per-run wall-clock budget; armed on the machine at the start of
    /// every run when set. Expired runs come back as
    /// [`RunOutcome::Hang`] and classify as [`FailureMode::Hang`].
    watchdog: Option<Duration>,
    /// Per-worker telemetry accumulator (trace events, metrics, guest
    /// profiling). `None` — the default — is the disabled contract:
    /// every instrumentation site below is behind one `Option` test per
    /// *run* (never per instruction), which is what keeps the disabled
    /// overhead inside the <1% budget of `BENCH_trace_overhead.json`.
    telemetry: Option<WorkerTelemetry>,
    /// The loaded program's code words, kept for the def-use recorder's
    /// static decode of watched sites.
    code: Arc<Vec<u32>>,
    /// Trace-guided pruning: when enabled (and the prefix cache declares
    /// watch PCs), injected runs consult the [`RunPlanner`] and the
    /// collapse store before executing.
    prune: bool,
    /// Percentage (0–100) of pruned/collapsed answers re-validated by a
    /// full run (the sampling oracle). 0 disables validation.
    prune_sample_pct: u32,
    /// The adaptive planner consulted when `prune` is on.
    planner: RunPlanner,
}

impl std::fmt::Debug for RunSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSession")
            .field("family", &self.family)
            .field("stats", &self.stats)
            .finish()
    }
}

impl RunSession {
    /// Boot a machine for `family`, load `program`, and snapshot the clean
    /// state. All subsequent runs warm-reboot from that snapshot.
    pub fn new(program: &Program, family: Family) -> RunSession {
        let mut machine = Machine::new(campaign_config(family));
        machine.load(&program.image);
        let snapshot = machine.snapshot();
        RunSession {
            family,
            machine,
            snapshot,
            cached: None,
            expected: HashMap::new(),
            prefix: None,
            stats: SessionStats::default(),
            started: Instant::now(),
            last_retired: 0,
            watchdog: None,
            telemetry: None,
            code: Arc::new(program.image.code.clone()),
            prune: false,
            prune_sample_pct: 0,
            planner: RunPlanner::default(),
        }
    }

    /// Attach a shared [`PrefixCache`]. The cache must have been created
    /// for the same compiled program and machine configuration as this
    /// session — snapshots restore across sessions only between
    /// identically-built machines. `None` disables prefix forking.
    pub fn set_prefix_cache(&mut self, cache: Option<Arc<PrefixCache>>) {
        self.prefix = cache;
    }

    /// Enable trace-guided pruning: provable-dormancy skips,
    /// outcome-equivalence collapse, and the adaptive fork planner.
    /// Inert without a prefix cache whose
    /// [`PrefixCache::set_watch_pcs`] declares the campaign's trigger
    /// PCs. `sample_pct` (clamped to 0–100) of pruned answers are
    /// re-validated by running the skipped run in full and comparing
    /// outcome, fired flag and retired count — the sampling oracle.
    pub fn set_prune(&mut self, enabled: bool, sample_pct: u32) {
        self.prune = enabled;
        self.prune_sample_pct = sample_pct.min(100);
    }

    /// Retired-instruction count of the most recent run, as a full run
    /// would report it (memoized/forked answers included).
    pub fn last_retired(&self) -> u64 {
        self.last_retired
    }

    /// Arm a per-run wall-clock watchdog: any subsequent run still
    /// executing after `budget` wall-clock time is cut off and classified
    /// as a hang — defense in depth above the instruction budget, for runs
    /// that are pathologically *slow* rather than long. `None` disarms.
    pub fn set_watchdog(&mut self, budget: Option<Duration>) {
        self.watchdog = budget;
    }

    /// Set the machine's watchdog deadline poll interval, in scheduler
    /// rounds (`--watchdog-poll`; see
    /// [`swifi_vm::machine::Machine::set_watchdog_poll`]).
    pub fn set_watchdog_poll(&mut self, rounds: u32) {
        self.machine.set_watchdog_poll(rounds);
    }

    /// Attach this worker's telemetry accumulator (`None` detaches it —
    /// the disabled, zero-overhead default).
    pub fn set_telemetry(&mut self, telemetry: Option<WorkerTelemetry>) {
        self.telemetry = telemetry;
    }

    /// Detach and return the telemetry accumulator, so drivers that
    /// build one short-lived session per work item (the source-mutation
    /// campaign) can carry a single accumulator across items instead of
    /// opening a trace lane per mutant.
    pub fn take_telemetry(&mut self) -> Option<WorkerTelemetry> {
        self.telemetry.take()
    }

    /// Run the machine under `inner`, wrapped in a sampling guest
    /// profiler when profiling is enabled. A free-standing fn over
    /// disjoint fields so callers holding a `self.cached` borrow can
    /// still pass the machine and telemetry.
    fn machine_run<I: Inspector>(
        machine: &mut Machine,
        telemetry: &mut Option<WorkerTelemetry>,
        inner: &mut I,
    ) -> RunOutcome {
        match telemetry {
            Some(t) if t.profile_enabled() => {
                let (hist, every) = t.profiler();
                machine.run(&mut ProfiledInspector::new(inner, hist, every))
            }
            _ => machine.run(inner),
        }
    }

    /// [`Machine::run_to_fetch`] with the same optional profiling wrap
    /// as [`RunSession::machine_run`] (prefix capture runs execute real
    /// guest instructions and should show up in profiles too).
    fn machine_run_to_fetch(
        machine: &mut Machine,
        telemetry: &mut Option<WorkerTelemetry>,
        pc: u32,
        occ: u64,
    ) -> (FetchStop, u64) {
        match telemetry {
            Some(t) if t.profile_enabled() => {
                let (hist, every) = t.profiler();
                let mut noop = Noop;
                machine.run_to_fetch(pc, occ, &mut ProfiledInspector::new(&mut noop, hist, every))
            }
            _ => machine.run_to_fetch(pc, occ, &mut Noop),
        }
    }

    /// The program family this session runs.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Counters accumulated so far, with the machine's translation-cache
    /// counters overlaid (those are cumulative in the machine itself —
    /// warm reboots do not reset them, so the machine's totals *are* the
    /// session's totals).
    pub fn stats(&self) -> SessionStats {
        let mut s = self.stats;
        let d = self.machine.decode_cache_stats();
        s.decode_lines_built = d.lines_built;
        s.decode_invalidations = d.lines_invalidated;
        s.slow_fetches = d.slow_fetches;
        let b = self.machine.block_cache_stats();
        s.blocks_built = b.blocks_built;
        s.block_hits = b.block_hits;
        s.block_instrs = b.block_instrs;
        s.block_fallbacks = b.fallback_dispatches;
        s.block_invalidations = b.blocks_invalidated;
        s
    }

    /// Run this session's machine on the seed decode-every-fetch reference
    /// interpreter (`true`) or the predecoded-cache interpreter (`false`,
    /// the default). Used by the interpreter benchmarks and differential
    /// tests; campaign drivers leave it off.
    pub fn set_reference_interp(&mut self, reference: bool) {
        self.machine.set_reference_interp(reference);
    }

    /// Enable (`true`, the default) or disable the basic-block
    /// translation layer on this session's machine. Disabling pins the
    /// PR 2 predecoded-line path (`--no-block-cache`); like prefix
    /// forking this is purely an execution strategy — runs are
    /// bit-identical either way.
    pub fn set_block_cache(&mut self, enabled: bool) {
        self.machine.set_block_interp(enabled);
    }

    /// Seconds since the session was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Warm-reboot to the clean snapshot and mount `input`.
    fn begin(&mut self, input: &TestInput) {
        self.machine.restore(&self.snapshot);
        self.machine.set_input(input.to_tape());
        self.machine
            .set_deadline(self.watchdog.map(|d| Instant::now() + d));
        self.stats.runs += 1;
    }

    /// One fault-free run, answered from the shared golden memo when the
    /// prefix cache already holds this input's fault-free run.
    pub fn run_clean(&mut self, input: &TestInput) -> RunOutcome {
        if let Some(cache) = &self.prefix {
            if let Some(golden) = cache.golden(input) {
                self.stats.runs += 1;
                self.stats.prefix_golden_hits += 1;
                self.stats.prefix_instrs_skipped += golden.retired;
                self.last_retired = golden.retired;
                if let Some(t) = self.telemetry.as_mut() {
                    t.instant("golden_hit", vec![arg_u64("retired", golden.retired)]);
                }
                return golden.outcome;
            }
        }
        self.begin(input);
        let outcome = Self::machine_run(&mut self.machine, &mut self.telemetry, &mut Noop);
        let retired = self.machine.retired();
        self.stats.retired_instrs += retired;
        self.last_retired = retired;
        if let Some(cache) = &self.prefix {
            if self.golden_memoizable(&outcome) {
                cache.record_golden(
                    input,
                    GoldenRun {
                        outcome: outcome.clone(),
                        retired,
                    },
                );
            }
        }
        outcome
    }

    /// Whether a fault-free outcome is safe to memoize: with a wall-clock
    /// watchdog armed, a `Hang` may be the (nondeterministic) deadline
    /// rather than the (deterministic) instruction budget, and must not
    /// be replayed as gospel.
    fn golden_memoizable(&self, outcome: &RunOutcome) -> bool {
        self.watchdog.is_none() || !matches!(outcome, RunOutcome::Hang { .. })
    }

    /// One run observed by a caller-supplied inspector (profilers etc.).
    pub fn run_with<I: Inspector>(&mut self, input: &TestInput, inspector: &mut I) -> RunOutcome {
        self.begin(input);
        let outcome = self.machine.run(inspector);
        self.stats.retired_instrs += self.machine.retired();
        self.last_retired = self.machine.retired();
        outcome
    }

    /// One run with a full fault set under an explicit trigger mode.
    ///
    /// The compiled injector is cached: consecutive runs with the same
    /// fault set (the common campaign shape — one fault, many inputs)
    /// reuse it via [`Injector::reset`] instead of rebuilding the trigger
    /// routing tables.
    ///
    /// Returns the raw outcome plus whether any fault fired.
    ///
    /// # Panics
    ///
    /// Panics if the fault set does not fit `mode`'s breakpoint budget or
    /// addresses unmapped memory — campaign generators never produce
    /// either.
    pub fn run_injected(
        &mut self,
        input: &TestInput,
        specs: &[FaultSpec],
        mode: TriggerMode,
        seed: u64,
    ) -> (RunOutcome, bool) {
        if let Some((pc, occ)) = self.fork_plan(specs) {
            return self.run_forked(input, specs, mode, seed, pc, occ);
        }
        self.run_cold(input, specs, mode, seed)
    }

    /// Fallible variant of [`RunSession::run_injected`] for fault sets
    /// that did not come from the campaign generators (checkpoint replay,
    /// server requests): surfaces [`SessionError`] where the infallible
    /// path would panic. Always executes the plain fork-free path; a
    /// failed attempt leaves the session's counters untouched and the
    /// session fully usable.
    ///
    /// # Errors
    ///
    /// [`SessionError::InjectorBuild`] when the fault set cannot be
    /// compiled for `mode`; [`SessionError::Prepare`] when a memory fault
    /// addresses unmapped guest memory.
    pub fn try_run_injected(
        &mut self,
        input: &TestInput,
        specs: &[FaultSpec],
        mode: TriggerMode,
        seed: u64,
    ) -> Result<(RunOutcome, bool), SessionError> {
        self.try_ensure_injector(specs, mode, seed)?;
        self.machine.restore(&self.snapshot);
        self.machine.set_input(input.to_tape());
        self.machine
            .set_deadline(self.watchdog.map(|d| Instant::now() + d));
        let cached = self.cached.as_mut().expect("cache populated above");
        cached.injector.reset(seed);
        cached
            .injector
            .prepare(&mut self.machine)
            .map_err(|e| SessionError::Prepare(format!("{e:?}")))?;
        self.stats.runs += 1;
        let outcome =
            Self::machine_run(&mut self.machine, &mut self.telemetry, &mut cached.injector);
        let fired = cached.injector.any_fired();
        self.account_injected(self.machine.retired(), fired);
        Ok((outcome, fired))
    }

    /// The fork-free injected run: warm-reboot, arm the injector, and
    /// execute the whole run. Shared by [`RunSession::run_injected`]
    /// (no fork plan) and the shallow-trigger bypass in
    /// [`RunSession::run_forked`].
    fn run_cold(
        &mut self,
        input: &TestInput,
        specs: &[FaultSpec],
        mode: TriggerMode,
        seed: u64,
    ) -> (RunOutcome, bool) {
        self.begin(input);
        self.ensure_injector(specs, mode, seed);
        let cached = self.cached.as_mut().expect("cache populated above");
        cached.injector.reset(seed);
        cached
            .injector
            .prepare(&mut self.machine)
            .expect("fault addresses lie in mapped memory");
        let outcome =
            Self::machine_run(&mut self.machine, &mut self.telemetry, &mut cached.injector);
        let fired = cached.injector.any_fired();
        self.account_injected(self.machine.retired(), fired);
        (outcome, fired)
    }

    /// (Re)compile the cached injector if the fault set changed.
    fn ensure_injector(&mut self, specs: &[FaultSpec], mode: TriggerMode, seed: u64) {
        self.try_ensure_injector(specs, mode, seed)
            .expect("campaign fault sets fit their trigger mode");
    }

    /// Fallible twin of [`RunSession::ensure_injector`], for callers
    /// whose fault sets come from outside the campaign generators.
    fn try_ensure_injector(
        &mut self,
        specs: &[FaultSpec],
        mode: TriggerMode,
        seed: u64,
    ) -> Result<(), SessionError> {
        let reusable = self
            .cached
            .as_ref()
            .is_some_and(|c| c.mode == mode && c.specs.as_slice() == specs);
        if !reusable {
            let injector = Injector::new(specs.to_vec(), mode, seed)
                .map_err(|e| SessionError::InjectorBuild(format!("{e:?}")))?;
            self.cached = Some(CachedInjector {
                specs: specs.to_vec(),
                mode,
                injector,
            });
            self.stats.injector_rebuilds += 1;
            if let Some(t) = self.telemetry.as_mut() {
                t.instant("fault_arm", vec![arg_u64("faults", specs.len() as u64)]);
            }
        }
        if let Some(c) = self.cached.as_mut() {
            // Corruption logging feeds the collapse store; keep it off
            // (and free) when pruning is disabled.
            c.injector.set_fire_log(self.prune);
        }
        Ok(())
    }

    /// Per-injected-run accounting shared by the cold and forked paths.
    /// `retired` is what a full run would report; the caller has already
    /// added the actually-executed share to `retired_instrs`.
    fn account_injected_memoized(&mut self, retired: u64, fired: bool) {
        self.last_retired = retired;
        self.stats.injected_runs += 1;
        if fired {
            self.stats.fired_runs += 1;
        } else {
            self.stats.dormant_runs += 1;
        }
    }

    /// Accounting for an injected run that executed on the machine.
    fn account_injected(&mut self, retired: u64, fired: bool) {
        self.stats.retired_instrs += retired;
        self.account_injected_memoized(retired, fired);
    }

    /// Whether this fault set resumes from a cached golden prefix: a
    /// prefix cache is attached, the machine is single-core (a fetch
    /// breakpoint cannot capture a multi-core scheduler position), the
    /// set is a single fault, and that fault has a
    /// [`FaultSpec::fork_point`]. Anything else takes the full path.
    fn fork_plan(&self, specs: &[FaultSpec]) -> Option<(u32, u64)> {
        self.prefix.as_ref()?;
        if self.machine.num_cores() != 1 {
            return None;
        }
        let [spec] = specs else { return None };
        spec.fork_point()
    }

    /// Whether the prefix the machine is currently paused at (inside a
    /// capture run, stopped exactly at the trigger) is deep enough to be
    /// worth snapshotting.
    ///
    /// Forking a run saves the prefix's instructions but pays a
    /// [`swifi_vm::Machine::restore_fork`] (dirty-page copies) on every
    /// hit — a shallow trigger saves almost nothing and still pays full
    /// price. BENCH_prefix_fork.json recorded the cost: JB.team11's
    /// triggers sit at ~4% depth and forking them ran at 0.80× the
    /// plain cached engine. The gate consults the golden-run memo for
    /// this input: capture only when the paused prefix covers at least
    /// `1/`[`FORK_SHALLOW_DENOM`] of the golden run. Without a golden
    /// memo the depth is unknowable and capture proceeds optimistically
    /// (the first faults of a campaign, before any clean or finished
    /// capture run has recorded one).
    fn fork_worthwhile(&self, cache: &PrefixCache, input: &TestInput) -> bool {
        match cache.golden(input) {
            Some(golden) => {
                let prefix = self.machine.retired();
                prefix.saturating_mul(FORK_SHALLOW_DENOM) >= golden.retired
            }
            None => true,
        }
    }

    /// The prefix-fork run path. Four cases, cheapest first:
    ///
    /// 1. the golden run is known to reach the trigger fewer than `occ`
    ///    times → the fault is **dormant**; replay the memoized golden
    ///    outcome without executing anything;
    /// 2. the key is memoized as shallow-trigger
    ///    ([`RunSession::fork_worthwhile`] said no on its capture run) →
    ///    run the plain fork-free path;
    /// 3. a snapshot for `(input, pc, occ)` is cached → restore it and
    ///    execute only the divergent suffix, with the injector's
    ///    occurrence counter pre-loaded to `occ - 1`
    ///    ([`Injector::resume_occurrences`]);
    /// 4. miss → run the *uninjected* prefix with a fetch breakpoint at
    ///    `(pc, occ)`. A hit snapshots the paused state for future runs
    ///    and continues in place as this injected run (the machine is
    ///    already exactly at the fork point). A finished run never
    ///    reached the trigger: it *is* the golden run (memoized, along
    ///    with the trigger's exact arrival count) and this fault is
    ///    dormant.
    fn run_forked(
        &mut self,
        input: &TestInput,
        specs: &[FaultSpec],
        mode: TriggerMode,
        seed: u64,
        pc: u32,
        occ: u64,
    ) -> (RunOutcome, bool) {
        let cache = self.prefix.clone().expect("fork plan requires a cache");

        if let Some(total) = cache.total_occurrences(input, pc) {
            if total < occ {
                let golden = cache
                    .golden(input)
                    .expect("trigger totals are recorded together with the golden run");
                self.maybe_sample_check(
                    input,
                    specs,
                    mode,
                    seed,
                    &golden.outcome,
                    false,
                    golden.retired,
                );
                self.stats.runs += 1;
                self.stats.prefix_dormant_short_circuits += 1;
                self.stats.prefix_instrs_skipped += golden.retired;
                self.account_injected_memoized(golden.retired, false);
                if let Some(t) = self.telemetry.as_mut() {
                    t.instant(
                        "dormant_short_circuit",
                        vec![arg_u64("pc", pc as u64), arg_u64("occ", occ)],
                    );
                }
                return (golden.outcome, false);
            }
        }

        let plan = if self.prune {
            self.plan_injected(&cache, input, &specs[0])
        } else {
            None
        };

        if let Some(RunPlan::DormantSkip { fired }) = plan {
            if let Some(golden) = cache.golden(input) {
                self.maybe_sample_check(
                    input,
                    specs,
                    mode,
                    seed,
                    &golden.outcome,
                    fired,
                    golden.retired,
                );
                self.stats.runs += 1;
                self.stats.prune_dormant_skips += 1;
                self.stats.prefix_instrs_skipped += golden.retired;
                self.account_injected_memoized(golden.retired, fired);
                if let Some(t) = self.telemetry.as_mut() {
                    t.instant(
                        "prune_dormant",
                        vec![arg_u64("pc", pc as u64), arg_u64("occ", occ)],
                    );
                }
                return (golden.outcome, fired);
            }
        }

        if self.prune {
            let spec = &specs[0];
            if let Some(class) =
                cache.collapse_match(input, pc, occ, spec.target, spec.when, &spec.what)
            {
                self.maybe_sample_check(
                    input,
                    specs,
                    mode,
                    seed,
                    &class.outcome,
                    class.fired,
                    class.retired,
                );
                self.stats.runs += 1;
                self.stats.prune_collapse_hits += 1;
                self.stats.prefix_instrs_skipped += class.retired;
                self.account_injected_memoized(class.retired, class.fired);
                if let Some(t) = self.telemetry.as_mut() {
                    t.instant(
                        "collapse_hit",
                        vec![arg_u64("pc", pc as u64), arg_u64("occ", occ)],
                    );
                }
                return (class.outcome, class.fired);
            }
        }

        // The planner's Full verdict is a measured shallow/no-site call:
        // take the plain path without probing for a capture. Its Fork
        // verdict overrides the legacy shallow-veto memo (the exact
        // measured depth beats the capture-run estimate).
        let planned_fork = matches!(plan, Some(RunPlan::Fork));
        if matches!(plan, Some(RunPlan::Full)) {
            let result = self.run_cold(input, specs, mode, seed);
            self.maybe_record_collapse(&cache, input, &specs[0], pc, occ, &result.0, result.1);
            return result;
        }

        if !planned_fork && cache.is_shallow(input, pc, occ) {
            self.stats.prefix_shallow_skips += 1;
            if let Some(t) = self.telemetry.as_mut() {
                t.instant(
                    "fork_veto",
                    vec![arg_u64("pc", pc as u64), arg_u64("occ", occ)],
                );
            }
            let result = self.run_cold(input, specs, mode, seed);
            self.maybe_record_collapse(&cache, input, &specs[0], pc, occ, &result.0, result.1);
            return result;
        }

        if let Some(fork) = cache.snapshot(input, pc, occ) {
            self.machine.restore_fork(&self.snapshot, &fork);
            self.machine
                .set_deadline(self.watchdog.map(|d| Instant::now() + d));
            self.stats.runs += 1;
            self.stats.prefix_fork_hits += 1;
            self.stats.prefix_instrs_skipped += fork.retired();
            if let Some(t) = self.telemetry.as_mut() {
                t.instant(
                    "fork_hit",
                    vec![
                        arg_u64("pc", pc as u64),
                        arg_u64("occ", occ),
                        arg_u64("skipped", fork.retired()),
                    ],
                );
            }
            let (outcome, fired) = self.resume_injected(specs, mode, seed, occ);
            self.stats.retired_instrs += self.machine.retired() - fork.retired();
            self.account_injected_memoized(self.machine.retired(), fired);
            self.maybe_record_collapse(&cache, input, &specs[0], pc, occ, &outcome, fired);
            return (outcome, fired);
        }

        self.begin(input);
        let (stop, seen) =
            Self::machine_run_to_fetch(&mut self.machine, &mut self.telemetry, pc, occ);
        match stop {
            FetchStop::Finished(outcome) => {
                let retired = self.machine.retired();
                if self.golden_memoizable(&outcome) {
                    cache.record_golden(
                        input,
                        GoldenRun {
                            outcome: outcome.clone(),
                            retired,
                        },
                    );
                    cache.record_total(input, pc, seen);
                }
                self.account_injected(retired, false);
                if let Some(t) = self.telemetry.as_mut() {
                    t.instant(
                        "fork_miss",
                        vec![
                            arg_u64("pc", pc as u64),
                            arg_u64("occ", occ),
                            arg_str("result", "golden"),
                        ],
                    );
                }
                (outcome, false)
            }
            FetchStop::Hit => {
                let captured = if planned_fork || self.fork_worthwhile(&cache, input) {
                    if cache.insert_snapshot(input, pc, occ, Arc::new(self.machine.fork_snapshot()))
                    {
                        self.stats.prefix_snapshots_built += 1;
                    }
                    "captured"
                } else {
                    // Too shallow to ever pay for a snapshot restore:
                    // remember the verdict so later runs with this key
                    // skip the fork machinery (and its fetch-breakpoint
                    // capture attempt) outright.
                    cache.record_shallow(input, pc, occ);
                    "vetoed"
                };
                if let Some(t) = self.telemetry.as_mut() {
                    t.instant(
                        "fork_miss",
                        vec![
                            arg_u64("pc", pc as u64),
                            arg_u64("occ", occ),
                            arg_str("result", captured),
                        ],
                    );
                }
                let (outcome, fired) = self.resume_injected(specs, mode, seed, occ);
                self.account_injected(self.machine.retired(), fired);
                self.maybe_record_collapse(&cache, input, &specs[0], pc, occ, &outcome, fired);
                (outcome, fired)
            }
        }
    }

    /// Consult the adaptive planner for a single-fault `OpcodeFetch`
    /// run, ensuring `input`'s def-use trace exists first. `None` when
    /// no usable trace is available.
    fn plan_injected(
        &mut self,
        cache: &PrefixCache,
        input: &TestInput,
        spec: &FaultSpec,
    ) -> Option<RunPlan> {
        if let Some(plan) = cache.plan_memo(input, spec) {
            return Some(plan);
        }
        let trace = self.ensure_trace(cache, input)?;
        let plan = self.planner.plan(spec, &trace);
        cache.record_plan(input, spec, plan);
        Some(plan)
    }

    /// The def-use trace for `input`, executing the dedicated traced
    /// clean run on first need. One instrumented execution per input,
    /// amortized over every fault probing that input; the golden run and
    /// the exact trigger totals of every watched PC ride along (the
    /// traced run *is* a complete fault-free run). `None` when tracing
    /// is unavailable (no declared watch PCs) or the traced run's
    /// outcome was not safe to memoize (wall-clock hang).
    fn ensure_trace(&mut self, cache: &PrefixCache, input: &TestInput) -> Option<Arc<DefUseTrace>> {
        let watch = cache.watch_pcs();
        if watch.is_empty() {
            return None;
        }
        if let Some(memo) = cache.trace(input) {
            return memo;
        }
        self.machine.restore(&self.snapshot);
        self.machine.set_input(input.to_tape());
        self.machine
            .set_deadline(self.watchdog.map(|d| Instant::now() + d));
        let mut rec =
            DefUseRecorder::new(self.machine.core(0), &self.code, &watch, input.to_tape());
        let outcome = Self::machine_run(&mut self.machine, &mut self.telemetry, &mut rec);
        let retired = self.machine.retired();
        self.stats.retired_instrs += retired;
        self.stats.prune_trace_runs += 1;
        if let Some(t) = self.telemetry.as_mut() {
            t.instant(
                "trace_run",
                vec![
                    arg_u64("retired", retired),
                    arg_u64("watched", watch.len() as u64),
                ],
            );
        }
        if !self.golden_memoizable(&outcome) {
            // Nondeterministic (wall-clock) hang: memoize the failed
            // attempt so the traced run is not retried for every fault.
            cache.record_trace(input, None);
            return None;
        }
        let trace = Arc::new(rec.finish(&outcome));
        cache.record_golden(input, GoldenRun { outcome, retired });
        for &wpc in watch.iter() {
            cache.record_total(input, wpc, trace.total(wpc).unwrap_or(0));
        }
        cache.record_trace(input, Some(Arc::clone(&trace)));
        Some(trace)
    }

    /// Retain a just-executed fired run as a collapse representative
    /// when its complete corruption log proves exactly what it applied.
    #[allow(clippy::too_many_arguments)]
    fn maybe_record_collapse(
        &mut self,
        cache: &PrefixCache,
        input: &TestInput,
        spec: &FaultSpec,
        pc: u32,
        occ: u64,
        outcome: &RunOutcome,
        fired: bool,
    ) {
        if !self.prune || !fired || !self.golden_memoizable(outcome) {
            return;
        }
        let Some(log) = self.cached.as_ref().and_then(|c| c.injector.fire_log()) else {
            return;
        };
        if !log.complete() {
            return;
        }
        let class = CollapseClass {
            log: Arc::new(log.clone()),
            outcome: outcome.clone(),
            fired,
            retired: self.last_retired,
        };
        if cache.record_collapse(input, pc, occ, spec.target, spec.when, class) {
            self.stats.prune_collapse_logged += 1;
        }
    }

    /// The sampling oracle: re-run a deterministic, seed-keyed fraction
    /// of pruned/collapsed answers in full and compare outcome, fired
    /// flag and retired count against the prediction. The campaign-visible
    /// result is always the prediction; a disagreement only increments
    /// `prune_sample_mispredicts` (asserted zero by the perf-smoke
    /// equivalence gate). Skipped under a wall-clock watchdog, whose
    /// hangs are not reproducible.
    #[allow(clippy::too_many_arguments)]
    fn maybe_sample_check(
        &mut self,
        input: &TestInput,
        specs: &[FaultSpec],
        mode: TriggerMode,
        seed: u64,
        outcome: &RunOutcome,
        fired: bool,
        retired: u64,
    ) {
        if !self.prune || self.prune_sample_pct == 0 || self.watchdog.is_some() {
            return;
        }
        if splitmix64(seed ^ SAMPLE_SALT) % 100 >= u64::from(self.prune_sample_pct) {
            return;
        }
        self.stats.prune_sample_checks += 1;
        let (got, got_fired, got_retired) = self.oracle_run(input, specs, mode, seed);
        if got != *outcome || got_fired != fired || got_retired != retired {
            self.stats.prune_sample_mispredicts += 1;
            if let Some(t) = self.telemetry.as_mut() {
                t.instant("prune_mispredict", vec![arg_u64("seed", seed)]);
            }
        }
    }

    /// A stats-neutral full execution of `(input, specs, seed)` — the
    /// ground truth the sampling oracle compares against. Touches no run
    /// counters; the machine is warm-rebooted by the next run as usual.
    fn oracle_run(
        &mut self,
        input: &TestInput,
        specs: &[FaultSpec],
        mode: TriggerMode,
        seed: u64,
    ) -> (RunOutcome, bool, u64) {
        self.ensure_injector(specs, mode, seed);
        self.machine.restore(&self.snapshot);
        self.machine.set_input(input.to_tape());
        self.machine.set_deadline(None);
        let cached = self.cached.as_mut().expect("cache populated above");
        cached.injector.reset(seed);
        cached
            .injector
            .prepare(&mut self.machine)
            .expect("fault addresses lie in mapped memory");
        let outcome =
            Self::machine_run(&mut self.machine, &mut self.telemetry, &mut cached.injector);
        let fired = cached.injector.any_fired();
        (outcome, fired, self.machine.retired())
    }

    /// Run the injected suffix from the machine's current state (paused
    /// exactly before the trigger's `occ`-th fetch), arming the injector
    /// as if it had observed the whole prefix.
    fn resume_injected(
        &mut self,
        specs: &[FaultSpec],
        mode: TriggerMode,
        seed: u64,
        occ: u64,
    ) -> (RunOutcome, bool) {
        self.ensure_injector(specs, mode, seed);
        let cached = self.cached.as_mut().expect("cache populated above");
        cached.injector.reset(seed);
        cached.injector.resume_occurrences(0, occ - 1);
        cached
            .injector
            .prepare(&mut self.machine)
            .expect("fault addresses lie in mapped memory");
        let outcome =
            Self::machine_run(&mut self.machine, &mut self.telemetry, &mut cached.injector);
        let fired = cached.injector.any_fired();
        (outcome, fired)
    }

    /// One classified campaign run: at most one fault, hardware triggers —
    /// the contract of [`crate::runner::execute`], warm.
    pub fn run(
        &mut self,
        input: &TestInput,
        fault: Option<&FaultSpec>,
        seed: u64,
    ) -> (FailureMode, bool) {
        let span_start = self.telemetry.as_ref().map(WorkerTelemetry::now_us);
        let blocks_before = span_start.map(|_| self.machine.block_cache_stats());
        let outcome = match fault {
            None => (self.run_clean(input), false),
            Some(spec) => self.run_injected(
                input,
                std::slice::from_ref(spec),
                TriggerMode::Hardware,
                seed,
            ),
        };
        let (outcome, fired) = outcome;
        let mode = classify_outcome(&outcome, self.expected_for(input));
        if span_start.is_some() {
            self.observe_run(
                span_start,
                blocks_before,
                &outcome,
                mode,
                fired,
                fault.is_some(),
            );
        }
        (mode, fired)
    }

    /// Post-run telemetry: block-cache deltas, the trigger/watchdog
    /// instants, the `run` span, and the per-run metric observations.
    /// Only called when telemetry is attached, so the disabled path pays
    /// exactly the one `Option` test in [`RunSession::run`].
    fn observe_run(
        &mut self,
        span_start: Option<u64>,
        blocks_before: Option<swifi_vm::blocks::BlockCacheStats>,
        outcome: &RunOutcome,
        mode: FailureMode,
        fired: bool,
        injected: bool,
    ) {
        let blocks = self.machine.block_cache_stats();
        let retired = self.last_retired;
        let watchdog = self.watchdog;
        let poll = self.machine.watchdog_poll();
        let Some(t) = self.telemetry.as_mut() else {
            return;
        };
        if let Some(before) = &blocks_before {
            let built = blocks.blocks_built - before.blocks_built;
            if built > 0 {
                t.instant("block_translate", vec![arg_u64("blocks", built)]);
            }
            let killed = blocks.blocks_invalidated - before.blocks_invalidated;
            if killed > 0 {
                t.instant("block_invalidate", vec![arg_u64("blocks", killed)]);
            }
        }
        if fired {
            t.instant("trigger_fire", vec![arg_u64("retired", retired)]);
        }
        if matches!(outcome, RunOutcome::Hang { .. }) {
            if let Some(budget) = watchdog {
                t.instant(
                    "watchdog_hang",
                    vec![
                        arg_u64("budget_ms", budget.as_millis() as u64),
                        arg_u64("poll", poll as u64),
                    ],
                );
            }
        }
        if let Some(start) = span_start {
            t.complete(
                "run",
                start,
                vec![
                    arg_str("mode", format!("{mode:?}")),
                    arg_str("fired", if fired { "yes" } else { "no" }),
                    arg_u64("retired", retired),
                ],
            );
            t.observe(metric_names::RUN_LATENCY_US, (t.now_us() - start) as f64);
        }
        t.counter_add("runs", 1);
        if injected {
            if fired {
                t.counter_add("fired_runs", 1);
            } else {
                t.counter_add("dormant_runs", 1);
            }
        }
        t.observe(metric_names::RETIRED_INSTRS_PER_RUN, retired as f64);
    }

    /// The oracle's expected output for `input`, computed once per
    /// session — or once per *campaign* when a shared [`PrefixCache`]
    /// backs the per-session map.
    fn expected_for(&mut self, input: &TestInput) -> &[u8] {
        if !self.expected.contains_key(input) {
            let expected = match &self.prefix {
                Some(cache) => cache.expected_output(input),
                None => Arc::new(input.expected_output()),
            };
            self.expected.insert(input.clone(), expected);
        }
        self.expected[input].as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_core::locations::generate_error_set;
    use swifi_lang::compile;
    use swifi_programs::program;

    #[test]
    fn warm_session_matches_cold_execute() {
        // The equivalence contract at campaign granularity: a session run
        // over many (fault, input) pairs must agree with the cold-boot
        // `execute` for every pair, in any interleaving.
        let target = program("JB.team6").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let set = generate_error_set(&compiled.debug, 4, 4, 9);
        let faults: Vec<_> = set.assign_faults.iter().chain(&set.check_faults).collect();
        let inputs = target.family.test_case(2, 31);
        let mut session = RunSession::new(&compiled, target.family);
        for (fi, fault) in faults.iter().enumerate() {
            for (i, input) in inputs.iter().enumerate() {
                let seed = (fi as u64) << 8 | i as u64;
                let warm = session.run(input, Some(&fault.spec), seed);
                let cold = crate::runner::execute(
                    &compiled,
                    target.family,
                    input,
                    Some(&fault.spec),
                    seed,
                );
                assert_eq!(warm, cold, "fault {fi} input {i}");
            }
        }
        // Interleave clean runs too.
        for input in &inputs {
            let warm = session.run(input, None, 0);
            let cold = crate::runner::execute(&compiled, target.family, input, None, 0);
            assert_eq!(warm, cold);
        }
    }

    #[test]
    fn stats_account_for_every_run() {
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let set = generate_error_set(&compiled.debug, 2, 2, 1);
        let inputs = target.family.test_case(3, 5);
        let mut session = RunSession::new(&compiled, target.family);
        let mut expected_runs = 0u64;
        for fault in set.assign_faults.iter().chain(&set.check_faults) {
            for input in &inputs {
                session.run(input, Some(&fault.spec), 7);
                expected_runs += 1;
            }
        }
        for input in &inputs {
            session.run_clean(input);
            expected_runs += 1;
        }
        let s = session.stats();
        assert_eq!(s.runs, expected_runs);
        assert_eq!(s.injected_runs, expected_runs - inputs.len() as u64);
        assert_eq!(s.fired_runs + s.dormant_runs, s.injected_runs);
        assert!(session.elapsed_secs() >= 0.0);
    }

    #[test]
    fn injector_cache_hits_on_repeated_fault() {
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let set = generate_error_set(&compiled.debug, 2, 0, 1);
        let inputs = target.family.test_case(4, 5);
        let mut session = RunSession::new(&compiled, target.family);
        // Campaign shape: outer loop faults, inner loop inputs.
        for fault in &set.assign_faults {
            for input in &inputs {
                session.run(input, Some(&fault.spec), 3);
            }
        }
        let s = session.stats();
        // One rebuild per distinct fault spec, not per run.
        assert!(
            s.injector_rebuilds as usize <= set.assign_faults.len(),
            "rebuilds {} > distinct faults {}",
            s.injector_rebuilds,
            set.assign_faults.len()
        );
        assert_eq!(
            s.injected_runs,
            (set.assign_faults.len() * inputs.len()) as u64
        );
    }

    #[test]
    fn session_stats_expose_interpreter_counters() {
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let inputs = target.family.test_case(3, 5);
        let mut session = RunSession::new(&compiled, target.family);
        for input in &inputs {
            session.run_clean(input);
        }
        let s = session.stats();
        assert!(s.retired_instrs > 0, "runs retire instructions");
        assert!(s.decode_lines_built > 0, "clean runs populate the cache");
        assert_eq!(s.slow_fetches, 0, "clean runs never take the slow path");

        // The same workload on the reference interpreter decodes nothing
        // and takes the slow path for every retired instruction.
        let mut reference = RunSession::new(&compiled, target.family);
        reference.set_reference_interp(true);
        for input in &inputs {
            reference.run_clean(input);
        }
        let r = reference.stats();
        assert_eq!(
            r.retired_instrs, s.retired_instrs,
            "same instruction stream"
        );
        assert_eq!(r.decode_lines_built, 0);
        assert_eq!(r.slow_fetches, r.retired_instrs);

        // Injected runs with memory faults invalidate the patched lines on
        // restore.
        let set = generate_error_set(&compiled.debug, 2, 2, 1);
        for fault in set.assign_faults.iter().chain(&set.check_faults) {
            for input in &inputs {
                session.run(input, Some(&fault.spec), 9);
            }
        }
        let s2 = session.stats();
        assert!(s2.retired_instrs > s.retired_instrs);

        // Throughput carries the counters through.
        let tp = Throughput::collect(
            std::slice::from_ref(&session),
            std::time::Duration::from_secs(1),
        );
        assert_eq!(tp.retired_instrs, s2.retired_instrs);
        assert!(tp.instrs_per_sec() > 0.0);
    }

    #[test]
    fn watchdog_expiry_classifies_as_hang() {
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let input = &target.family.test_case(1, 5)[0];
        let mut session = RunSession::new(&compiled, target.family);
        // A zero budget fires deterministically before execution starts.
        session.set_watchdog(Some(Duration::ZERO));
        let (mode, fired) = session.run(input, None, 0);
        assert_eq!(mode, FailureMode::Hang);
        assert!(!fired);
        // Disarming restores normal behaviour on the same warm session.
        session.set_watchdog(None);
        let (mode, _) = session.run(input, None, 0);
        assert_eq!(mode, FailureMode::Correct);
        // A generous budget leaves short runs untouched.
        session.set_watchdog(Some(Duration::from_secs(3600)));
        let (mode, _) = session.run(input, None, 0);
        assert_eq!(mode, FailureMode::Correct);
    }

    #[test]
    fn forked_runs_match_full_runs_exactly() {
        // The prefix-fork oracle at session granularity: every (fault,
        // input) pair answered via the fork cache — capture-continue on
        // first sight, fork-hit on the second — must match a fork-free
        // session bit for bit: failure mode, fired flag, and the
        // retired-instruction count a full run would report.
        let target = program("JB.team6").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let set = generate_error_set(&compiled.debug, 4, 4, 13);
        let faults: Vec<_> = set.assign_faults.iter().chain(&set.check_faults).collect();
        let inputs = target.family.test_case(3, 17);

        let mut full = RunSession::new(&compiled, target.family);
        let mut forked = RunSession::new(&compiled, target.family);
        forked.set_prefix_cache(Some(crate::prefix::PrefixCache::shared()));

        for (fi, fault) in faults.iter().enumerate() {
            for (i, input) in inputs.iter().enumerate() {
                let seed = (fi as u64) << 8 | i as u64;
                let want = full.run(input, Some(&fault.spec), seed);
                let want_retired = full.last_retired();
                for pass in ["capture", "fork-hit"] {
                    let got = forked.run(input, Some(&fault.spec), seed);
                    assert_eq!(got, want, "fault {fi} input {i} ({pass})");
                    assert_eq!(
                        forked.last_retired(),
                        want_retired,
                        "fault {fi} input {i} ({pass}) retired count"
                    );
                }
            }
        }
        let s = forked.stats();
        assert!(s.prefix_fork_hits > 0, "second passes must fork: {s:?}");
        assert!(s.prefix_snapshots_built > 0, "{s:?}");
        assert_eq!(s.runs, 2 * full.stats().runs);
        assert_eq!(s.fired_runs + s.dormant_runs, s.injected_runs);
    }

    #[test]
    fn nth_firing_counts_occurrences_across_the_fork_boundary() {
        // A snapshot taken at occurrence k-1 must not double-count: the
        // resumed injector sees the pending fetch as occurrence k exactly
        // once. Sweep Nth(1..=6) over a trigger inside a loop so the
        // occurrence arithmetic is exercised on both sides of the
        // boundary, running each spec twice (capture, then fork).
        use swifi_core::fault::Firing;
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let set = generate_error_set(&compiled.debug, 4, 0, 21);
        let inputs = target.family.test_case(2, 23);

        let mut full = RunSession::new(&compiled, target.family);
        let mut forked = RunSession::new(&compiled, target.family);
        forked.set_prefix_cache(Some(crate::prefix::PrefixCache::shared()));

        for fault in &set.assign_faults {
            for k in 1..=6u64 {
                let mut spec = fault.spec;
                spec.when = Firing::Nth(k);
                for input in &inputs {
                    let want = full.run(input, Some(&spec), k);
                    for pass in ["capture", "fork-hit"] {
                        let got = forked.run(input, Some(&spec), k);
                        assert_eq!(got, want, "Nth({k}) {pass} at {:#x}", fault.site_addr);
                        assert_eq!(forked.last_retired(), full.last_retired(), "Nth({k})");
                    }
                }
            }
        }
    }

    #[test]
    fn dormant_faults_short_circuit_after_the_golden_run() {
        // A fault whose trigger occurs fewer than `occ` times in the
        // golden run: the first encounter finishes the (golden) run and
        // records the trigger total; every later encounter is classified
        // dormant without executing a single instruction.
        use swifi_core::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let input = &target.family.test_case(1, 29)[0];
        let site = generate_error_set(&compiled.debug, 1, 0, 29).assign_faults[0].site_addr;
        // Far beyond any plausible loop count for the short JamesB runs.
        let spec = FaultSpec {
            what: ErrorOp::Xor(1),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(site),
            when: Firing::Nth(1_000_000),
        };

        let mut full = RunSession::new(&compiled, target.family);
        let mut forked = RunSession::new(&compiled, target.family);
        forked.set_prefix_cache(Some(crate::prefix::PrefixCache::shared()));

        let want = full.run(input, Some(&spec), 1);
        assert!(!want.1, "the trigger cannot reach occurrence 10^6");
        let first = forked.run(input, Some(&spec), 1);
        assert_eq!(first, want);
        let before = forked.stats();
        assert_eq!(before.prefix_dormant_short_circuits, 0);

        let second = forked.run(input, Some(&spec), 2);
        assert_eq!(second, want);
        assert_eq!(forked.last_retired(), full.last_retired());
        let after = forked.stats();
        assert_eq!(after.prefix_dormant_short_circuits, 1);
        assert_eq!(
            after.retired_instrs, before.retired_instrs,
            "the short-circuited run must not execute"
        );
        assert_eq!(after.dormant_runs, 2);
        assert!(after.prefix_instrs_skipped > before.prefix_instrs_skipped);
    }

    #[test]
    fn shallow_triggers_skip_fork_capture_once_golden_is_known() {
        // The JB.team11 fix: once the golden memo proves a trigger sits
        // near the start of the run, the capture run declines to
        // snapshot and every later run with that fault takes the plain
        // path — still matching a fork-free session exactly.
        use swifi_core::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let input = &target.family.test_case(1, 37)[0];
        // The entry point: occurrence 1 has a zero-instruction prefix,
        // the shallowest trigger possible.
        let spec = FaultSpec {
            what: ErrorOp::Xor(1),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(compiled.image.entry),
            when: Firing::Nth(1),
        };

        let mut full = RunSession::new(&compiled, target.family);
        let mut forked = RunSession::new(&compiled, target.family);
        forked.set_prefix_cache(Some(crate::prefix::PrefixCache::shared()));

        // Record the golden run so the gate has a depth to compare to.
        assert_eq!(forked.run_clean(input), full.run_clean(input));

        let want = full.run(input, Some(&spec), 5);
        // Capture run: the gate vetoes the snapshot but the run itself
        // proceeds from the paused prefix as usual.
        assert_eq!(forked.run(input, Some(&spec), 5), want);
        let s = forked.stats();
        assert_eq!(s.prefix_snapshots_built, 0, "shallow prefix not captured");
        assert_eq!(s.prefix_shallow_skips, 0, "first run still captures");

        // Later runs consult the memo and never touch the fork machinery.
        assert_eq!(forked.run(input, Some(&spec), 5), want);
        assert_eq!(forked.last_retired(), full.last_retired());
        let s = forked.stats();
        assert_eq!(s.prefix_shallow_skips, 1);
        assert_eq!(s.prefix_snapshots_built, 0);
        assert_eq!(s.prefix_fork_hits, 0);
    }

    #[test]
    fn clean_runs_hit_the_golden_memo() {
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let inputs = target.family.test_case(2, 31);
        let mut a = RunSession::new(&compiled, target.family);
        let mut b = RunSession::new(&compiled, target.family);
        let cache = crate::prefix::PrefixCache::shared();
        a.set_prefix_cache(Some(cache.clone()));
        b.set_prefix_cache(Some(cache));
        for input in &inputs {
            let first = a.run_clean(input);
            let full_retired = a.last_retired();
            // Session b shares the cache: its "run" is answered without
            // executing, but reports the same outcome and retired count.
            let memo = b.run_clean(input);
            assert_eq!(memo, first);
            assert_eq!(b.last_retired(), full_retired);
        }
        let sb = b.stats();
        assert_eq!(sb.prefix_golden_hits, inputs.len() as u64);
        assert_eq!(sb.retired_instrs, 0, "memoized runs execute nothing");
        assert_eq!(sb.runs, inputs.len() as u64, "memoized runs still count");
    }

    #[test]
    fn pruned_runs_match_full_runs_exactly() {
        // The trace-guided pruning oracle at session granularity: every
        // (fault, input) pair answered under pruning — dormancy proofs,
        // collapse classes, the adaptive planner — must match a
        // prune-free session bit for bit, with the 100% sampling oracle
        // double-checking every pruned answer against a full run.
        use swifi_core::fault::Trigger;
        let target = program("JB.team6").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let set = generate_error_set(&compiled.debug, 4, 4, 13);
        let faults: Vec<_> = set.assign_faults.iter().chain(&set.check_faults).collect();
        let inputs = target.family.test_case(3, 17);

        let mut full = RunSession::new(&compiled, target.family);
        let mut pruned = RunSession::new(&compiled, target.family);
        let cache = crate::prefix::PrefixCache::shared();
        cache.set_watch_pcs(
            faults
                .iter()
                .filter_map(|f| match f.spec.trigger {
                    Trigger::OpcodeFetch(pc) => Some(pc),
                    _ => None,
                })
                .collect(),
        );
        pruned.set_prefix_cache(Some(cache));
        pruned.set_prune(true, 100);

        for (fi, fault) in faults.iter().enumerate() {
            for (i, input) in inputs.iter().enumerate() {
                let seed = (fi as u64) << 8 | i as u64;
                let want = full.run(input, Some(&fault.spec), seed);
                let want_retired = full.last_retired();
                for pass in ["first", "repeat"] {
                    let got = pruned.run(input, Some(&fault.spec), seed);
                    assert_eq!(got, want, "fault {fi} input {i} ({pass})");
                    assert_eq!(
                        pruned.last_retired(),
                        want_retired,
                        "fault {fi} input {i} ({pass}) retired count"
                    );
                }
            }
        }
        let s = pruned.stats();
        assert_eq!(s.prune_sample_mispredicts, 0, "{s:?}");
        assert!(s.prune_sample_checks > 0, "pruning must prune: {s:?}");
        assert!(
            s.prune_trace_runs as u64 <= inputs.len() as u64,
            "one traced run per input at most: {s:?}"
        );
        assert!(
            s.prune_collapse_hits > 0,
            "repeat passes must collapse onto the first executions: {s:?}"
        );
        assert_eq!(s.fired_runs + s.dormant_runs, s.injected_runs);
        assert_eq!(s.runs, 2 * full.stats().runs);
    }

    #[test]
    fn provable_dormancy_skips_identity_corruption() {
        // An InstrBus corruption that reproduces the fetched word
        // bit-exactly (xor 0) fires without any architectural effect:
        // the planner proves it dormant from the def-use trace and the
        // run is answered with the golden outcome, never executing.
        use swifi_core::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let input = &target.family.test_case(1, 29)[0];
        let site = generate_error_set(&compiled.debug, 1, 0, 29).assign_faults[0].site_addr;
        let spec = FaultSpec {
            what: ErrorOp::Xor(0),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(site),
            when: Firing::First,
        };

        let mut full = RunSession::new(&compiled, target.family);
        let want = full.run(input, Some(&spec), 3);

        let mut pruned = RunSession::new(&compiled, target.family);
        let cache = crate::prefix::PrefixCache::shared();
        cache.set_watch_pcs(vec![site]);
        pruned.set_prefix_cache(Some(cache));
        pruned.set_prune(true, 100);
        let got = pruned.run(input, Some(&spec), 3);
        assert_eq!(got, want);
        let s = pruned.stats();
        assert_eq!(s.prune_trace_runs, 1, "{s:?}");
        assert_eq!(s.prune_dormant_skips, 1, "{s:?}");
        assert_eq!(s.prune_sample_checks, 1, "100% sampling: {s:?}");
        assert_eq!(s.prune_sample_mispredicts, 0, "{s:?}");
        assert_eq!(s.runs, 1, "the traced clean run is not a campaign run");
        assert_eq!(pruned.last_retired(), full.last_retired());
    }

    #[test]
    fn prune_without_watch_pcs_is_inert() {
        // Enabling pruning without declared trigger PCs must change
        // nothing: no traced runs, no skips, identical outcomes.
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let set = generate_error_set(&compiled.debug, 2, 2, 7);
        let inputs = target.family.test_case(2, 9);
        let mut plain = RunSession::new(&compiled, target.family);
        plain.set_prefix_cache(Some(crate::prefix::PrefixCache::shared()));
        let mut pruned = RunSession::new(&compiled, target.family);
        pruned.set_prefix_cache(Some(crate::prefix::PrefixCache::shared()));
        pruned.set_prune(true, 100);
        for fault in set.assign_faults.iter().chain(&set.check_faults) {
            for (i, input) in inputs.iter().enumerate() {
                let seed = 31 + i as u64;
                assert_eq!(
                    pruned.run(input, Some(&fault.spec), seed),
                    plain.run(input, Some(&fault.spec), seed)
                );
            }
        }
        let s = pruned.stats();
        assert_eq!(s.prune_trace_runs, 0);
        assert_eq!(s.prune_dormant_skips, 0);
        assert_eq!(s.prune_sample_checks, 0);
    }

    #[test]
    fn try_run_injected_surfaces_structured_errors() {
        use swifi_core::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
        let target = program("JB.team11").unwrap();
        let compiled = compile(target.source_correct).unwrap();
        let input = &target.family.test_case(1, 5)[0];
        let mut session = RunSession::new(&compiled, target.family);

        // A memory-resident fault addressing unmapped guest memory fails
        // at prepare time with a structured error, not a panic.
        let unmapped = FaultSpec {
            what: ErrorOp::Replace(0),
            target: Target::Memory(0xFFFF_0000),
            trigger: Trigger::OpcodeFetch(0x100),
            when: Firing::First,
        };
        let err = session
            .try_run_injected(
                input,
                std::slice::from_ref(&unmapped),
                TriggerMode::Hardware,
                1,
            )
            .unwrap_err();
        assert!(matches!(err, SessionError::Prepare(_)), "{err}");

        // A fault set exceeding the hardware breakpoint budget fails at
        // build time.
        let many: Vec<FaultSpec> = (0..4)
            .map(|i| FaultSpec {
                what: ErrorOp::Xor(1),
                target: Target::InstrBus,
                trigger: Trigger::OpcodeFetch(0x100 + 4 * i),
                when: Firing::First,
            })
            .collect();
        let err = session
            .try_run_injected(input, &many, TriggerMode::Hardware, 1)
            .unwrap_err();
        assert!(matches!(err, SessionError::InjectorBuild(_)), "{err}");
        assert!(err.to_string().contains("injector build failed"));

        // Failed attempts leave no half-counted runs behind and the
        // session stays fully usable.
        let s = session.stats();
        assert_eq!(s.runs, 0, "{s:?}");
        assert_eq!(s.injected_runs, 0, "{s:?}");
        let (mode, fired) = session.run(input, None, 0);
        assert_eq!(mode, FailureMode::Correct);
        assert!(!fired);

        // The happy path matches the infallible entry point.
        let spec = FaultSpec {
            what: ErrorOp::Xor(1),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(compiled.image.entry),
            when: Firing::First,
        };
        let ok = session
            .try_run_injected(input, std::slice::from_ref(&spec), TriggerMode::Hardware, 9)
            .unwrap();
        let mut twin = RunSession::new(&compiled, target.family);
        let want = twin.run_injected(input, std::slice::from_ref(&spec), TriggerMode::Hardware, 9);
        assert_eq!(ok, want);
    }

    #[test]
    fn throughput_equality_ignores_wall_clock() {
        let a = Throughput {
            runs: 10,
            fired_runs: 6,
            dormant_runs: 4,
            elapsed_secs: 1.0,
            ..Throughput::default()
        };
        let b = Throughput {
            runs: 10,
            fired_runs: 6,
            dormant_runs: 4,
            elapsed_secs: 9.0,
            retired_instrs: 1234,
            slow_fetches: 55,
            ..Throughput::default()
        };
        assert_eq!(a, b, "interpreter counters do not affect equality");
        let c = Throughput { runs: 11, ..a };
        assert_ne!(a, c);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.runs, 20);
        assert!((m.elapsed_secs - 10.0).abs() < 1e-12);
        assert!(m.runs_per_sec() > 0.0);
    }
}
