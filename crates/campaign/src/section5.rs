//! Emulation of the seven real software faults (paper §5).
//!
//! For each real fault: diff the corrected and faulty binaries, classify
//! emulability (classes A/B/C), and — where emulation is possible —
//! *verify* it by running the corrected program with the injected fault
//! against the actual faulty program on a batch of random inputs. The
//! paper's criterion: "If the results are the same in both runs it means
//! Xception do emulate the fault accurately."

use serde::{Deserialize, Serialize};
use swifi_core::emulate::{emulation_faults, plan_emulation, EmulationStrategy, EmulationVerdict};
use swifi_core::injector::TriggerMode;
use swifi_lang::compile;
use swifi_programs::all_programs;

use crate::engine::{split_records, CampaignEngine, CampaignOptions, CheckpointHeader};
use crate::prefix::PrefixCache;
use crate::session::RunSession;

/// One §5 result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section5Row {
    /// Program name.
    pub program: String,
    /// ODC type of the real fault.
    pub defect_type: String,
    /// Fault description.
    pub description: String,
    /// Paper class: `A` emulable, `B` breakpoint-budget exceeded,
    /// `C` not emulable.
    pub class: char,
    /// Number of differing instruction words (0 for class C).
    pub word_diffs: usize,
    /// Distinct trigger addresses the emulation needs.
    pub required_triggers: usize,
    /// Percentage of verification runs where the emulated behaviour
    /// matched the real faulty program exactly (`None` for class C, which
    /// cannot be attempted).
    pub emulation_accuracy: Option<f64>,
    /// Trigger mode the verification used.
    pub mode: Option<String>,
}

/// Run the §5 experiment: emulability analysis plus behavioural
/// verification over `inputs_per_fault` random inputs for each fault.
pub fn section5(inputs_per_fault: usize, seed: u64) -> Vec<Section5Row> {
    section5_with(inputs_per_fault, seed, &CampaignOptions::default())
        .expect("no checkpoint configured")
}

/// [`section5`] under explicit robustness options; each program's
/// verification batch is one checkpoint phase. Abnormal runs drop out of
/// the accuracy denominator.
///
/// # Errors
///
/// Checkpoint I/O failures and header/record corruption.
pub fn section5_with(
    inputs_per_fault: usize,
    seed: u64,
    opts: &CampaignOptions,
) -> Result<Vec<Section5Row>, String> {
    let header = CheckpointHeader::new("section5", seed, inputs_per_fault as u64);
    let mut engine = CampaignEngine::new(header, opts)?;
    let mut chaos_base = 0u64;
    let mut rows = Vec::new();
    for p in all_programs() {
        let Some(faulty_src) = p.source_faulty else {
            continue;
        };
        let fault = p.real_fault.expect("faulty implies fault");
        let corrected = compile(p.source_correct).expect("corrected compiles");
        let faulty = compile(faulty_src).expect("faulty compiles");
        let verdict = plan_emulation(&corrected.image, &faulty.image);
        let (class, diffs, required, mode) = match &verdict {
            EmulationVerdict::Identical => ('-', vec![], 0, None),
            EmulationVerdict::Emulable { diffs } => {
                ('A', diffs.clone(), diffs.len(), Some(TriggerMode::Hardware))
            }
            EmulationVerdict::BreakpointBudgetExceeded {
                diffs,
                required_triggers,
            } => (
                'B',
                diffs.clone(),
                *required_triggers,
                Some(TriggerMode::IntrusiveTraps),
            ),
            EmulationVerdict::NotEmulable { .. } => ('C', vec![], 0, None),
        };
        let accuracy = match mode {
            None => None,
            Some(trigger_mode) => {
                let specs = emulation_faults(&diffs, EmulationStrategy::FetchCorruption);
                let inputs = p.family.test_case(inputs_per_fault, seed);
                let base = chaos_base;
                chaos_base += inputs.len() as u64;
                // Caches are per compiled binary: the corrected and the
                // real faulty program each get their own.
                let emulated_prefix = (!opts.no_prefix_fork).then(PrefixCache::shared);
                let real_prefix = (!opts.no_prefix_fork).then(PrefixCache::shared);
                // Each worker carries a warm session pair: the corrected
                // binary (for the emulated runs) and the real faulty binary
                // (the reference), both restored between inputs.
                let (records, _sessions) = engine.run_phase(
                    p.name,
                    &inputs,
                    || {
                        let mut emulated_s = RunSession::new(&corrected, p.family);
                        let mut real_s = RunSession::new(&faulty, p.family);
                        opts.configure_session(&mut emulated_s);
                        opts.configure_session(&mut real_s);
                        emulated_s.set_prefix_cache(emulated_prefix.clone());
                        real_s.set_prefix_cache(real_prefix.clone());
                        emulated_s.set_block_cache(!opts.no_block_cache);
                        real_s.set_block_cache(!opts.no_block_cache);
                        (emulated_s, real_s)
                    },
                    |(emulated_s, real_s), i, input| {
                        if opts.chaos_panic == Some(base + i as u64) {
                            panic!("chaos-panic injected at campaign item {}", base + i as u64);
                        }
                        // Emulated run: corrected binary + injected faults.
                        let (emulated, _) =
                            emulated_s.run_injected(input, &specs, trigger_mode, seed);
                        // Reference run: the real faulty binary.
                        let real = real_s.run_clean(input);
                        emulated.output() == real.output()
                    },
                    |i, _| format!("{} verification input #{i}", p.name),
                )?;
                let (matches, _abnormal) = split_records(records);
                let ok = matches.iter().filter(|&&(_, b)| b).count();
                Some(ok as f64 * 100.0 / matches.len().max(1) as f64)
            }
        };
        rows.push(Section5Row {
            program: p.name.to_string(),
            defect_type: fault.defect_type.to_string(),
            description: fault.description.to_string(),
            class,
            word_diffs: diffs.len(),
            required_triggers: required,
            emulation_accuracy: accuracy,
            mode: mode.map(|m| format!("{m:?}")),
        });
    }
    Ok(rows)
}

/// The §5 headline: fraction of field faults beyond SWIFI emulation
/// (≈ 44 %), computed from the encoded field distribution.
pub fn not_emulable_field_fraction() -> f64 {
    swifi_odc::FieldDistribution::approx_field_data().not_emulable_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_classes_match_the_paper() {
        let rows = section5(4, 7);
        assert_eq!(rows.len(), 7);
        let class_of = |name: &str| rows.iter().find(|r| r.program == name).unwrap().class;
        // Assignment/checking faults with point corrections: class A.
        assert_eq!(class_of("C.team1"), 'A', "checking fault is emulable");
        assert_eq!(class_of("C.team4"), 'A', "assignment fault is emulable");
        // The stack-shift fault exceeds the two breakpoint registers.
        assert_eq!(class_of("JB.team6"), 'B');
        // Algorithm faults restructure code: class C.
        for name in ["C.team2", "C.team3", "C.team5", "JB.team7"] {
            assert_eq!(class_of(name), 'C', "{name} should be class C");
        }
    }

    #[test]
    fn emulable_faults_reproduce_behaviour_exactly() {
        let rows = section5(6, 3);
        for r in &rows {
            if let Some(acc) = r.emulation_accuracy {
                assert!(
                    (acc - 100.0).abs() < f64::EPSILON,
                    "{} emulation accuracy {acc}%, expected 100%",
                    r.program
                );
            }
        }
    }

    #[test]
    fn field_fraction_is_the_44_percent_headline() {
        let f = not_emulable_field_fraction();
        assert!((f - 0.44).abs() < 0.005);
    }
}
