//! Empirical estimation of the fault-exposure chain (paper Figure 2).
//!
//! The paper models a software fault's path to failure as
//! `p1 · p2 · p3` — the probabilities that the faulty code is executed,
//! that its execution generates errors, and that the errors become a
//! failure. Error injection forces `p1 = p2 = 1`, which is precisely why
//! injected faults hit so much harder than real ones (§6.4).
//!
//! This module measures the chain for the *real* faults whose machine
//! footprint is addressable (emulability classes A and B): `p1` is
//! observed by profiling whether any faulty instruction executed, and the
//! combined `p2·p3` as the failure rate conditioned on execution.

use serde::{Deserialize, Serialize};
use swifi_core::emulate::{plan_emulation, EmulationVerdict};
use swifi_lang::compile;
use swifi_programs::all_programs;
use swifi_vm::inspect::Profiler;
use swifi_vm::machine::RunOutcome;

use crate::engine::{split_records, CampaignEngine, CampaignOptions, CheckpointHeader};
use crate::prefix::PrefixCache;
use crate::session::RunSession;

/// Measured exposure chain for one real fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExposureEstimate {
    /// Program name.
    pub program: String,
    /// Runs measured.
    pub runs: usize,
    /// P(faulty code executed) — the measured `p1`.
    pub p1: f64,
    /// P(failure | faulty code executed) — the combined `p2·p3`.
    pub p23: f64,
    /// Overall failure probability (should equal `p1 · p23` up to
    /// sampling noise; kept separately as a consistency check).
    pub failure_rate: f64,
}

impl ExposureEstimate {
    /// The acceleration factor error injection buys on this fault:
    /// forcing `p1 = p2 = 1` leaves `p3 ≤ p23`, so the factor is at least
    /// `1 / p1` (infinite when the fault never fails in the sample).
    pub fn min_acceleration(&self) -> Option<f64> {
        if self.failure_rate == 0.0 || self.p1 == 0.0 {
            None
        } else {
            Some(1.0 / self.p1)
        }
    }
}

/// Measure the exposure chain for every class A/B real fault over `runs`
/// random inputs per program.
pub fn estimate_exposure(runs: usize, seed: u64) -> Vec<ExposureEstimate> {
    estimate_exposure_with(runs, seed, &CampaignOptions::default())
        .expect("no checkpoint configured")
}

/// [`estimate_exposure`] under explicit robustness options; each program
/// is one checkpoint phase and each profiled run one work item. Abnormal
/// runs drop out of both numerator and denominator, keeping the measured
/// probabilities consistent.
///
/// # Errors
///
/// Checkpoint I/O failures and header/record corruption.
pub fn estimate_exposure_with(
    runs: usize,
    seed: u64,
    opts: &CampaignOptions,
) -> Result<Vec<ExposureEstimate>, String> {
    let header = CheckpointHeader::new("exposure", seed, runs as u64);
    let mut engine = CampaignEngine::new(header, opts)?;
    let mut chaos_base = 0u64;
    let mut out = Vec::new();
    for p in all_programs() {
        let Some(faulty_src) = p.source_faulty else {
            continue;
        };
        let corrected = compile(p.source_correct).expect("compiles");
        let faulty = compile(faulty_src).expect("compiles");
        let diffs = match plan_emulation(&corrected.image, &faulty.image) {
            EmulationVerdict::Emulable { diffs } => diffs,
            EmulationVerdict::BreakpointBudgetExceeded { diffs, .. } => diffs,
            // Class C faults have no addressable footprint to profile.
            _ => continue,
        };
        let addrs: Vec<u32> = diffs.iter().map(|d| d.addr).collect();
        let inputs = p.family.test_case(runs, seed);
        let base = chaos_base;
        chaos_base += inputs.len() as u64;
        // Profiled runs never fork (they carry an inspector), but the
        // shared cache still pools the per-input oracle memos.
        let prefix = (!opts.no_prefix_fork).then(PrefixCache::shared);
        let (records, _sessions) = engine.run_phase(
            p.name,
            &inputs,
            || {
                let mut s = RunSession::new(&faulty, p.family);
                opts.configure_session(&mut s);
                s.set_prefix_cache(prefix.clone());
                s.set_block_cache(!opts.no_block_cache);
                s
            },
            |session, i, input| {
                if opts.chaos_panic == Some(base + i as u64) {
                    panic!("chaos-panic injected at campaign item {}", base + i as u64);
                }
                let mut prof = Profiler::new();
                let outcome = session.run_with(input, &mut prof);
                let executed = addrs.iter().any(|&a| prof.executed(a));
                let failed = match outcome {
                    RunOutcome::Completed {
                        exit_code: 0,
                        output,
                    } => output != input.expected_output(),
                    _ => true,
                };
                (executed, failed)
            },
            |i, _| format!("{} profiled input #{i}", p.name),
        )?;
        let (per_run, _abnormal) = split_records(records);
        // Denominator = runs that actually completed; an abnormal run
        // contributes to neither side of a probability.
        let measured = per_run.len();
        let executed = per_run.iter().filter(|&&(_, (e, _))| e).count();
        let failed = per_run.iter().filter(|&&(_, (_, f))| f).count();
        let failed_and_executed = per_run.iter().filter(|&&(_, (e, f))| e && f).count();
        out.push(ExposureEstimate {
            program: p.name.to_string(),
            runs: measured,
            p1: executed as f64 / measured.max(1) as f64,
            p23: if executed == 0 {
                0.0
            } else {
                failed_and_executed as f64 / executed as f64
            },
            failure_rate: failed as f64 / measured.max(1) as f64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_addressable_faults() {
        let est = estimate_exposure(60, 3);
        let names: Vec<&str> = est.iter().map(|e| e.program.as_str()).collect();
        // Classes A and B: the two assignment faults and the checking one.
        assert!(names.contains(&"C.team1"));
        assert!(names.contains(&"C.team4"));
        assert!(names.contains(&"JB.team6"));
        // Class C faults are excluded.
        assert!(!names.contains(&"C.team5"));
    }

    #[test]
    fn chain_is_consistent() {
        for e in estimate_exposure(80, 9) {
            assert!((0.0..=1.0).contains(&e.p1), "{e:?}");
            assert!((0.0..=1.0).contains(&e.p23), "{e:?}");
            // failure ⊆ executed for these faults: a fault that never ran
            // cannot fail, so rate ≈ p1·p23 exactly in-sample.
            assert!(
                (e.failure_rate - e.p1 * e.p23).abs() < 1e-9,
                "inconsistent chain: {e:?}"
            );
        }
    }

    #[test]
    fn loop_faults_have_high_p1_low_p23() {
        // C.team1/C.team4's faulty instructions sit in always-executed
        // loops: p1 ≈ 1 while p2·p3 stays small — the paper's argument for
        // why trigger representativeness (not type) is the hard part.
        let est = estimate_exposure(100, 5);
        let team1 = est.iter().find(|e| e.program == "C.team1").unwrap();
        assert!(team1.p1 > 0.95, "{team1:?}");
        assert!(team1.p23 < 0.5, "{team1:?}");
    }
}
