//! Plain-text rendering of tables and figure series, in the layout of the
//! paper's tables (percentages to one decimal, like Table 1's "7.3%").

use crate::engine::PhaseTime;
use crate::runner::{FailureMode, ModeCounts};
use crate::section6::ProgramCampaign;
use crate::session::Throughput;
use crate::source::SourceCampaign;

/// Render an aligned text table.
///
/// # Examples
///
/// ```
/// let t = swifi_campaign::report::render_table(
///     &["Program", "% Wrong"],
///     &[vec!["C.team1".into(), "7.3%".into()]],
/// );
/// assert!(t.contains("C.team1"));
/// assert!(t.starts_with("Program"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.chars().count()..widths[i] {
                line.push(' ');
            }
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    // saturating: an empty header list must yield an empty table, not an
    // underflow panic.
    let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a percentage the way the paper prints them (one decimal, `%`).
pub fn pct(v: f64) -> String {
    if v != 0.0 && v < 0.1 {
        // Table 1 prints the tiny JB.team6 rate as "0.05%".
        format!("{v:.2}%")
    } else {
        format!("{v:.1}%")
    }
}

/// Render one failure-mode distribution as the four percentage cells used
/// by Figures 7–10.
pub fn mode_cells(counts: &ModeCounts) -> Vec<String> {
    FailureMode::ALL
        .iter()
        .map(|&m| pct(counts.pct(m)))
        .collect()
}

/// Headers matching [`mode_cells`].
pub const MODE_HEADERS: [&str; 4] = ["Correct", "Incorrect", "Hang", "Crash"];

/// One-line summary of a campaign's run-engine throughput, e.g.
/// `4200 runs in 1.3s (3230.8 runs/s, 61.2 Minstr/s), 3900 fired / 300 dormant`.
pub fn throughput_line(tp: &Throughput) -> String {
    format!(
        "{} runs in {:.1}s ({:.1} runs/s, {:.1} Minstr/s), {} fired / {} dormant",
        tp.runs,
        tp.elapsed_secs,
        tp.runs_per_sec(),
        tp.instrs_per_sec() / 1e6,
        tp.fired_runs,
        tp.dormant_runs
    )
}

/// One-line summary of the sessions' decode-cache behaviour, e.g.
/// `icache: 1204 lines built, 96 invalidated, 812 slow fetches (0.01% of 9.1M instrs)`.
pub fn decode_cache_line(tp: &Throughput) -> String {
    let slow_pct = if tp.retired_instrs > 0 {
        tp.slow_fetches as f64 * 100.0 / tp.retired_instrs as f64
    } else {
        0.0
    };
    format!(
        "icache: {} lines built, {} invalidated, {} slow fetches ({:.2}% of {:.1}M instrs)",
        tp.decode_lines_built,
        tp.decode_invalidations,
        tp.slow_fetches,
        slow_pct,
        tp.retired_instrs as f64 / 1e6,
    )
}

/// One-line summary of the prefix-fork cache, e.g.
/// `prefix-fork: 40 snapshots, 3960 fork hits, 120 dormant short-circuits,
/// 6 golden hits, 14 shallow skips, 12.3M instrs skipped (57.4% of total)`.
pub fn prefix_fork_line(tp: &Throughput) -> String {
    let total = tp.retired_instrs + tp.prefix_instrs_skipped;
    let skipped_pct = if total > 0 {
        tp.prefix_instrs_skipped as f64 * 100.0 / total as f64
    } else {
        0.0
    };
    format!(
        "prefix-fork: {} snapshots, {} fork hits, {} dormant short-circuits, {} golden hits, {} shallow skips, {:.1}M instrs skipped ({:.1}% of total)",
        tp.prefix_snapshots_built,
        tp.prefix_fork_hits,
        tp.prefix_dormant_short_circuits,
        tp.prefix_golden_hits,
        tp.prefix_shallow_skips,
        tp.prefix_instrs_skipped as f64 / 1e6,
        skipped_pct,
    )
}

/// One-line summary of the trace-guided pruning layer, e.g.
/// `prune: 3 trace runs, 41 dormant skips, 102 collapse hits (96 classes
/// logged), 7 sampled (0 mispredicted)`.
pub fn prune_line(tp: &Throughput) -> String {
    format!(
        "prune: {} trace runs, {} dormant skips, {} collapse hits ({} classes logged), {} sampled ({} mispredicted)",
        tp.prune_trace_runs,
        tp.prune_dormant_skips,
        tp.prune_collapse_hits,
        tp.prune_collapse_logged,
        tp.prune_sample_checks,
        tp.prune_sample_mispredicts,
    )
}

/// One-line summary of the block-translation layer, e.g.
/// `blocks: 412 built, 9120 hits, 1820 fallback dispatches, 12
/// invalidated, 78.4% of instrs in blocks`.
pub fn block_cache_line(tp: &Throughput) -> String {
    let block_pct = if tp.retired_instrs > 0 {
        tp.block_instrs as f64 * 100.0 / tp.retired_instrs as f64
    } else {
        0.0
    };
    format!(
        "blocks: {} built, {} hits, {} fallback dispatches, {} invalidated, {:.1}% of instrs in blocks",
        tp.blocks_built, tp.block_hits, tp.block_fallbacks, tp.block_invalidations, block_pct,
    )
}

/// One-line per-phase wall-clock summary, e.g.
/// `phases: assign 120 items in 0.8s (150.0 items/s); check 40 items in 0.3s (133.3 items/s)`.
/// Empty string when no phases were timed (keeps legacy reports stable).
pub fn phase_times_line(phases: &[PhaseTime]) -> String {
    if phases.is_empty() {
        return String::new();
    }
    let cells: Vec<String> = phases
        .iter()
        .map(|p| {
            format!(
                "{} {} items in {:.1}s ({:.1} items/s)",
                p.phase,
                p.items,
                p.elapsed_secs,
                p.items_per_sec()
            )
        })
        .collect();
    format!("phases: {}", cells.join("; "))
}

/// The full report text of a §6 class campaign: the failure-mode table,
/// run totals, throughput/cache/phase lines, and abnormal records.
///
/// `swifi campaign` and the server's `submit` reply both render through
/// here, so a sharded campaign's merged report can be `diff`ed against
/// the single-process run byte-for-byte (the smoke scripts filter the
/// wall-clock lines, which are host noise by design).
pub fn class_campaign_report(c: &ProgramCampaign) -> String {
    let mut headers = vec!["Fault class"];
    headers.extend(MODE_HEADERS);
    let mut assign_row = vec!["assignment".to_string()];
    assign_row.extend(mode_cells(&c.assign_modes));
    let mut check_row = vec!["checking".to_string()];
    check_row.extend(mode_cells(&c.check_modes));
    let mut out = render_table(&headers, &[assign_row, check_row]);
    out.push_str(&format!(
        "total runs: {}, dormant: {}\n",
        c.total_runs, c.dormant_runs
    ));
    out.push_str(&format!("throughput: {}\n", throughput_line(&c.throughput)));
    out.push_str(&decode_cache_line(&c.throughput));
    out.push('\n');
    out.push_str(&block_cache_line(&c.throughput));
    out.push('\n');
    out.push_str(&prefix_fork_line(&c.throughput));
    out.push('\n');
    out.push_str(&prune_line(&c.throughput));
    out.push('\n');
    let phases = phase_times_line(&c.phase_times);
    if !phases.is_empty() {
        out.push_str(&phases);
        out.push('\n');
    }
    push_abnormal_lines(&mut out, &c.abnormal);
    out
}

/// The full report text of a source-mutation campaign (the
/// `swifi source-campaign` body below the banner line), shared with the
/// server for the same byte-equality reason as [`class_campaign_report`].
pub fn source_campaign_report(c: &SourceCampaign) -> String {
    let mut out = format!(
        "{} of {} possible mutants injected\n",
        c.selected_mutants, c.total_mutants
    );
    let mut headers = vec!["Operator", "ODC type"];
    headers.extend(MODE_HEADERS);
    let rows: Vec<Vec<String>> = c
        .by_operator
        .iter()
        .map(|(op, modes)| {
            let mut row = vec![op.id().to_string(), op.defect_type().to_string()];
            row.extend(mode_cells(modes));
            row
        })
        .collect();
    out.push_str(&render_table(&headers, &rows));
    out.push_str(&format!(
        "total runs: {}, dormant: {}\n",
        c.total_runs, c.dormant_runs
    ));
    out.push_str(&format!("throughput: {}\n", throughput_line(&c.throughput)));
    out.push_str(&decode_cache_line(&c.throughput));
    out.push('\n');
    out.push_str(&block_cache_line(&c.throughput));
    out.push('\n');
    let phases = phase_times_line(&c.phase_times);
    if !phases.is_empty() {
        out.push_str(&phases);
        out.push('\n');
    }
    push_abnormal_lines(&mut out, &c.abnormal);
    out
}

fn push_abnormal_lines(out: &mut String, abnormal: &[crate::engine::AbnormalRun]) {
    for a in abnormal {
        out.push_str(&format!(
            "abnormal: {}#{} — {} ({})\n",
            a.phase, a.index, a.message, a.detail
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["A", "LongHeader"],
            &[
                vec!["xxxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset in every row.
        let col = lines[0].find("LongHeader").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find('2').unwrap(), col);
    }

    #[test]
    fn empty_table_does_not_panic() {
        // Regression: the separator width computed `2 * (cols - 1)`,
        // which underflowed for a zero-column table.
        let t = render_table(&[], &[]);
        assert_eq!(t, "\n\n");
        let t = render_table(&["Only"], &[]);
        assert!(t.starts_with("Only"));
    }

    #[test]
    fn degenerate_throughput_never_prints_nan() {
        // Regression: empty / clean-only regions must render 0-valued
        // figures, not NaN% (division by zero runs or zero instructions).
        for line in [
            throughput_line(&Throughput::default()),
            decode_cache_line(&Throughput::default()),
            prefix_fork_line(&Throughput::default()),
            block_cache_line(&Throughput::default()),
        ] {
            assert!(!line.contains("NaN"), "{line}");
            assert!(!line.contains("inf"), "{line}");
        }
        // Slow fetches with zero retired instructions (clean-only region
        // measured on a reference-mode session): still no NaN.
        let odd = Throughput {
            slow_fetches: 5,
            ..Throughput::default()
        };
        assert!(!decode_cache_line(&odd).contains("NaN"));
        // And the percentage helper itself guards the empty distribution.
        assert_eq!(
            mode_cells(&ModeCounts::default()).join(" "),
            "0.0% 0.0% 0.0% 0.0%"
        );
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(7.31), "7.3%");
        assert_eq!(pct(0.05), "0.05%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(100.0), "100.0%");
    }

    #[test]
    fn throughput_line_reports_rate() {
        let tp = Throughput {
            runs: 100,
            fired_runs: 90,
            dormant_runs: 10,
            elapsed_secs: 2.0,
            retired_instrs: 8_000_000,
            ..Throughput::default()
        };
        let line = throughput_line(&tp);
        assert!(line.contains("100 runs"), "{line}");
        assert!(line.contains("50.0 runs/s"), "{line}");
        assert!(line.contains("4.0 Minstr/s"), "{line}");
        assert!(line.contains("90 fired / 10 dormant"), "{line}");
    }

    #[test]
    fn decode_cache_line_reports_slow_fraction() {
        let tp = Throughput {
            retired_instrs: 2_000_000,
            decode_lines_built: 1204,
            decode_invalidations: 96,
            slow_fetches: 20_000,
            ..Throughput::default()
        };
        let line = decode_cache_line(&tp);
        assert!(line.contains("1204 lines built"), "{line}");
        assert!(line.contains("96 invalidated"), "{line}");
        assert!(line.contains("20000 slow fetches"), "{line}");
        assert!(line.contains("(1.00% of 2.0M instrs)"), "{line}");

        // Degenerate case: no instructions measured.
        let empty = decode_cache_line(&Throughput::default());
        assert!(empty.contains("0.00%"), "{empty}");
    }

    #[test]
    fn prefix_fork_line_reports_skipped_share() {
        let tp = Throughput {
            retired_instrs: 1_000_000,
            prefix_snapshots_built: 40,
            prefix_fork_hits: 3960,
            prefix_instrs_skipped: 3_000_000,
            prefix_dormant_short_circuits: 120,
            prefix_golden_hits: 6,
            ..Throughput::default()
        };
        let line = prefix_fork_line(&tp);
        assert!(line.contains("40 snapshots"), "{line}");
        assert!(line.contains("3960 fork hits"), "{line}");
        assert!(line.contains("120 dormant short-circuits"), "{line}");
        assert!(line.contains("6 golden hits"), "{line}");
        assert!(
            line.contains("3.0M instrs skipped (75.0% of total)"),
            "{line}"
        );
    }

    #[test]
    fn block_cache_line_reports_block_share() {
        let tp = Throughput {
            retired_instrs: 2_000_000,
            blocks_built: 412,
            block_hits: 9120,
            block_instrs: 1_500_000,
            block_fallbacks: 1820,
            block_invalidations: 12,
            ..Throughput::default()
        };
        let line = block_cache_line(&tp);
        assert!(line.contains("412 built"), "{line}");
        assert!(line.contains("9120 hits"), "{line}");
        assert!(line.contains("1820 fallback dispatches"), "{line}");
        assert!(line.contains("12 invalidated"), "{line}");
        assert!(line.contains("75.0% of instrs in blocks"), "{line}");
    }

    #[test]
    fn phase_times_line_lists_each_phase() {
        assert_eq!(phase_times_line(&[]), "");
        let line = phase_times_line(&[
            PhaseTime {
                phase: "assign".into(),
                items: 120,
                elapsed_secs: 0.8,
            },
            PhaseTime {
                phase: "check".into(),
                items: 40,
                elapsed_secs: 0.3,
            },
        ]);
        assert!(line.starts_with("phases: "), "{line}");
        assert!(
            line.contains("assign 120 items in 0.8s (150.0 items/s)"),
            "{line}"
        );
        assert!(line.contains("; check 40 items"), "{line}");
    }

    #[test]
    fn mode_cells_cover_all_modes() {
        let mut c = ModeCounts::default();
        c.add(FailureMode::Correct);
        c.add(FailureMode::Crash);
        let cells = mode_cells(&c);
        assert_eq!(cells, vec!["50.0%", "0.0%", "0.0%", "50.0%"]);
    }
}
