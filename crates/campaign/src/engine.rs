//! The fault-tolerant campaign engine: structured run records, JSONL
//! checkpointing, and resume.
//!
//! The paper's methodology is campaigns of 10⁴–10⁵ independent runs; a
//! reproduction that *injects* faults must also *survive* them. This layer
//! wraps every work item dispatched through
//! [`crate::pool::parallel_map_resilient`] in a [`RunRecord`]:
//!
//! - a normal completion is `RunStatus::Ok(value)`;
//! - a panicking or wedged run is `RunStatus::Abnormal { .. }` — the
//!   paper's own "abnormal outcome" bucket, carrying the panic message and
//!   a description of the (fault, input) work item — and the campaign
//!   keeps going.
//!
//! Each completed record is appended to a seeded, per-campaign JSONL
//! checkpoint the moment it arrives, so a campaign killed mid-flight
//! resumes from disk: recorded items are *replayed* (not re-run) and the
//! resumed campaign folds to a report equal to an uninterrupted one with
//! the same seed — the determinism oracle the test suite pins.
//!
//! ## Checkpoint file format
//!
//! Line 1 is a [`CheckpointHeader`] identifying the campaign (driver +
//! target), seed, and scale; resuming against a mismatched header is an
//! error, not silent corruption. Every further line is one record:
//!
//! ```json
//! {"campaign":"section6:JB.team11","seed":7,"scale":2,"version":1}
//! {"phase":"assign","index":3,"elapsed_micros":512,"status":{"Ok":...}}
//! {"phase":"assign","index":5,"elapsed_micros":44,"status":{"Abnormal":{"message":"...","detail":"..."}}}
//! ```
//!
//! Records appear in completion order (workers race); resume keys them by
//! `(phase, index)`. A torn final line — the kill arrived mid-write — is
//! ignored on load; a torn *middle* line is corruption and errors.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{DeError, Deserialize, Serialize, Value};
use swifi_trace::event::{arg_str, arg_u64};
use swifi_trace::{Telemetry, TraceEvent, ENGINE_TID};

use crate::pool::parallel_map_resilient;

/// How one work item ended: the driver's per-item value, or the abnormal
/// bucket for a run that panicked out of the harness.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus<R> {
    /// The item completed and produced the driver's per-item result.
    Ok(R),
    /// The item's closure panicked; the campaign recorded it and went on.
    Abnormal {
        /// The panic message (`<opaque panic payload>` if not a string).
        message: String,
        /// Driver-supplied description of the work item (fault id, input).
        detail: String,
    },
}

/// One completed work item of a campaign phase — the unit of the JSONL
/// checkpoint and of the resilience accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord<R> {
    /// The campaign phase this item belongs to (e.g. `assign`, `check`,
    /// or a program name).
    pub phase: String,
    /// The item's index within its phase (stable across resume).
    pub index: u64,
    /// Wall-clock cost of the item in microseconds (diagnostic only;
    /// replayed verbatim on resume).
    pub elapsed_micros: u64,
    /// How the item ended.
    pub status: RunStatus<R>,
}

// The vendored serde_derive stand-in does not support generics, so the
// record types implement the Value-tree model by hand.
impl<R: Serialize> Serialize for RunStatus<R> {
    fn to_value(&self) -> Value {
        match self {
            RunStatus::Ok(r) => Value::Object(vec![("Ok".to_string(), r.to_value())]),
            RunStatus::Abnormal { message, detail } => Value::Object(vec![(
                "Abnormal".to_string(),
                Value::Object(vec![
                    ("message".to_string(), Value::Str(message.clone())),
                    ("detail".to_string(), Value::Str(detail.clone())),
                ]),
            )]),
        }
    }
}

impl<R: Deserialize> Deserialize for RunStatus<R> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .as_object()
            .filter(|p| p.len() == 1)
            .ok_or_else(|| DeError::custom(format!("bad RunStatus: {v:?}")))?;
        let (tag, payload) = &pairs[0];
        match tag.as_str() {
            "Ok" => Ok(RunStatus::Ok(R::from_value(payload)?)),
            "Abnormal" => {
                let obj = payload
                    .as_object()
                    .ok_or_else(|| DeError::custom("Abnormal payload must be an object"))?;
                Ok(RunStatus::Abnormal {
                    message: String::from_value(serde::field(obj, "message")?)?,
                    detail: String::from_value(serde::field(obj, "detail")?)?,
                })
            }
            other => Err(DeError::custom(format!("unknown RunStatus tag `{other}`"))),
        }
    }
}

impl<R: Serialize> Serialize for RunRecord<R> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("phase".to_string(), Value::Str(self.phase.clone())),
            ("index".to_string(), Value::U64(self.index)),
            (
                "elapsed_micros".to_string(),
                Value::U64(self.elapsed_micros),
            ),
            ("status".to_string(), self.status.to_value()),
        ])
    }
}

impl<R: Deserialize> Deserialize for RunRecord<R> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("bad RunRecord: {v:?}")))?;
        Ok(RunRecord {
            phase: String::from_value(serde::field(obj, "phase")?)?,
            index: u64::from_value(serde::field(obj, "index")?)?,
            elapsed_micros: u64::from_value(serde::field(obj, "elapsed_micros")?)?,
            status: RunStatus::from_value(serde::field(obj, "status")?)?,
        })
    }
}

/// The first line of a checkpoint file: the campaign's identity. A resume
/// against a different campaign/seed/scale is refused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointHeader {
    /// Campaign identity, `driver:target` (e.g. `section6:JB.team11`).
    pub campaign: String,
    /// The campaign seed (determinism anchor).
    pub seed: u64,
    /// The campaign scale knob (driver-defined; inputs-per-fault or runs).
    pub scale: u64,
    /// Checkpoint format version.
    pub version: u32,
}

impl CheckpointHeader {
    /// Build a version-1 header.
    pub fn new(campaign: impl Into<String>, seed: u64, scale: u64) -> CheckpointHeader {
        CheckpointHeader {
            campaign: campaign.into(),
            seed,
            scale,
            version: 1,
        }
    }
}

/// Append-only JSONL checkpoint of completed [`RunRecord`]s.
pub struct CheckpointLog {
    path: PathBuf,
    file: std::fs::File,
    /// Records loaded on resume, keyed by `(phase, index)`; values are the
    /// raw JSON trees, deserialized per-driver on lookup.
    loaded: HashMap<(String, u64), Value>,
}

impl std::fmt::Debug for CheckpointLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointLog")
            .field("path", &self.path)
            .field("loaded", &self.loaded.len())
            .finish()
    }
}

impl CheckpointLog {
    /// Start a fresh checkpoint: truncate `path` and write the header.
    pub fn create(path: &Path, header: &CheckpointHeader) -> Result<CheckpointLog, String> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create checkpoint `{}`: {e}", path.display()))?;
        let line = serde_json::to_string(header).map_err(|e| e.to_string())?;
        writeln!(file, "{line}")
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot write checkpoint header: {e}"))?;
        Ok(CheckpointLog {
            path: path.to_path_buf(),
            file,
            loaded: HashMap::new(),
        })
    }

    /// Resume from an existing checkpoint (or start fresh when `path` does
    /// not exist yet). The stored header must match `header` exactly.
    ///
    /// A torn trailing line (the previous process died mid-append) is
    /// dropped *and truncated away*, so subsequent appends start on a
    /// clean line boundary; malformed lines anywhere else are corruption
    /// and error.
    pub fn resume(path: &Path, header: &CheckpointHeader) -> Result<CheckpointLog, String> {
        if !path.exists() {
            return CheckpointLog::create(path, header);
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint `{}`: {e}", path.display()))?;
        if text.is_empty() {
            // A kill between `File::create` and the header write leaves a
            // zero-byte file; that is the missing-file fresh start, not
            // corruption.
            return CheckpointLog::create(path, header);
        }
        // Walk the file by byte offset so the valid prefix length is known
        // exactly: everything past the last well-formed line is a torn
        // tail to truncate before appending.
        let line_end =
            |pos: usize| -> usize { text[pos..].find('\n').map_or(text.len(), |i| pos + i + 1) };
        let mut pos = line_end(0);
        let head_line = text[..pos].trim_end();
        let stored: CheckpointHeader = serde_json::from_str(head_line)
            .map_err(|e| format!("checkpoint `{}` has a bad header: {e}", path.display()))?;
        if &stored != header {
            return Err(format!(
                "checkpoint `{}` belongs to a different campaign: \
                 found {}/seed {}/scale {}, expected {}/seed {}/scale {}",
                path.display(),
                stored.campaign,
                stored.seed,
                stored.scale,
                header.campaign,
                header.seed,
                header.scale,
            ));
        }
        let mut valid_len = pos;
        let mut loaded = HashMap::new();
        let mut line_no = 1;
        while pos < text.len() {
            let end = line_end(pos);
            let line = text[pos..end].trim_end();
            line_no += 1;
            if !line.is_empty() {
                match serde_json::from_str::<Value>(line) {
                    Ok(v) => {
                        let obj = v.as_object().ok_or_else(|| {
                            format!("checkpoint record at line {line_no} is not an object")
                        })?;
                        let phase = String::from_value(
                            serde::field(obj, "phase").map_err(|e| e.to_string())?,
                        )
                        .map_err(|e| e.to_string())?;
                        let index =
                            u64::from_value(serde::field(obj, "index").map_err(|e| e.to_string())?)
                                .map_err(|e| e.to_string())?;
                        loaded.insert((phase, index), v);
                        valid_len = end;
                    }
                    Err(e) if end == text.len() => {
                        // Torn final line: the kill arrived mid-append. The
                        // item reruns; the tail is truncated below.
                        let _ = e;
                    }
                    Err(e) => {
                        return Err(format!(
                            "checkpoint `{}` line {line_no} is corrupt: {e}",
                            path.display(),
                        ));
                    }
                }
            }
            pos = end;
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot append to checkpoint `{}`: {e}", path.display()))?;
        if valid_len < text.len() {
            file.set_len(valid_len as u64).map_err(|e| {
                format!(
                    "cannot truncate torn checkpoint tail in `{}`: {e}",
                    path.display()
                )
            })?;
        }
        Ok(CheckpointLog {
            path: path.to_path_buf(),
            file,
            loaded,
        })
    }

    /// Number of records loaded from disk on resume.
    pub fn loaded_records(&self) -> usize {
        self.loaded.len()
    }

    /// Append one completed record and flush it to disk.
    pub fn append<R: Serialize>(&mut self, record: &RunRecord<R>) -> Result<(), String> {
        let line = serde_json::to_string(record).map_err(|e| e.to_string())?;
        writeln!(self.file, "{line}")
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot append to checkpoint `{}`: {e}", self.path.display()))
    }

    /// The record for `(phase, index)` loaded from disk, if any.
    pub fn recorded<R: Deserialize>(
        &self,
        phase: &str,
        index: u64,
    ) -> Result<Option<RunRecord<R>>, String> {
        match self.loaded.get(&(phase.to_string(), index)) {
            None => Ok(None),
            Some(v) => RunRecord::from_value(v)
                .map(Some)
                .map_err(|e| format!("checkpoint record {phase}#{index} is corrupt: {e}")),
        }
    }
}

/// Robustness knobs shared by every campaign driver.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Append completed run records to this JSONL checkpoint file.
    pub checkpoint: Option<PathBuf>,
    /// Resume from the checkpoint instead of truncating it: recorded items
    /// are replayed, the rest run and append.
    pub resume: bool,
    /// Per-run wall-clock watchdog: a run exceeding this deadline is
    /// classified [`crate::FailureMode::Hang`] instead of stalling its
    /// worker (defense in depth above the instruction budget).
    pub watchdog: Option<Duration>,
    /// Harness chaos knob: panic the worker on this campaign item (global
    /// index across phases) to demonstrate — and test — that a mid-campaign
    /// panic becomes one `Abnormal` record, not a lost campaign.
    pub chaos_panic: Option<u64>,
    /// Disable the prefix-fork cache: every injected run executes its
    /// full prefix from the clean snapshot. Reports are identical either
    /// way (forking is an execution strategy, not a semantic change);
    /// the flag exists for A/B measurement and as an escape hatch.
    pub no_prefix_fork: bool,
    /// Disable the basic-block translation layer: sessions execute on
    /// the predecoded line cache alone (the PR 2 path). Like
    /// `no_prefix_fork`, purely an execution-strategy toggle — reports
    /// are identical either way — kept for A/B measurement and as an
    /// escape hatch.
    pub no_block_cache: bool,
    /// Shared telemetry hub (trace events, metrics, guest profiling).
    /// `None` — the default — is the no-op contract: sessions carry no
    /// worker telemetry and the per-run cost is a single `Option` test.
    /// Telemetry never participates in report equality.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Scheduler rounds between watchdog deadline polls
    /// (`--watchdog-poll`); `None` keeps the machine default of
    /// [`swifi_vm::machine::DEFAULT_WATCHDOG_POLL`].
    pub watchdog_poll: Option<u32>,
    /// Run only this shard's contiguous slice of each phase's items; the
    /// rest are neither executed nor recorded. Shard checkpoints union
    /// into a whole campaign via [`crate::shard::merge_checkpoints`], and
    /// a final resume pass over the merged checkpoint reproduces the
    /// single-process report exactly (the shard-equality oracle).
    pub shard: Option<crate::shard::Shard>,
    /// Disable trace-guided pruning (provable-dormancy skips,
    /// outcome-equivalence collapse, the adaptive fork planner). Pruning
    /// is a pure execution strategy — every pruned answer is provably
    /// identical to the full run it replaces — so reports are equal
    /// either way; the flag exists for A/B measurement and as an escape
    /// hatch.
    pub no_prune: bool,
    /// Percentage (0–100) of pruned/collapsed answers the sampling
    /// oracle re-validates by running them in full and comparing the
    /// predicted outcome (`prune:` report line shows checks and
    /// mispredictions, the latter asserted zero in CI).
    pub prune_sample: u32,
}

impl CampaignOptions {
    /// Options with a checkpoint path set.
    pub fn with_checkpoint(path: impl Into<PathBuf>, resume: bool) -> CampaignOptions {
        CampaignOptions {
            checkpoint: Some(path.into()),
            resume,
            ..CampaignOptions::default()
        }
    }

    /// Apply the per-session knobs — watchdog deadline and poll interval,
    /// worker telemetry lane — to a freshly built worker session. Every
    /// driver's session-init closure funnels through here so a new knob
    /// reaches all campaigns at once.
    pub fn configure_session(&self, s: &mut crate::session::RunSession) {
        s.set_watchdog(self.watchdog);
        if let Some(poll) = self.watchdog_poll {
            s.set_watchdog_poll(poll);
        }
        s.set_telemetry(self.telemetry.as_ref().map(|t| t.worker()));
        s.set_prune(!self.no_prune, self.prune_sample);
    }
}

/// Wall-clock accounting for one campaign phase, recorded by
/// [`CampaignEngine::run_phase`] and surfaced in reports so phase-level
/// throughput is visible without external timing.
///
/// `PartialEq` deliberately ignores `elapsed_secs`: phase wall-clock is
/// host-dependent diagnostics, and campaign structs that embed phase
/// times must keep satisfying the resume/shard equality oracles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTime {
    /// The phase name passed to [`CampaignEngine::run_phase`].
    pub phase: String,
    /// Work items in the phase (replayed and executed alike).
    pub items: u64,
    /// Wall-clock seconds the phase took this process (resumed phases
    /// that replay entirely from the checkpoint report near-zero).
    pub elapsed_secs: f64,
}

impl PartialEq for PhaseTime {
    fn eq(&self, other: &PhaseTime) -> bool {
        (&self.phase, self.items) == (&other.phase, other.items)
    }
}

impl PhaseTime {
    /// Items per wall-clock second (0 when nothing was measured).
    pub fn items_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.items as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// The per-campaign execution engine: owns the checkpoint log and runs
/// phases of work items through the resilient pool.
#[derive(Debug)]
pub struct CampaignEngine {
    log: Option<CheckpointLog>,
    telemetry: Option<Arc<Telemetry>>,
    phase_times: Vec<PhaseTime>,
    shard: Option<crate::shard::Shard>,
}

impl CampaignEngine {
    /// Build an engine for one campaign identified by `header`, honouring
    /// the checkpoint/resume options.
    pub fn new(header: CheckpointHeader, opts: &CampaignOptions) -> Result<CampaignEngine, String> {
        let log = match &opts.checkpoint {
            None => None,
            Some(path) if opts.resume => Some(CheckpointLog::resume(path, &header)?),
            Some(path) => Some(CheckpointLog::create(path, &header)?),
        };
        if let Some(shard) = &opts.shard {
            shard.validate()?;
        }
        Ok(CampaignEngine {
            log,
            telemetry: opts.telemetry.clone(),
            phase_times: Vec::new(),
            shard: opts.shard,
        })
    }

    /// Records already on disk for any phase (0 without a checkpoint).
    pub fn resumed_records(&self) -> usize {
        self.log.as_ref().map_or(0, CheckpointLog::loaded_records)
    }

    /// Wall-clock accounting of every phase run so far, in run order.
    pub fn phase_times(&self) -> &[PhaseTime] {
        &self.phase_times
    }

    /// Take ownership of the recorded phase times (drivers store them on
    /// the campaign result once all phases are done).
    pub fn take_phase_times(&mut self) -> Vec<PhaseTime> {
        std::mem::take(&mut self.phase_times)
    }

    /// Run one phase: every item either replays from the checkpoint or is
    /// executed on the resilient pool, recorded, and appended.
    ///
    /// `f(state, index, item)` produces the per-item value; `describe`
    /// labels the item for `Abnormal` records. Returns the phase's records
    /// in item order plus the worker states that actually ran (empty when
    /// everything replayed).
    #[allow(clippy::type_complexity)]
    pub fn run_phase<T, S, R, I, F, D>(
        &mut self,
        phase: &str,
        items: &[T],
        init: I,
        f: F,
        describe: D,
    ) -> Result<(Vec<RunRecord<R>>, Vec<S>), String>
    where
        T: Sync,
        S: Send,
        R: Serialize + Deserialize + Clone + Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
        D: Fn(usize, &T) -> String + Sync,
    {
        let t0 = Instant::now();
        let span_start = self.telemetry.as_deref().map(Telemetry::now_us);
        // In shard mode only this shard's contiguous slice executes;
        // recorded items replay regardless (a merged checkpoint may carry
        // records from every shard, and replay is what makes the final
        // resume pass reproduce the whole campaign).
        let mine = self.shard.map_or(0..items.len(), |s| s.range(items.len()));
        let mut records: Vec<Option<RunRecord<R>>> = (0..items.len()).map(|_| None).collect();
        let mut pending: Vec<(usize, &T)> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let recorded = match &self.log {
                Some(log) => log.recorded::<R>(phase, i as u64)?,
                None => None,
            };
            match recorded {
                Some(rec) => records[i] = Some(rec),
                None if mine.contains(&i) => pending.push((i, item)),
                None => {} // another shard's item: neither run nor recorded
            }
        }

        if pending.is_empty() {
            let records = records.into_iter().flatten().collect();
            self.finish_phase(phase, items.len(), 0, t0, span_start);
            return Ok((records, Vec::new()));
        }

        let log = &mut self.log;
        let telemetry = self.telemetry.clone();
        let mut io_error: Option<String> = None;
        let (caught, states) = parallel_map_resilient(
            &pending,
            &init,
            |state, &(i, item)| f(state, i, item),
            |j, run| {
                let (i, item) = pending[j];
                // Checkpoint on arrival so a mid-campaign kill keeps every
                // completed record.
                if let Some(log) = log.as_mut() {
                    let record = caught_to_record(phase, i as u64, run, || describe(i, item));
                    if let Err(e) = log.append(&record) {
                        io_error.get_or_insert(e);
                    }
                    if let Some(t) = &telemetry {
                        t.engine_instant(
                            "checkpoint_flush",
                            vec![arg_str("phase", phase), arg_u64("index", i as u64)],
                        );
                    }
                }
                if let (Some(t), Err(message)) = (&telemetry, &run.result) {
                    t.engine_instant(
                        "worker_panic",
                        vec![
                            arg_str("phase", phase),
                            arg_u64("index", i as u64),
                            arg_str("message", message.clone()),
                        ],
                    );
                }
            },
        );
        if let Some(e) = io_error {
            return Err(e);
        }
        for (j, run) in caught.into_iter().enumerate() {
            let (i, item) = pending[j];
            records[i] = Some(caught_to_record(phase, i as u64, &run, || {
                describe(i, item)
            }));
        }
        let records = records.into_iter().flatten().collect();
        self.finish_phase(phase, items.len(), pending.len(), t0, span_start);
        Ok((records, states))
    }

    /// Record the phase's wall clock and close its trace span.
    fn finish_phase(
        &mut self,
        phase: &str,
        items: usize,
        executed: usize,
        t0: Instant,
        span_start: Option<u64>,
    ) {
        self.phase_times.push(PhaseTime {
            phase: phase.to_string(),
            items: items as u64,
            elapsed_secs: t0.elapsed().as_secs_f64(),
        });
        if let (Some(t), Some(start)) = (&self.telemetry, span_start) {
            let end = t.now_us();
            t.engine_event(TraceEvent::complete(
                format!("phase:{phase}"),
                start,
                end.saturating_sub(start),
                ENGINE_TID,
                vec![
                    arg_u64("items", items as u64),
                    arg_u64("executed", executed as u64),
                    arg_u64("replayed", (items - executed) as u64),
                ],
            ));
        }
    }
}

/// Convert one pool result into a record (`describe` is only invoked for
/// abnormal runs).
fn caught_to_record<R: Clone>(
    phase: &str,
    index: u64,
    run: &crate::pool::CaughtRun<R>,
    describe: impl FnOnce() -> String,
) -> RunRecord<R> {
    let status = match &run.result {
        Ok(r) => RunStatus::Ok(r.clone()),
        Err(message) => RunStatus::Abnormal {
            message: message.clone(),
            detail: describe(),
        },
    };
    RunRecord {
        phase: phase.to_string(),
        index,
        elapsed_micros: run.elapsed.as_micros() as u64,
        status,
    }
}

/// One abnormal campaign item, surfaced in driver results and reports —
/// the run is data, not a process abort.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbnormalRun {
    /// Phase the item belonged to.
    pub phase: String,
    /// Item index within the phase.
    pub index: u64,
    /// The caught panic message.
    pub message: String,
    /// Driver description of the work item.
    pub detail: String,
}

/// Split a phase's records into the driver's per-item values (with their
/// indices) and the abnormal bucket.
pub fn split_records<R>(records: Vec<RunRecord<R>>) -> (Vec<(u64, R)>, Vec<AbnormalRun>) {
    let mut ok = Vec::with_capacity(records.len());
    let mut abnormal = Vec::new();
    for rec in records {
        match rec.status {
            RunStatus::Ok(r) => ok.push((rec.index, r)),
            RunStatus::Abnormal { message, detail } => abnormal.push(AbnormalRun {
                phase: rec.phase,
                index: rec.index,
                message,
                detail,
            }),
        }
    }
    (ok, abnormal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "swifi-engine-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let rec = RunRecord {
            phase: "assign".to_string(),
            index: 7,
            elapsed_micros: 1234,
            status: RunStatus::Ok((3u64, "x".to_string())),
        };
        let line = serde_json::to_string(&rec).unwrap();
        let back: RunRecord<(u64, String)> = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);

        let ab: RunRecord<u32> = RunRecord {
            phase: "check".to_string(),
            index: 0,
            elapsed_micros: 9,
            status: RunStatus::Abnormal {
                message: "boom \"quoted\"\nline".to_string(),
                detail: "fault 0".to_string(),
            },
        };
        let line = serde_json::to_string(&ab).unwrap();
        assert_eq!(serde_json::from_str::<RunRecord<u32>>(&line).unwrap(), ab);
    }

    #[test]
    fn engine_without_checkpoint_runs_everything() {
        let items: Vec<u32> = (0..20).collect();
        let mut engine = CampaignEngine::new(
            CheckpointHeader::new("t", 1, 1),
            &CampaignOptions::default(),
        )
        .unwrap();
        let (records, states) = engine
            .run_phase(
                "p",
                &items,
                || 0u64,
                |count, _, &x| {
                    *count += 1;
                    x * 3
                },
                |i, _| format!("item {i}"),
            )
            .unwrap();
        assert_eq!(records.len(), 20);
        assert!(records
            .iter()
            .enumerate()
            .all(|(i, r)| r.status == RunStatus::Ok(i as u32 * 3)));
        assert_eq!(states.iter().sum::<u64>(), 20);
    }

    #[test]
    fn checkpoint_resume_replays_recorded_items() {
        let path = temp_path("resume");
        let header = CheckpointHeader::new("resume-test", 42, 3);
        let items: Vec<u32> = (0..10).collect();

        // First pass: record only the first 4 items, then "die".
        {
            let mut log = CheckpointLog::create(&path, &header).unwrap();
            for i in 0..4u64 {
                log.append(&RunRecord {
                    phase: "p".to_string(),
                    index: i,
                    elapsed_micros: 1,
                    status: RunStatus::Ok(i as u32 * 3),
                })
                .unwrap();
            }
        }
        // Simulate a torn final line from a kill mid-append.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"phase\":\"p\",\"ind").unwrap();
        }

        let opts = CampaignOptions::with_checkpoint(&path, true);
        let mut engine = CampaignEngine::new(header, &opts).unwrap();
        assert_eq!(engine.resumed_records(), 4);
        let executed = std::sync::atomic::AtomicU64::new(0);
        let (records, _) = engine
            .run_phase(
                "p",
                &items,
                || (),
                |(), _, &x| {
                    executed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    x * 3
                },
                |i, _| format!("item {i}"),
            )
            .unwrap();
        // Only the unrecorded items actually ran; the report is whole.
        assert_eq!(executed.load(std::sync::atomic::Ordering::Relaxed), 6);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.status, RunStatus::Ok(i as u32 * 3), "item {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_against_zero_byte_checkpoint_is_a_fresh_start() {
        // A kill between `File::create` and the header write leaves an
        // empty file; resume must treat it like the missing-file path.
        let path = temp_path("empty");
        std::fs::write(&path, "").unwrap();
        let header = CheckpointHeader::new("e", 7, 1);
        let mut log = CheckpointLog::resume(&path, &header).unwrap();
        assert_eq!(log.loaded_records(), 0);
        log.append(&RunRecord {
            phase: "p".to_string(),
            index: 0,
            elapsed_micros: 1,
            status: RunStatus::Ok(1u32),
        })
        .unwrap();
        drop(log);
        // The fresh start wrote a real header, so the next resume loads.
        let log = CheckpointLog::resume(&path, &header).unwrap();
        assert_eq!(log.loaded_records(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_mode_runs_only_its_slice() {
        let items: Vec<u32> = (0..10).collect();
        let opts = CampaignOptions {
            shard: Some(crate::shard::Shard::new(1, 3).unwrap()),
            ..CampaignOptions::default()
        };
        let mut engine = CampaignEngine::new(CheckpointHeader::new("s", 1, 1), &opts).unwrap();
        let (records, _) = engine
            .run_phase(
                "p",
                &items,
                || (),
                |(), _, &x| x,
                |i, _| format!("item {i}"),
            )
            .unwrap();
        // Shard 1 of 3 over 10 items owns indices 3..6 and nothing else.
        let indices: Vec<u64> = records.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![3, 4, 5]);
    }

    #[test]
    fn invalid_shard_is_refused() {
        let opts = CampaignOptions {
            shard: Some(crate::shard::Shard { index: 5, count: 3 }),
            ..CampaignOptions::default()
        };
        let err = CampaignEngine::new(CheckpointHeader::new("s", 1, 1), &opts).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn resume_refuses_mismatched_header() {
        let path = temp_path("mismatch");
        CheckpointLog::create(&path, &CheckpointHeader::new("a", 1, 2)).unwrap();
        let err = CheckpointLog::resume(&path, &CheckpointHeader::new("a", 9, 2))
            .expect_err("seed mismatch must be refused");
        assert!(err.contains("different campaign"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_middle_record_is_an_error() {
        let path = temp_path("corrupt");
        let header = CheckpointHeader::new("c", 1, 1);
        {
            let mut log = CheckpointLog::create(&path, &header).unwrap();
            log.append(&RunRecord {
                phase: "p".to_string(),
                index: 0,
                elapsed_micros: 1,
                status: RunStatus::Ok(1u32),
            })
            .unwrap();
        }
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "not json at all").unwrap();
            writeln!(
                f,
                "{{\"phase\":\"p\",\"index\":1,\"elapsed_micros\":1,\"status\":{{\"Ok\":2}}}}"
            )
            .unwrap();
        }
        let err = CheckpointLog::resume(&path, &header).expect_err("corrupt");
        assert!(err.contains("corrupt"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn abnormal_items_become_records_and_split_out() {
        let items: Vec<u32> = (0..8).collect();
        let mut engine = CampaignEngine::new(
            CheckpointHeader::new("ab", 1, 1),
            &CampaignOptions::default(),
        )
        .unwrap();
        let (records, _) = engine
            .run_phase(
                "p",
                &items,
                || (),
                |(), _, &x| {
                    if x == 5 {
                        panic!("chaos at {x}");
                    }
                    x
                },
                |i, _| format!("item {i}"),
            )
            .unwrap();
        let (ok, abnormal) = split_records(records);
        assert_eq!(ok.len(), 7);
        assert_eq!(abnormal.len(), 1);
        assert_eq!(abnormal[0].index, 5);
        assert!(abnormal[0].message.contains("chaos at 5"));
        assert_eq!(abnormal[0].detail, "item 5");
    }
}
