//! A minimal deterministic parallel-map over independent runs.
//!
//! Campaign runs are embarrassingly parallel (one fresh machine each);
//! wall-clock matters because a full reproduction executes 10⁴–10⁵ VM
//! runs. Results are returned in input order regardless of scheduling.

use crossbeam_channel::unbounded;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on up to `available_parallelism` worker threads,
/// returning results in input order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let workers = workers.min(items.len().max(1));
    if workers <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = unbounded::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("every index produced")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn works_on_tiny_inputs() {
        assert_eq!(parallel_map(&[5u32], |&x| x + 1), vec![6]);
        assert_eq!(parallel_map::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
    }

    #[test]
    fn handles_heavier_work() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| (0..10_000).fold(x, |a, b| a.wrapping_add(b)));
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], (0..10_000).sum::<u64>());
    }
}
