//! A minimal deterministic parallel-map over independent runs.
//!
//! Campaign runs are embarrassingly parallel; wall-clock matters because a
//! full reproduction executes 10⁴–10⁵ VM runs. Results are returned in
//! input order regardless of scheduling, and each worker thread can carry
//! reusable state (a warm [`crate::session::RunSession`]) across the items
//! it processes — the warm-reboot engine's "one session per worker, not
//! per run" contract.
//!
//! Worker panics are propagated to the caller with the index of the item
//! that failed, instead of surfacing as a misleading "every index
//! produced" unwind from the collection path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The outcome of one item under [`parallel_map_resilient`]: the closure's
/// return value, or the message of the panic it raised, plus the item's
/// wall-clock cost. A panicking run is *data*, not a process abort.
#[derive(Debug)]
pub struct CaughtRun<R> {
    /// Wall-clock time spent inside the closure for this item (including
    /// an unwinding run's time up to the panic).
    pub elapsed: Duration,
    /// The closure's result, or the panic message (`Err`).
    pub result: Result<R, String>,
}

/// Render a caught panic payload as a message for [`CaughtRun::result`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<opaque panic payload>".to_string())
}

/// Map `f` over `items` on up to `available_parallelism` worker threads,
/// returning results in input order.
///
/// # Panics
/// If `f` panics for some item, the panic is re-raised on the calling
/// thread, prefixed with the failing item's index.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), item| f(item)).0
}

/// Like [`parallel_map`], but each worker thread owns a state value built
/// once by `init` and threaded through every item that worker processes.
///
/// Returns the in-order results plus the final worker states (one per
/// worker actually spawned; callers wanting aggregate counters fold over
/// them). Results must not depend on which worker handled which item —
/// the warm-reboot equivalence property is exactly what licenses this.
pub fn parallel_map_with<T, S, R, I, F>(items: &[T], init: I, f: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers = workers.min(items.len().max(1));
    if workers <= 1 || items.len() < 2 {
        let mut state = init();
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(&mut state, item))) {
                Ok(r) => out.push(r),
                Err(payload) => raise_with_index(i, payload),
            }
        }
        return (out, vec![state]);
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let init = &init;
            handles.push(scope.spawn(move || {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = catch_unwind(AssertUnwindSafe(|| f(&mut state, &items[i])));
                    let panicked = r.is_err();
                    if tx.send((i, r)).is_err() || panicked {
                        // After a panic the worker state may be arbitrary;
                        // stop this worker. Remaining items are picked up
                        // by the other workers (the caller re-raises the
                        // panic regardless).
                        break;
                    }
                }
                state
            }));
        }
        drop(tx);

        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        let mut failure: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (i, r) in rx {
            match r {
                Ok(v) => out[i] = Some(v),
                Err(payload) => match &failure {
                    Some((j, _)) if *j <= i => {}
                    _ => failure = Some((i, payload)),
                },
            }
        }
        // Join every worker. A join error means the worker thread itself
        // panicked outside the per-item `catch_unwind` (only `init` can do
        // that); swallowing it with `.ok()` would silently drop the worker's
        // state — and its `SessionStats` counters — undercounting campaign
        // totals. Keep the states that did survive and re-raise the panic
        // after the per-item failure (which names the item) gets priority.
        let mut states: Vec<S> = Vec::with_capacity(handles.len());
        let mut worker_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(s) => states.push(s),
                Err(payload) => worker_panic = Some(payload),
            }
        }

        if let Some((i, payload)) = failure {
            raise_with_index(i, payload);
        }
        if let Some(payload) = worker_panic {
            eprintln!(
                "parallel_map worker panicked during init ({} of {} states survive)",
                states.len(),
                workers
            );
            resume_unwind(payload);
        }

        let results = out
            .into_iter()
            .map(|r| r.expect("all indices complete when no worker panicked"))
            .collect();
        (results, states)
    })
}

/// Like [`parallel_map_with`], but a panicking item is caught and returned
/// as data (`Err(message)` in its [`CaughtRun`]) instead of being re-raised
/// — the fault-tolerant path the campaign engine runs on. A reproduction
/// that injects faults should survive the faults it injects: one wedged or
/// panicking run must not discard the 10⁴ completed ones.
///
/// Semantics on a caught panic:
///
/// - the item's slot carries the panic message and elapsed time;
/// - the worker *retires* its state (the unwound closure may have left it
///   mid-run) and continues the remaining items on a fresh `init()` state;
/// - retired states are still returned, so per-session counters survive.
///
/// `on_complete` is invoked on the **calling thread** as each item's
/// result arrives (completion order, not input order) — the checkpoint
/// hook: a campaign killed mid-flight keeps every completed record.
///
/// # Panics
///
/// A panic inside `init` itself is not an item failure and is re-raised
/// (it means the run engine cannot be built at all).
pub fn parallel_map_resilient<T, S, R, I, F, C>(
    items: &[T],
    init: I,
    f: F,
    mut on_complete: C,
) -> (Vec<CaughtRun<R>>, Vec<S>)
where
    T: Sync,
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
    C: FnMut(usize, &CaughtRun<R>),
{
    let run_one = |state: &mut S, item: &T| -> CaughtRun<R> {
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| f(state, item)))
            .map_err(|payload| panic_message(payload.as_ref()));
        CaughtRun {
            elapsed: t0.elapsed(),
            result,
        }
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers = workers.min(items.len().max(1));
    if workers <= 1 || items.len() < 2 {
        let mut states = Vec::new();
        let mut state = init();
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let run = run_one(&mut state, item);
            if run.result.is_err() {
                states.push(std::mem::replace(&mut state, init()));
            }
            on_complete(i, &run);
            out.push(run);
        }
        states.push(state);
        return (out, states);
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, CaughtRun<R>)>();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let init = &init;
            let run_one = &run_one;
            handles.push(scope.spawn(move || {
                let mut retired = Vec::new();
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let run = run_one(&mut state, &items[i]);
                    if run.result.is_err() {
                        // The unwound state may be arbitrary; retire it
                        // (its counters still matter) and continue fresh.
                        retired.push(std::mem::replace(&mut state, init()));
                    }
                    if tx.send((i, run)).is_err() {
                        break;
                    }
                }
                retired.push(state);
                retired
            }));
        }
        drop(tx);

        let mut out: Vec<Option<CaughtRun<R>>> = (0..items.len()).map(|_| None).collect();
        for (i, run) in rx {
            on_complete(i, &run);
            out[i] = Some(run);
        }
        let mut states = Vec::new();
        let mut worker_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(s) => states.extend(s),
                Err(payload) => worker_panic = Some(payload),
            }
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
        let results = out
            .into_iter()
            .map(|r| r.expect("every index yields a caught run"))
            .collect();
        (results, states)
    })
}

/// Re-raise a caught worker panic, prefixing the failing item's index so
/// campaign logs identify which fault/input pair blew up.
fn raise_with_index(i: usize, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned());
    match msg {
        Some(m) => panic!("parallel_map worker panicked on item {i}: {m}"),
        None => {
            eprintln!("parallel_map worker panicked on item {i} (opaque payload)");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn works_on_tiny_inputs() {
        assert_eq!(parallel_map(&[5u32], |&x| x + 1), vec![6]);
        assert_eq!(parallel_map::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
    }

    #[test]
    fn handles_heavier_work() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| (0..10_000).fold(x, |a, b| a.wrapping_add(b)));
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], (0..10_000).sum::<u64>());
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Each worker counts how many items it processed; the counts must
        // sum to the item count no matter how the scheduler split them.
        let items: Vec<u32> = (0..500).collect();
        let (out, states) = parallel_map_with(
            &items,
            || 0u32,
            |count, &x| {
                *count += 1;
                x + 1
            },
        );
        assert_eq!(out, (1..=500).collect::<Vec<u32>>());
        assert_eq!(states.iter().sum::<u32>(), 500);
        assert!(!states.is_empty());
    }

    #[test]
    fn propagates_panic_with_item_index() {
        let items: Vec<u32> = (0..256).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                if x == 97 {
                    panic!("boom at {x}");
                }
                x
            })
        })
        .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(
            msg.contains("item 97"),
            "message should name the item: {msg}"
        );
        assert!(
            msg.contains("boom at 97"),
            "message should keep the cause: {msg}"
        );
    }

    #[test]
    fn propagates_panic_on_sequential_path() {
        let err = std::panic::catch_unwind(|| parallel_map(&[1u32], |_| panic!("single")))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().expect("wrapped message");
        assert!(
            msg.contains("item 0") && msg.contains("single"),
            "got: {msg}"
        );
    }

    #[test]
    fn propagates_panic_through_stateful_path() {
        // The warm-reboot engine routes everything through
        // `parallel_map_with`; a run blowing up there must also name the
        // failing item, not just the bare payload.
        let items: Vec<u32> = (0..128).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map_with(
                &items,
                || 0u64,
                |count, &x| {
                    *count += 1;
                    if x == 42 {
                        panic!("session wedged on {x}");
                    }
                    x
                },
            )
        })
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().expect("wrapped message");
        assert!(
            msg.contains("item 42") && msg.contains("session wedged on 42"),
            "got: {msg}"
        );
    }

    #[test]
    fn resilient_map_turns_panics_into_data() {
        let items: Vec<u32> = (0..256).collect();
        let (out, states) = parallel_map_resilient(
            &items,
            || 0u64,
            |count, &x| {
                *count += 1;
                if x % 100 == 97 {
                    panic!("boom at {x}");
                }
                x * 2
            },
            |_, _| {},
        );
        assert_eq!(out.len(), 256);
        for (i, run) in out.iter().enumerate() {
            if i % 100 == 97 {
                let msg = run.result.as_ref().expect_err("item must have panicked");
                assert!(msg.contains(&format!("boom at {i}")), "got: {msg}");
            } else {
                assert_eq!(*run.result.as_ref().expect("item succeeded"), i as u32 * 2);
            }
        }
        // Every item was attempted exactly once: retired states (from the
        // panicked items) plus live states account for all 256 attempts.
        assert_eq!(states.iter().sum::<u64>(), 256);
    }

    #[test]
    fn resilient_map_reports_completions_in_arrival_order() {
        let items: Vec<u32> = (0..64).collect();
        let mut seen = Vec::new();
        let (out, _) = parallel_map_resilient(
            &items,
            || (),
            |(), &x| x,
            |i, run| {
                assert!(run.result.is_ok());
                seen.push(i);
            },
        );
        assert_eq!(out.len(), 64);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<usize>>(), "each item once");
    }

    #[test]
    fn resilient_map_survives_single_item_panic() {
        // The sequential path (1 item) must also catch, not abort.
        let (out, states) = parallel_map_resilient(
            &[7u32],
            || 1u32,
            |_, _| -> u32 { panic!("single wedge") },
            |_, _| {},
        );
        assert!(out[0].result.as_ref().unwrap_err().contains("single wedge"));
        // One retired (wedged) state plus the fresh replacement.
        assert_eq!(states.len(), 2);
    }

    #[test]
    fn opaque_panic_payloads_survive_unwrapped() {
        // A non-string payload can't be folded into the index message;
        // it must be re-raised intact so callers can still downcast it.
        #[derive(Debug, PartialEq)]
        struct Diag(u32);
        let items: Vec<u32> = (0..64).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                if x == 7 {
                    std::panic::panic_any(Diag(x));
                }
                x
            })
        })
        .expect_err("panic must propagate");
        let diag = err.downcast_ref::<Diag>().expect("payload preserved");
        assert_eq!(*diag, Diag(7));
    }
}
