//! A minimal deterministic parallel-map over independent runs.
//!
//! Campaign runs are embarrassingly parallel; wall-clock matters because a
//! full reproduction executes 10⁴–10⁵ VM runs. Results are returned in
//! input order regardless of scheduling, and each worker thread can carry
//! reusable state (a warm [`crate::session::RunSession`]) across the items
//! it processes — the warm-reboot engine's "one session per worker, not
//! per run" contract.
//!
//! Worker panics are propagated to the caller with the index of the item
//! that failed, instead of surfacing as a misleading "every index
//! produced" unwind from the collection path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Map `f` over `items` on up to `available_parallelism` worker threads,
/// returning results in input order.
///
/// # Panics
/// If `f` panics for some item, the panic is re-raised on the calling
/// thread, prefixed with the failing item's index.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), item| f(item)).0
}

/// Like [`parallel_map`], but each worker thread owns a state value built
/// once by `init` and threaded through every item that worker processes.
///
/// Returns the in-order results plus the final worker states (one per
/// worker actually spawned; callers wanting aggregate counters fold over
/// them). Results must not depend on which worker handled which item —
/// the warm-reboot equivalence property is exactly what licenses this.
pub fn parallel_map_with<T, S, R, I, F>(items: &[T], init: I, f: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers = workers.min(items.len().max(1));
    if workers <= 1 || items.len() < 2 {
        let mut state = init();
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(&mut state, item))) {
                Ok(r) => out.push(r),
                Err(payload) => raise_with_index(i, payload),
            }
        }
        return (out, vec![state]);
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let init = &init;
            handles.push(scope.spawn(move || {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = catch_unwind(AssertUnwindSafe(|| f(&mut state, &items[i])));
                    let panicked = r.is_err();
                    if tx.send((i, r)).is_err() || panicked {
                        // After a panic the worker state may be arbitrary;
                        // stop this worker. Remaining items are picked up
                        // by the other workers (the caller re-raises the
                        // panic regardless).
                        break;
                    }
                }
                state
            }));
        }
        drop(tx);

        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        let mut failure: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (i, r) in rx {
            match r {
                Ok(v) => out[i] = Some(v),
                Err(payload) => match &failure {
                    Some((j, _)) if *j <= i => {}
                    _ => failure = Some((i, payload)),
                },
            }
        }
        let states: Vec<S> = handles.into_iter().filter_map(|h| h.join().ok()).collect();

        if let Some((i, payload)) = failure {
            raise_with_index(i, payload);
        }

        let results = out
            .into_iter()
            .map(|r| r.expect("all indices complete when no worker panicked"))
            .collect();
        (results, states)
    })
}

/// Re-raise a caught worker panic, prefixing the failing item's index so
/// campaign logs identify which fault/input pair blew up.
fn raise_with_index(i: usize, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned());
    match msg {
        Some(m) => panic!("parallel_map worker panicked on item {i}: {m}"),
        None => {
            eprintln!("parallel_map worker panicked on item {i} (opaque payload)");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn works_on_tiny_inputs() {
        assert_eq!(parallel_map(&[5u32], |&x| x + 1), vec![6]);
        assert_eq!(parallel_map::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
    }

    #[test]
    fn handles_heavier_work() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| (0..10_000).fold(x, |a, b| a.wrapping_add(b)));
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], (0..10_000).sum::<u64>());
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Each worker counts how many items it processed; the counts must
        // sum to the item count no matter how the scheduler split them.
        let items: Vec<u32> = (0..500).collect();
        let (out, states) = parallel_map_with(
            &items,
            || 0u32,
            |count, &x| {
                *count += 1;
                x + 1
            },
        );
        assert_eq!(out, (1..=500).collect::<Vec<u32>>());
        assert_eq!(states.iter().sum::<u32>(), 500);
        assert!(!states.is_empty());
    }

    #[test]
    fn propagates_panic_with_item_index() {
        let items: Vec<u32> = (0..256).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                if x == 97 {
                    panic!("boom at {x}");
                }
                x
            })
        })
        .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(
            msg.contains("item 97"),
            "message should name the item: {msg}"
        );
        assert!(
            msg.contains("boom at 97"),
            "message should keep the cause: {msg}"
        );
    }

    #[test]
    fn propagates_panic_on_sequential_path() {
        let err = std::panic::catch_unwind(|| parallel_map(&[1u32], |_| panic!("single")))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().expect("wrapped message");
        assert!(
            msg.contains("item 0") && msg.contains("single"),
            "got: {msg}"
        );
    }

    #[test]
    fn propagates_panic_through_stateful_path() {
        // The warm-reboot engine routes everything through
        // `parallel_map_with`; a run blowing up there must also name the
        // failing item, not just the bare payload.
        let items: Vec<u32> = (0..128).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map_with(
                &items,
                || 0u64,
                |count, &x| {
                    *count += 1;
                    if x == 42 {
                        panic!("session wedged on {x}");
                    }
                    x
                },
            )
        })
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().expect("wrapped message");
        assert!(
            msg.contains("item 42") && msg.contains("session wedged on 42"),
            "got: {msg}"
        );
    }

    #[test]
    fn opaque_panic_payloads_survive_unwrapped() {
        // A non-string payload can't be folded into the index message;
        // it must be re-raised intact so callers can still downcast it.
        #[derive(Debug, PartialEq)]
        struct Diag(u32);
        let items: Vec<u32> = (0..64).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                if x == 7 {
                    std::panic::panic_any(Diag(x));
                }
                x
            })
        })
        .expect_err("panic must propagate");
        let diag = err.downcast_ref::<Diag>().expect("payload preserved");
        assert_eq!(*diag, Diag(7));
    }
}
