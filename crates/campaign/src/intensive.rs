//! Intensive random testing of the faulty programs — the paper's Table 1.
//!
//! "Selected programs were intensively tested … by running the programs a
//! huge number of times with random input data sets." The observed failure
//! symptoms (Table 1) are percentages of wrong results; the paper saw no
//! hangs or crashes from real faults.

use serde::{Deserialize, Serialize};
use swifi_lang::compile;
use swifi_programs::all_programs;

use crate::engine::{split_records, CampaignEngine, CampaignOptions, CheckpointHeader};
use crate::prefix::PrefixCache;
use crate::runner::{FailureMode, ModeCounts};
use crate::session::RunSession;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Program name (paper style).
    pub program: String,
    /// ODC type of the planted fault.
    pub defect_type: String,
    /// Outcome counts over the intensive test.
    pub counts: ModeCounts,
    /// Runs that panicked out of the harness (recorded, not fatal).
    pub abnormal: u64,
}

impl Table1Row {
    /// "% Wrong results" column.
    pub fn wrong_pct(&self) -> f64 {
        self.counts.pct(FailureMode::Incorrect)
    }

    /// "% Correct results" column.
    pub fn correct_pct(&self) -> f64 {
        self.counts.pct(FailureMode::Correct)
    }
}

/// Run the intensive test: `runs` random inputs per faulty program.
///
/// The paper used more than 10 000 runs per program; the reproduction
/// scales with `runs` (see EXPERIMENTS.md for the scale used on record).
pub fn table1(runs: usize, seed: u64) -> Vec<Table1Row> {
    table1_with(runs, seed, &CampaignOptions::default()).expect("no checkpoint configured")
}

/// [`table1`] under explicit robustness options; each faulty program is
/// one checkpoint phase and each run is one work item.
///
/// # Errors
///
/// Checkpoint I/O failures and header/record corruption.
pub fn table1_with(
    runs: usize,
    seed: u64,
    opts: &CampaignOptions,
) -> Result<Vec<Table1Row>, String> {
    let header = CheckpointHeader::new("intensive", seed, runs as u64);
    let mut engine = CampaignEngine::new(header, opts)?;
    let mut chaos_base = 0u64;
    let mut rows = Vec::new();
    for p in all_programs() {
        let Some(faulty_src) = p.source_faulty else {
            continue;
        };
        let compiled = compile(faulty_src).expect("faulty source compiles");
        let inputs = p.family.test_case(runs, seed);
        let base = chaos_base;
        chaos_base += inputs.len() as u64;
        let prefix = (!opts.no_prefix_fork).then(PrefixCache::shared);
        let (records, _sessions) = engine.run_phase(
            p.name,
            &inputs,
            || {
                let mut s = RunSession::new(&compiled, p.family);
                opts.configure_session(&mut s);
                s.set_prefix_cache(prefix.clone());
                s.set_block_cache(!opts.no_block_cache);
                s
            },
            |session, i, input| {
                if opts.chaos_panic == Some(base + i as u64) {
                    panic!("chaos-panic injected at campaign item {}", base + i as u64);
                }
                session.run(input, None, 0).0
            },
            |i, _| format!("{} input #{i}", p.name),
        )?;
        let (modes, abnormal) = split_records(records);
        let mut counts = ModeCounts::default();
        for (_, m) in modes {
            counts.add(m);
        }
        rows.push(Table1Row {
            program: p.name.to_string(),
            defect_type: p
                .real_fault
                .expect("faulty implies fault")
                .defect_type
                .to_string(),
            counts,
            abnormal: abnormal.len() as u64,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_seven_faulty_programs() {
        let rows = table1(3, 1);
        assert_eq!(rows.len(), 7);
        let names: Vec<&str> = rows.iter().map(|r| r.program.as_str()).collect();
        for expect in [
            "C.team1", "C.team2", "C.team3", "C.team4", "C.team5", "JB.team6", "JB.team7",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        for r in &rows {
            assert_eq!(r.counts.total(), 3);
            // Real faults never hang or crash (paper observation).
            assert_eq!(r.counts.hang + r.counts.crash, 0, "{}", r.program);
        }
    }
}
