//! Intensive random testing of the faulty programs — the paper's Table 1.
//!
//! "Selected programs were intensively tested … by running the programs a
//! huge number of times with random input data sets." The observed failure
//! symptoms (Table 1) are percentages of wrong results; the paper saw no
//! hangs or crashes from real faults.

use serde::{Deserialize, Serialize};
use swifi_lang::compile;
use swifi_programs::all_programs;

use crate::pool::parallel_map_with;
use crate::runner::{FailureMode, ModeCounts};
use crate::session::RunSession;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Program name (paper style).
    pub program: String,
    /// ODC type of the planted fault.
    pub defect_type: String,
    /// Outcome counts over the intensive test.
    pub counts: ModeCounts,
}

impl Table1Row {
    /// "% Wrong results" column.
    pub fn wrong_pct(&self) -> f64 {
        self.counts.pct(FailureMode::Incorrect)
    }

    /// "% Correct results" column.
    pub fn correct_pct(&self) -> f64 {
        self.counts.pct(FailureMode::Correct)
    }
}

/// Run the intensive test: `runs` random inputs per faulty program.
///
/// The paper used more than 10 000 runs per program; the reproduction
/// scales with `runs` (see EXPERIMENTS.md for the scale used on record).
pub fn table1(runs: usize, seed: u64) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for p in all_programs() {
        let Some(faulty_src) = p.source_faulty else {
            continue;
        };
        let compiled = compile(faulty_src).expect("faulty source compiles");
        let inputs = p.family.test_case(runs, seed);
        let (modes, _sessions) = parallel_map_with(
            &inputs,
            || RunSession::new(&compiled, p.family),
            |session, input| session.run(input, None, 0).0,
        );
        let mut counts = ModeCounts::default();
        for m in modes {
            counts.add(m);
        }
        rows.push(Table1Row {
            program: p.name.to_string(),
            defect_type: p
                .real_fault
                .expect("faulty implies fault")
                .defect_type
                .to_string(),
            counts,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_seven_faulty_programs() {
        let rows = table1(3, 1);
        assert_eq!(rows.len(), 7);
        let names: Vec<&str> = rows.iter().map(|r| r.program.as_str()).collect();
        for expect in [
            "C.team1", "C.team2", "C.team3", "C.team4", "C.team5", "JB.team6", "JB.team7",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        for r in &rows {
            assert_eq!(r.counts.total(), 3);
            // Real faults never hang or crash (paper observation).
            assert_eq!(r.counts.hang + r.counts.crash, 0, "{}", r.program);
        }
    }
}
