//! Source-level G-SWFIT mutation campaigns.
//!
//! The paper's §5 verdict is that ≈44 % of field faults (ODC Algorithm +
//! Function) cannot be emulated by binary-level SWIFI. This driver closes
//! the loop: it injects faults in the *source* representation instead —
//! ODC-classified mutation operators over the MiniC AST
//! ([`swifi_lang::mutate`]) — and runs the resulting compilable mutants
//! through exactly the same warm-reboot engine, failure-mode classifier,
//! and checkpoint/resume machinery as the binary campaigns of §6.
//!
//! The mutant *budget* is apportioned across the ODC defect types by the
//! encoded field distribution ([`FieldDistribution::apportion_among`]),
//! so a source campaign injects Algorithm/Function faults in roughly the
//! proportion they occur in the field — the population binary SWIFI
//! structurally misses.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use swifi_core::source::{FaultSource, InjectionPlan, PreparedFault};
use swifi_lang::mutate::{self, Mutant};
use swifi_lang::{compile, Program};
use swifi_odc::{DefectType, FieldDistribution, MutationOperator};
use swifi_programs::TargetProgram;

use swifi_trace::event::{arg_str, arg_u64};
use swifi_trace::{Telemetry, TraceEvent, WorkerTelemetry, ENGINE_TID};

use crate::engine::{
    split_records, AbnormalRun, CampaignEngine, CampaignOptions, CheckpointHeader, PhaseTime,
};
use crate::runner::{classify_outcome, FailureMode, ModeCounts};
use crate::session::{RunSession, SessionStats, Throughput};

/// Source-campaign sizing: how many mutants to inject and how many inputs
/// to run per mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceScale {
    /// Mutants injected per program (apportioned across defect types by
    /// the field distribution; clamped to the available sites).
    pub mutant_budget: usize,
    /// Runs per mutant (the shared test case size).
    pub inputs_per_mutant: usize,
}

impl SourceScale {
    /// Full scale, mirroring the §6 campaigns' 300 inputs per fault.
    pub fn paper() -> SourceScale {
        SourceScale {
            mutant_budget: 100,
            inputs_per_mutant: 300,
        }
    }

    /// The default reproduction scale (minutes, not hours).
    pub fn reduced() -> SourceScale {
        SourceScale {
            mutant_budget: 18,
            inputs_per_mutant: 6,
        }
    }

    /// Honour the `REPRO_FULL` environment variable.
    pub fn from_env() -> SourceScale {
        if std::env::var_os("REPRO_FULL").is_some() {
            SourceScale::paper()
        } else {
            SourceScale::reduced()
        }
    }
}

/// The source-mutation implementor of [`FaultSource`]: enumerate the
/// G-SWFIT mutants of a program, select a field-weighted subset, and
/// compile each one into a self-contained [`PreparedFault::Baked`] plan.
///
/// Mutant compilation is cached per `(program, operator, site)` — the
/// mutant id encodes the operator and site, and the cache lives with this
/// source, so re-deriving plans (a resumed campaign, a comparison driver
/// running the same program twice) recompiles nothing.
pub struct SourceMutationSource {
    base: Program,
    budget: usize,
    cache: Mutex<HashMap<String, Program>>,
}

impl std::fmt::Debug for SourceMutationSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceMutationSource")
            .field("budget", &self.budget)
            .finish()
    }
}

impl SourceMutationSource {
    /// Wrap an already-compiled base program.
    pub fn new(base: Program, budget: usize) -> SourceMutationSource {
        SourceMutationSource {
            base,
            budget,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Compile a roster program's corrected source and wrap it.
    ///
    /// # Panics
    ///
    /// Panics if the vendored source fails to compile (a build error, not
    /// an input error).
    pub fn from_target(target: &TargetProgram, budget: usize) -> SourceMutationSource {
        let base = compile(target.source_correct).expect("vendored source compiles");
        SourceMutationSource::new(base, budget)
    }

    /// Every mutant the operators can generate for this program (before
    /// budget selection).
    pub fn total_mutants(&self) -> usize {
        MutationOperator::ALL
            .iter()
            .map(|&op| mutate::count_sites(&self.base.ast, op))
            .sum()
    }
}

/// Select up to `budget` mutants, apportioning the budget across the
/// represented ODC defect types by the field distribution, choosing
/// uniformly at random within each type, then restoring the stable
/// `(operator, site)` order. Quota unused by a sparse type spills over to
/// the remaining mutants in stable order, so the budget is always met when
/// enough mutants exist.
fn select_mutants(muts: &[Mutant], budget: usize, seed: u64) -> Vec<Mutant> {
    if budget >= muts.len() {
        return muts.to_vec();
    }
    let mut by_type: BTreeMap<DefectType, Vec<usize>> = BTreeMap::new();
    for (i, m) in muts.iter().enumerate() {
        by_type.entry(m.operator.defect_type()).or_default().push(i);
    }
    let represented: Vec<DefectType> = by_type.keys().copied().collect();
    let quotas = FieldDistribution::approx_field_data().apportion_among(&represented, budget);
    let mut chosen: Vec<usize> = Vec::new();
    for (k, (ty, quota)) in quotas.iter().enumerate() {
        let pool = &by_type[ty];
        let mut order: Vec<usize> = pool.clone();
        order.shuffle(&mut StdRng::seed_from_u64(
            seed.wrapping_add(0xD1F7 * (k as u64 + 1)),
        ));
        chosen.extend(order.into_iter().take(*quota));
    }
    // Spill unused quota (types with fewer sites than their share) onto
    // the not-yet-chosen mutants in stable order.
    if chosen.len() < budget {
        let taken: std::collections::HashSet<usize> = chosen.iter().copied().collect();
        chosen.extend(
            (0..muts.len())
                .filter(|i| !taken.contains(i))
                .take(budget - chosen.len()),
        );
    }
    chosen.sort_unstable();
    chosen.into_iter().map(|i| muts[i].clone()).collect()
}

/// Stable per-plan seed salt from the mutant's identity.
fn mutant_salt(op: MutationOperator, site: usize) -> u64 {
    let oi = MutationOperator::ALL
        .iter()
        .position(|&o| o == op)
        .expect("operator is in ALL") as u64;
    (oi << 32) | site as u64
}

impl FaultSource for SourceMutationSource {
    fn representation(&self) -> &'static str {
        "source"
    }

    fn plans(&self, seed: u64) -> Result<Vec<InjectionPlan>, String> {
        let all = mutate::mutants(&self.base.ast);
        let selected = select_mutants(&all, self.budget, seed);
        let mut cache = self.cache.lock().expect("mutant cache lock");
        selected
            .into_iter()
            .map(|m| {
                let program = match cache.get(&m.id) {
                    Some(p) => p.clone(),
                    None => {
                        let p = compile(&m.source)
                            .map_err(|e| format!("mutant {} does not compile: {e:?}", m.id))?;
                        cache.insert(m.id.clone(), p.clone());
                        p
                    }
                };
                Ok(InjectionPlan {
                    id: m.id,
                    group: m.operator.id().to_string(),
                    defect_type: m.operator.defect_type(),
                    line: m.line,
                    func: m.func,
                    seed_salt: mutant_salt(m.operator, m.site),
                    fault: PreparedFault::Baked(Box::new(program)),
                })
            })
            .collect()
    }
}

/// Source-mutation campaign results for one program — the source-side
/// analogue of [`crate::section6::ProgramCampaign`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceCampaign {
    /// Program name.
    pub program: String,
    /// Mutants the operators could generate (before budget selection).
    pub total_mutants: usize,
    /// Mutants actually injected.
    pub selected_mutants: usize,
    /// Failure modes over all mutant runs.
    pub modes: ModeCounts,
    /// Failure modes per mutation operator.
    pub by_operator: BTreeMap<MutationOperator, ModeCounts>,
    /// Failure modes per ODC defect type — including the Algorithm and
    /// Function rows the binary campaigns cannot populate.
    pub by_defect_type: BTreeMap<DefectType, ModeCounts>,
    /// Runs where the mutant never diverged from the fault-free run
    /// (the source analogue of a dormant fault).
    pub dormant_runs: u64,
    /// Total mutant runs.
    pub total_runs: u64,
    /// Run-engine throughput (run counts folded from the records, so a
    /// resumed campaign reports the same totals as an uninterrupted one).
    pub throughput: Throughput,
    /// Per-phase wall clock (equality ignores the elapsed component).
    pub phase_times: Vec<PhaseTime>,
    /// Work items that panicked out of the harness.
    pub abnormal: Vec<AbnormalRun>,
}

/// Run the source-mutation campaign for one program.
///
/// # Panics
///
/// Panics if the program's corrected source fails to compile.
pub fn source_campaign(target: &TargetProgram, scale: SourceScale, seed: u64) -> SourceCampaign {
    source_campaign_with(target, scale, seed, &CampaignOptions::default())
        .expect("no checkpoint configured")
}

/// [`source_campaign`] under explicit robustness options — the same
/// checkpoint/resume, watchdog, and chaos knobs as the binary campaigns.
///
/// Each mutant is one work item running the whole shared test case; a
/// killed campaign resumes mutant-by-mutant from the JSONL checkpoint and
/// folds to a report equal to an uninterrupted one.
///
/// Activation ("fired") is observational: a run counts as activated when
/// its failure mode or output differs from the fault-free run of the base
/// program on the same input — a baked mutant has no trigger hardware to
/// report firing, so divergence *is* the signal.
///
/// # Errors
///
/// Checkpoint I/O failures, header/record corruption, and mutants that
/// fail to compile (a bug in the mutation engine, surfaced not masked).
///
/// # Panics
///
/// Panics if the program's corrected source fails to compile.
pub fn source_campaign_with(
    target: &TargetProgram,
    scale: SourceScale,
    seed: u64,
    opts: &CampaignOptions,
) -> Result<SourceCampaign, String> {
    let source = SourceMutationSource::from_target(target, scale.mutant_budget);
    let total_mutants = source.total_mutants();
    let plans = source.plans(seed)?;
    let inputs = target
        .family
        .test_case(scale.inputs_per_mutant, seed ^ 0x5EED);

    // The activation oracle: the base program's fault-free (mode, output)
    // per input, under the same watchdog as the mutant runs.
    let base = &source.base;
    let mut ref_session = RunSession::new(base, target.family);
    ref_session.set_watchdog(opts.watchdog);
    if let Some(poll) = opts.watchdog_poll {
        ref_session.set_watchdog_poll(poll);
    }
    ref_session.set_block_cache(!opts.no_block_cache);
    let expected: Vec<Vec<u8>> = inputs.iter().map(|i| i.expected_output()).collect();
    let clean: Vec<(FailureMode, Vec<u8>)> = inputs
        .iter()
        .zip(&expected)
        .map(|(input, exp)| {
            let outcome = ref_session.run_clean(input);
            (classify_outcome(&outcome, exp), outcome.output().to_vec())
        })
        .collect();

    let header = CheckpointHeader::new(
        format!("source:{}:{}", target.name, scale.mutant_budget),
        seed,
        scale.inputs_per_mutant as u64,
    );
    let mut engine = CampaignEngine::new(header, opts)?;
    let t0 = std::time::Instant::now();
    let campaign_start = opts.telemetry.as_deref().map(Telemetry::now_us);

    // One work item per mutant. Each mutant is its own compiled image, so
    // the worker builds a fresh session per item (snapshot included) and
    // folds its counters into the worker's running stats; the prefix-fork
    // cache does not apply (there is no shared base image to fork from).
    // The worker's telemetry accumulator is loaned to each per-item
    // session (so profiling and session events land on the worker's
    // lane) and reclaimed afterwards — one lane per worker, not one per
    // mutant.
    type WorkerState = (SessionStats, Option<WorkerTelemetry>);
    let (records, states) = engine.run_phase(
        "mutants",
        &plans,
        || -> WorkerState {
            (
                SessionStats::default(),
                opts.telemetry.as_ref().map(|t| t.worker()),
            )
        },
        |state, i, plan| {
            if opts.chaos_panic == Some(i as u64) {
                panic!("chaos-panic injected at campaign item {i}");
            }
            let PreparedFault::Baked(program) = &plan.fault else {
                panic!("source plans are baked mutants");
            };
            let span_start = state.1.as_ref().map(WorkerTelemetry::now_us);
            let mut session = RunSession::new(program, target.family);
            session.set_watchdog(opts.watchdog);
            if let Some(poll) = opts.watchdog_poll {
                session.set_watchdog_poll(poll);
            }
            session.set_block_cache(!opts.no_block_cache);
            // Loan the worker's lane, not a fresh one per mutant.
            session.set_telemetry(state.1.take());
            let mut counts = ModeCounts::default();
            let mut activated = 0u64;
            for (j, input) in inputs.iter().enumerate() {
                let outcome = session.run_clean(input);
                let mode = classify_outcome(&outcome, &expected[j]);
                counts.add(mode);
                let (clean_mode, clean_out) = &clean[j];
                if mode != *clean_mode || outcome.output() != clean_out.as_slice() {
                    activated += 1;
                }
            }
            state.1 = session.take_telemetry();
            if let Some(t) = state.1.as_mut() {
                if let Some(start) = span_start {
                    // One span per mutant: a baked mutant has no
                    // single-run boundary the session exposes, so the
                    // item is the traced unit.
                    t.complete(
                        "run",
                        start,
                        vec![
                            arg_str("mutant", &plan.id),
                            arg_u64("runs", counts.total()),
                            arg_u64("activated", activated),
                        ],
                    );
                }
                t.counter_add("runs", counts.total());
                t.counter_add("fired_runs", activated);
                t.counter_add("dormant_runs", counts.total() - activated);
            }
            state.0.merge(&session.stats());
            (counts, activated)
        },
        |i, plan| format!("mutant #{i}: {} ({})", plan.id, plan.group),
    )?;
    let phase_times = engine.take_phase_times();

    let (ok, abnormal) = split_records(records);

    // Fold engine counters from the workers that actually ran, then
    // refold the run totals from the records (resume-safe, like §6).
    let mut stats = SessionStats::default();
    for (s, _) in &states {
        stats.merge(s);
    }
    stats.merge(&ref_session.stats());
    let mut throughput = Throughput {
        elapsed_secs: t0.elapsed().as_secs_f64(),
        retired_instrs: stats.retired_instrs,
        decode_lines_built: stats.decode_lines_built,
        decode_invalidations: stats.decode_invalidations,
        slow_fetches: stats.slow_fetches,
        blocks_built: stats.blocks_built,
        block_hits: stats.block_hits,
        block_instrs: stats.block_instrs,
        block_fallbacks: stats.block_fallbacks,
        block_invalidations: stats.block_invalidations,
        ..Throughput::default()
    };
    for (_, (counts, activated)) in &ok {
        throughput.runs += counts.total();
        throughput.fired_runs += activated;
        throughput.dormant_runs += counts.total() - activated;
    }

    let mut out = SourceCampaign {
        program: target.name.to_string(),
        total_mutants,
        selected_mutants: plans.len(),
        modes: ModeCounts::default(),
        by_operator: BTreeMap::new(),
        by_defect_type: BTreeMap::new(),
        dormant_runs: 0,
        total_runs: 0,
        throughput,
        phase_times,
        abnormal,
    };
    for (index, (counts, activated)) in ok {
        let plan = &plans[index as usize];
        let op = MutationOperator::from_id(&plan.group).expect("plan group is an operator id");
        out.modes.merge(&counts);
        out.by_operator.entry(op).or_default().merge(&counts);
        out.by_defect_type
            .entry(plan.defect_type)
            .or_default()
            .merge(&counts);
        out.dormant_runs += counts.total() - activated;
        out.total_runs += counts.total();
    }
    // Worker lanes drain on drop; retire them now so a metrics-merge
    // failure lands in this campaign's abnormal bucket rather than dying
    // with the process (mirrors §6).
    drop(states);
    if let Some(telemetry) = opts.telemetry.as_deref() {
        for message in telemetry.take_merge_errors() {
            out.abnormal.push(AbnormalRun {
                phase: "telemetry".to_string(),
                index: out.abnormal.len() as u64,
                message,
                detail: "metrics merge on worker retire".to_string(),
            });
        }
    }
    if let (Some(telemetry), Some(start)) = (opts.telemetry.as_deref(), campaign_start) {
        telemetry.engine_event(TraceEvent::complete(
            "campaign",
            start,
            telemetry.now_us().saturating_sub(start),
            ENGINE_TID,
            vec![
                arg_str("campaign", format!("source:{}", target.name)),
                arg_u64("runs", out.total_runs),
            ],
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_programs::program;

    #[test]
    fn source_plans_are_baked_compiled_mutants() {
        let target = program("JB.team11").unwrap();
        let source = SourceMutationSource::from_target(&target, 10);
        assert_eq!(source.representation(), "source");
        let plans = source.plans(7).unwrap();
        assert_eq!(plans.len(), 10.min(source.total_mutants()));
        for p in &plans {
            assert!(matches!(p.fault, PreparedFault::Baked(_)));
            let op = MutationOperator::from_id(&p.group).expect("group is an operator id");
            assert_eq!(op.defect_type(), p.defect_type);
        }
        // Seed determinism: same selection, same ids, same order.
        let again: Vec<String> = source.plans(7).unwrap().into_iter().map(|p| p.id).collect();
        let ids: Vec<String> = plans.into_iter().map(|p| p.id).collect();
        assert_eq!(ids, again);
    }

    #[test]
    fn source_plans_reach_inemulable_defect_types() {
        // The tentpole's point: binary plans stop at Assignment/Checking;
        // an unbudgeted source plan set covers Algorithm and Function too.
        let target = program("JB.team6").unwrap();
        let source = SourceMutationSource::from_target(&target, usize::MAX);
        let plans = source.plans(3).unwrap();
        let types: std::collections::BTreeSet<DefectType> =
            plans.iter().map(|p| p.defect_type).collect();
        assert!(types.contains(&DefectType::Algorithm), "{types:?}");
        assert!(types.contains(&DefectType::Function), "{types:?}");
        assert!(types.contains(&DefectType::Assignment), "{types:?}");
        assert!(types.contains(&DefectType::Checking), "{types:?}");
    }

    #[test]
    fn budget_selection_is_field_weighted_and_stable() {
        let target = program("JB.team6").unwrap();
        let base = compile(target.source_correct).unwrap();
        let muts = mutate::mutants(&base.ast);
        let budget = 12.min(muts.len() - 1);
        let sel = select_mutants(&muts, budget, 5);
        assert_eq!(sel.len(), budget, "budget is met when enough sites exist");
        // Stable (operator, site) order survives the per-type shuffles.
        let pos = |m: &Mutant| {
            muts.iter()
                .position(|x| x.id == m.id)
                .expect("selected from muts")
        };
        assert!(sel.windows(2).all(|w| pos(&w[0]) < pos(&w[1])));
    }

    #[test]
    fn small_source_campaign_produces_full_accounting() {
        let target = program("JB.team11").unwrap();
        let scale = SourceScale {
            mutant_budget: 8,
            inputs_per_mutant: 3,
        };
        let c = source_campaign(&target, scale, 11);
        assert_eq!(c.selected_mutants, 8);
        assert!(c.total_mutants >= c.selected_mutants);
        assert_eq!(c.total_runs, 8 * 3);
        assert_eq!(c.modes.total(), c.total_runs);
        let by_op: u64 = c.by_operator.values().map(ModeCounts::total).sum();
        assert_eq!(by_op, c.total_runs);
        let by_ty: u64 = c.by_defect_type.values().map(ModeCounts::total).sum();
        assert_eq!(by_ty, c.total_runs);
        // Mutants hit: not every run can stay correct.
        assert!(c.modes.correct < c.modes.total());
        assert_eq!(c.throughput.runs, c.total_runs);
        assert_eq!(
            c.throughput.fired_runs + c.throughput.dormant_runs,
            c.total_runs
        );
        assert_eq!(c.throughput.dormant_runs, c.dormant_runs);
        assert!(c.abnormal.is_empty());
    }

    #[test]
    fn source_campaign_is_seed_deterministic() {
        let target = program("JB.team11").unwrap();
        let scale = SourceScale {
            mutant_budget: 5,
            inputs_per_mutant: 2,
        };
        let a = source_campaign(&target, scale, 9);
        let b = source_campaign(&target, scale, 9);
        assert_eq!(a, b);
    }
}
