//! §6.1 ablation: steering injection without field data.
//!
//! The paper argues that when field data is unavailable, software metrics
//! can substitute for its two uses — choosing *where* to inject and *how
//! many* faults per module. This experiment compares three allocation
//! strategies on the same program and fault budget:
//!
//! - **uniform** — every function weighted equally;
//! - **metrics-guided** — weights from the complexity-based proneness
//!   score;
//! - **field-data** — externally supplied per-function weights (here a
//!   synthetic "defect history" concentrated in the most complex
//!   function, standing in for real field data).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use swifi_core::locations::{
    assign_faults_for, check_faults_for, choose_locations, restrict_to_functions, GeneratedFault,
};
use swifi_lang::compile;
use swifi_metrics::{allocate, measure, AllocationStrategy};
use swifi_programs::TargetProgram;

use crate::engine::{split_records, CampaignEngine, CampaignOptions, CheckpointHeader};
use crate::prefix::{watch_pcs_of, PrefixCache};
use crate::runner::ModeCounts;
use crate::section6::CampaignScale;
use crate::session::RunSession;

/// Results for one allocation strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Strategy label.
    pub strategy: String,
    /// Function → allocated fault-location count.
    pub allocation: Vec<(String, usize)>,
    /// Failure modes over all runs.
    pub modes: ModeCounts,
    /// Dormant (never-fired) runs — the interesting signal: locations in
    /// rarely executed functions stay dormant.
    pub dormant_runs: u64,
    /// Work items that panicked out of the harness and were recorded as
    /// abnormal instead of aborting the experiment.
    pub abnormal: u64,
}

/// Run the ablation on one program with a total budget of `budget`
/// locations per strategy.
pub fn ablation(
    target: &TargetProgram,
    budget: usize,
    scale: CampaignScale,
    seed: u64,
) -> Vec<AblationRow> {
    ablation_with(target, budget, scale, seed, &CampaignOptions::default())
        .expect("no checkpoint configured")
}

/// [`ablation`] under explicit robustness options (checkpoint/resume,
/// watchdog, chaos injection); each strategy is one checkpoint phase.
///
/// # Errors
///
/// Checkpoint I/O failures and header/record corruption.
pub fn ablation_with(
    target: &TargetProgram,
    budget: usize,
    scale: CampaignScale,
    seed: u64,
    opts: &CampaignOptions,
) -> Result<Vec<AblationRow>, String> {
    let compiled = compile(target.source_correct).expect("vendored source compiles");
    let ast = swifi_lang::parser::parse(target.source_correct).expect("parses");
    let metrics = measure(target.source_correct, &ast);

    // Synthetic field data: defects concentrated in the highest-proneness
    // function (a stand-in with the same *shape* as real defect history).
    let field: HashMap<String, f64> = {
        let mut m = HashMap::new();
        if let Some(worst) = metrics
            .functions
            .iter()
            .max_by(|a, b| a.proneness().partial_cmp(&b.proneness()).unwrap())
        {
            m.insert(worst.name.clone(), 3.0);
        }
        for f in &metrics.functions {
            m.entry(f.name.clone()).or_insert(1.0);
        }
        m
    };

    let strategies: Vec<(String, AllocationStrategy)> = vec![
        ("uniform".to_string(), AllocationStrategy::Uniform),
        (
            "metrics-guided".to_string(),
            AllocationStrategy::MetricsGuided,
        ),
        (
            "field-data".to_string(),
            AllocationStrategy::FieldData(field),
        ),
    ];

    let inputs = target
        .family
        .test_case(scale.inputs_per_fault, seed ^ 0xAB1A);
    let header = CheckpointHeader::new(
        format!("ablation:{}", target.name),
        seed,
        scale.inputs_per_fault as u64,
    );
    let mut engine = CampaignEngine::new(header, opts)?;
    let mut chaos_base = 0u64;
    // Shared across all three strategies: they run the same program on
    // the same inputs, differing only in where the faults land.
    let prefix = (!opts.no_prefix_fork).then(PrefixCache::shared);
    // Gather every strategy's fault set before any run: the shared
    // cache's watch list must cover all three strategies up front,
    // because the traced clean run happens once per input — PCs declared
    // after it would never enter the def-use evidence.
    let strategy_faults: Vec<_> = strategies
        .into_iter()
        .map(|(label, strategy)| {
            let allocation = allocate(&metrics, &strategy, budget);
            // Gather the per-function fault sets.
            let mut faults: Vec<GeneratedFault> = Vec::new();
            for (func, n) in &allocation {
                if *n == 0 {
                    continue;
                }
                let mut plan = choose_locations(&compiled.debug, *n, *n, seed);
                restrict_to_functions(&compiled.debug, &mut plan, std::slice::from_ref(func));
                // Refill up to n from this function's own sites.
                let assign_sites: Vec<usize> = compiled
                    .debug
                    .assigns
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| &s.func == func)
                    .map(|(i, _)| i)
                    .take(*n)
                    .collect();
                let check_sites: Vec<usize> = compiled
                    .debug
                    .checks
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| &s.func == func)
                    .map(|(i, _)| i)
                    .take(*n)
                    .collect();
                for i in assign_sites {
                    faults.extend(assign_faults_for(&compiled.debug.assigns[i]));
                }
                for i in check_sites {
                    faults.extend(check_faults_for(&compiled.debug.checks[i]));
                }
            }
            (label, allocation, faults)
        })
        .collect();
    if let Some(cache) = &prefix {
        cache.set_watch_pcs(watch_pcs_of(
            strategy_faults
                .iter()
                .flat_map(|(_, _, faults)| faults)
                .map(|f| &f.spec),
        ));
    }
    strategy_faults
        .into_iter()
        .map(|(label, allocation, faults)| {
            let base = chaos_base;
            chaos_base += faults.len() as u64;
            let (records, _sessions) = engine.run_phase(
                &label,
                &faults,
                || {
                    let mut s = RunSession::new(&compiled, target.family);
                    opts.configure_session(&mut s);
                    s.set_prefix_cache(prefix.clone());
                    s.set_block_cache(!opts.no_block_cache);
                    s
                },
                |session, i, fault| {
                    if opts.chaos_panic == Some(base + i as u64) {
                        panic!("chaos-panic injected at campaign item {}", base + i as u64);
                    }
                    let mut counts = ModeCounts::default();
                    let mut dormant = 0u64;
                    for (j, input) in inputs.iter().enumerate() {
                        let (mode, fired) =
                            session.run(input, Some(&fault.spec), seed.wrapping_add(j as u64));
                        counts.add(mode);
                        if !fired {
                            dormant += 1;
                        }
                    }
                    (counts, dormant)
                },
                |i, fault| format!("fault #{i} at {:#x}", fault.site_addr),
            )?;
            let (per_fault, abnormal) = split_records(records);
            let mut modes = ModeCounts::default();
            let mut dormant_runs = 0;
            for (_, (c, d)) in per_fault {
                modes.merge(&c);
                dormant_runs += d;
            }
            Ok(AblationRow {
                strategy: label,
                allocation,
                modes,
                dormant_runs,
                abnormal: abnormal.len() as u64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_programs::program;

    #[test]
    fn three_strategies_reported() {
        let target = program("JB.team11").unwrap();
        let rows = ablation(
            &target,
            4,
            CampaignScale {
                inputs_per_fault: 2,
            },
            9,
        );
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(
                r.allocation.iter().map(|&(_, n)| n).sum::<usize>(),
                4,
                "{} must allocate the whole budget",
                r.strategy
            );
            assert!(r.modes.total() > 0, "{} ran nothing", r.strategy);
        }
    }

    #[test]
    fn strategies_differ_in_where_they_inject() {
        let target = program("SOR").unwrap();
        let rows = ablation(
            &target,
            8,
            CampaignScale {
                inputs_per_fault: 1,
            },
            2,
        );
        let uniform = &rows[0].allocation;
        let guided = &rows[1].allocation;
        assert_ne!(uniform, guided, "metrics should reshape the allocation");
    }
}
