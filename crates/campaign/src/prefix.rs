//! The prefix-fork cache: share the fault-free prefix across injected
//! runs.
//!
//! A §6 campaign runs one fault against many inputs, and many faults
//! against the *same* inputs. For the dominant fault shape — an
//! [`swifi_core::fault::Trigger::OpcodeFetch`] trigger with a
//! non-memory target — every architectural effect of the fault is
//! confined to the suffix that starts at the trigger's first firing
//! occurrence: the prefix up to that point is bit-identical to the
//! fault-free (golden) run. Re-executing that prefix for every injected
//! run is pure waste.
//!
//! A [`PrefixCache`] eliminates it. For each `(input, trigger-pc,
//! firing-occurrence)` key the first run pays for a golden execution
//! paused at the trigger ([`swifi_vm::Machine::run_to_fetch`]) and
//! captures a sparse [`ForkSnapshot`]; every later run with the same
//! key restores the snapshot ([`swifi_vm::Machine::restore_fork`]) and
//! executes only the divergent suffix. Two memoizations ride along:
//!
//! - **golden runs** — a capture run whose trigger never fires *is* a
//!   complete fault-free run; its outcome and retired-instruction count
//!   are recorded per input, so later clean runs (and dormant
//!   classifications) are answered without executing;
//! - **trigger totals** — the same finished capture proves how many
//!   times the trigger PC executes in the golden run, so any fault
//!   needing a later occurrence is classified dormant outright.
//!
//! The cache is owned by the campaign driver and shared across the
//! worker pool behind an [`Arc`]: all sessions of one phase run the
//! same compiled program with the same [`swifi_vm::MachineConfig`], so
//! a snapshot captured by one worker restores onto any other worker's
//! machine (a tested VM invariant). A cache is only valid for the
//! `(program, config)` pair it was created for — drivers build one per
//! compiled target and never share it across programs.
//!
//! Snapshot storage is bounded ([`PrefixCache::with_capacity`]): once
//! full, new snapshots are simply not retained (runs fall back to full
//! execution), so a pathological campaign cannot exhaust memory. The
//! golden/total maps hold a few words per input and are unbounded.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use swifi_programs::input::TestInput;
use swifi_vm::machine::RunOutcome;
use swifi_vm::ForkSnapshot;

/// A memoized fault-free run of the cached program on one input.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// How the fault-free run ended.
    pub outcome: RunOutcome,
    /// Guest instructions the fault-free run retired.
    pub retired: u64,
}

/// Default bound on retained fork snapshots.
const DEFAULT_MAX_SNAPSHOTS: usize = 1024;

#[derive(Default)]
struct Inner {
    /// (input, trigger pc, firing occurrence) → paused golden state.
    snapshots: HashMap<(TestInput, u32, u64), Arc<ForkSnapshot>>,
    /// input → memoized fault-free run.
    golden: HashMap<TestInput, GoldenRun>,
    /// (input, trigger pc) → exact trigger-arrival count in the golden
    /// run (recorded only when a capture run finishes without hitting,
    /// which observes the full count).
    totals: HashMap<(TestInput, u32), u64>,
    /// input → host-oracle expected output, shared across sessions.
    expected: HashMap<TestInput, Arc<Vec<u8>>>,
    /// (input, trigger pc, firing occurrence) keys whose capture run
    /// found the prefix too shallow to be worth forking — later runs
    /// with these keys take the plain path without even attempting a
    /// capture. Unbounded like the other memos (a few words per fault).
    shallow: HashSet<(TestInput, u32, u64)>,
}

/// Bounded, shared store of golden prefixes for one compiled program.
///
/// All methods take `&self`; the cache is internally locked and is
/// shared across the worker pool via [`Arc`].
pub struct PrefixCache {
    inner: Mutex<Inner>,
    max_snapshots: usize,
}

impl std::fmt::Debug for PrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        f.debug_struct("PrefixCache")
            .field("snapshots", &inner.snapshots.len())
            .field("golden", &inner.golden.len())
            .field("max_snapshots", &self.max_snapshots)
            .finish()
    }
}

impl Default for PrefixCache {
    fn default() -> PrefixCache {
        PrefixCache::new()
    }
}

impl PrefixCache {
    /// A cache with the default snapshot bound.
    pub fn new() -> PrefixCache {
        PrefixCache::with_capacity(DEFAULT_MAX_SNAPSHOTS)
    }

    /// A cache retaining at most `max_snapshots` fork snapshots. Golden
    /// and trigger-total memos are not bounded (they are a few words per
    /// input).
    pub fn with_capacity(max_snapshots: usize) -> PrefixCache {
        PrefixCache {
            inner: Mutex::new(Inner::default()),
            max_snapshots,
        }
    }

    /// A fresh cache wrapped for sharing across a worker pool.
    pub fn shared() -> Arc<PrefixCache> {
        Arc::new(PrefixCache::new())
    }

    /// The cached fork snapshot for `(input, pc, occurrence)`, if any.
    pub fn snapshot(&self, input: &TestInput, pc: u32, occ: u64) -> Option<Arc<ForkSnapshot>> {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        inner.snapshots.get(&(input.clone(), pc, occ)).cloned()
    }

    /// Retain a fork snapshot, unless the bound is reached. Returns
    /// whether the snapshot was stored (an equal key may already be
    /// present when two workers raced on the same miss; the first one
    /// wins and the duplicate is dropped).
    pub fn insert_snapshot(
        &self,
        input: &TestInput,
        pc: u32,
        occ: u64,
        snapshot: Arc<ForkSnapshot>,
    ) -> bool {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        if inner.snapshots.len() >= self.max_snapshots {
            return false;
        }
        let key = (input.clone(), pc, occ);
        if inner.snapshots.contains_key(&key) {
            return false;
        }
        inner.snapshots.insert(key, snapshot);
        true
    }

    /// The memoized fault-free run for `input`, if one was recorded.
    pub fn golden(&self, input: &TestInput) -> Option<GoldenRun> {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        inner.golden.get(input).cloned()
    }

    /// Record the fault-free run for `input` (first writer wins; a
    /// duplicate from a racing worker is identical by determinism).
    pub fn record_golden(&self, input: &TestInput, run: GoldenRun) {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        inner.golden.entry(input.clone()).or_insert(run);
    }

    /// The exact number of golden-run arrivals at trigger `pc` on
    /// `input`, if a finished capture run has observed it.
    pub fn total_occurrences(&self, input: &TestInput, pc: u32) -> Option<u64> {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        inner.totals.get(&(input.clone(), pc)).copied()
    }

    /// Record the golden-run arrival count for `(input, pc)`.
    pub fn record_total(&self, input: &TestInput, pc: u32, total: u64) {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        inner.totals.entry((input.clone(), pc)).or_insert(total);
    }

    /// Whether `(input, pc, occ)` was memoized as a shallow trigger —
    /// forking it costs more than it saves, so runs with this key take
    /// the plain fork-free path.
    pub fn is_shallow(&self, input: &TestInput, pc: u32, occ: u64) -> bool {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        inner.shallow.contains(&(input.clone(), pc, occ))
    }

    /// Memoize `(input, pc, occ)` as a shallow trigger. The verdict is
    /// deterministic (it compares the paused prefix depth against the
    /// memoized golden run), so racing workers record the same answer.
    pub fn record_shallow(&self, input: &TestInput, pc: u32, occ: u64) {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        inner.shallow.insert((input.clone(), pc, occ));
    }

    /// The host-oracle expected output for `input`, computed once across
    /// all sessions sharing this cache.
    pub fn expected_output(&self, input: &TestInput) -> Arc<Vec<u8>> {
        if let Some(v) = self
            .inner
            .lock()
            .expect("prefix cache poisoned")
            .expected
            .get(input)
        {
            return v.clone();
        }
        // Compute outside the lock: the oracle run can be slow and two
        // workers racing here produce identical bytes.
        let computed = Arc::new(input.expected_output());
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        inner
            .expected
            .entry(input.clone())
            .or_insert(computed)
            .clone()
    }

    /// Number of fork snapshots currently retained.
    pub fn snapshot_count(&self) -> usize {
        self.inner
            .lock()
            .expect("prefix cache poisoned")
            .snapshots
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_lang::compile;
    use swifi_programs::program;
    use swifi_vm::inspect::Noop;
    use swifi_vm::machine::{Machine, MachineConfig};

    fn tiny_fork(src: &str) -> ForkSnapshot {
        let image = swifi_vm::asm::assemble(src).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        m.run(&mut Noop);
        m.fork_snapshot()
    }

    #[test]
    fn snapshot_store_is_bounded() {
        let target = program("JB.team11").unwrap();
        let _ = compile(target.source_correct).unwrap();
        let inputs = target.family.test_case(3, 1);
        let cache = PrefixCache::with_capacity(2);
        let snap = Arc::new(tiny_fork("li r3, 0\nhalt"));
        assert!(cache.insert_snapshot(&inputs[0], 0x100, 1, snap.clone()));
        assert!(
            !cache.insert_snapshot(&inputs[0], 0x100, 1, snap.clone()),
            "duplicate key is dropped"
        );
        assert!(cache.insert_snapshot(&inputs[1], 0x100, 1, snap.clone()));
        assert!(
            !cache.insert_snapshot(&inputs[2], 0x100, 1, snap.clone()),
            "bound reached"
        );
        assert_eq!(cache.snapshot_count(), 2);
        assert!(cache.snapshot(&inputs[0], 0x100, 1).is_some());
        assert!(cache.snapshot(&inputs[0], 0x104, 1).is_none());
        assert!(cache.snapshot(&inputs[2], 0x100, 1).is_none());
    }

    #[test]
    fn shallow_memo_is_keyed_per_occurrence() {
        let target = program("JB.team11").unwrap();
        let input = &target.family.test_case(1, 3)[0];
        let cache = PrefixCache::new();
        assert!(!cache.is_shallow(input, 0x100, 1));
        cache.record_shallow(input, 0x100, 1);
        assert!(cache.is_shallow(input, 0x100, 1));
        // A later occurrence of the same trigger is a deeper prefix and
        // keeps its own verdict.
        assert!(!cache.is_shallow(input, 0x100, 2));
        assert!(!cache.is_shallow(input, 0x104, 1));
    }

    #[test]
    fn golden_and_totals_memoize_first_writer() {
        let target = program("JB.team11").unwrap();
        let input = &target.family.test_case(1, 2)[0];
        let cache = PrefixCache::new();
        assert!(cache.golden(input).is_none());
        assert!(cache.total_occurrences(input, 0x100).is_none());
        cache.record_total(input, 0x100, 7);
        cache.record_total(input, 0x100, 99);
        assert_eq!(cache.total_occurrences(input, 0x100), Some(7));
        let expected = cache.expected_output(input);
        assert_eq!(*expected, input.expected_output());
        assert!(Arc::ptr_eq(&expected, &cache.expected_output(input)));
    }
}
