//! The prefix-fork cache: share the fault-free prefix across injected
//! runs.
//!
//! A §6 campaign runs one fault against many inputs, and many faults
//! against the *same* inputs. For the dominant fault shape — an
//! [`swifi_core::fault::Trigger::OpcodeFetch`] trigger with a
//! non-memory target — every architectural effect of the fault is
//! confined to the suffix that starts at the trigger's first firing
//! occurrence: the prefix up to that point is bit-identical to the
//! fault-free (golden) run. Re-executing that prefix for every injected
//! run is pure waste.
//!
//! A [`PrefixCache`] eliminates it. For each `(input, trigger-pc,
//! firing-occurrence)` key the first run pays for a golden execution
//! paused at the trigger ([`swifi_vm::Machine::run_to_fetch`]) and
//! captures a sparse [`ForkSnapshot`]; every later run with the same
//! key restores the snapshot ([`swifi_vm::Machine::restore_fork`]) and
//! executes only the divergent suffix. Several memoizations ride along:
//!
//! - **golden runs** — a capture run whose trigger never fires *is* a
//!   complete fault-free run; its outcome and retired-instruction count
//!   are recorded per input, so later clean runs (and dormant
//!   classifications) are answered without executing;
//! - **trigger totals** — the same finished capture proves how many
//!   times the trigger PC executes in the golden run, so any fault
//!   needing a later occurrence is classified dormant outright;
//! - **def-use traces** — one dedicated clean run per input records a
//!   [`DefUseTrace`] over the campaign's candidate trigger PCs
//!   ([`PrefixCache::set_watch_pcs`]), the evidence base for provable
//!   dormancy and the adaptive run planner (`plan.rs`);
//! - **collapse classes** — a fired run whose complete corruption log
//!   ([`FireLog`]) is on record becomes the representative for every
//!   later fault that provably applies the identical corruptions at the
//!   same trigger occurrence ([`PrefixCache::collapse_match`]).
//!
//! The cache is owned by the campaign driver and shared across the
//! worker pool behind an [`Arc`]: all sessions of one phase run the
//! same compiled program with the same [`swifi_vm::MachineConfig`], so
//! a snapshot captured by one worker restores onto any other worker's
//! machine (a tested VM invariant). A cache is only valid for the
//! `(program, config)` pair it was created for — drivers build one per
//! compiled target and never share it across programs.
//!
//! Inputs are interned to a small integer id on first write and every
//! key embeds the id, so the hot lookups (`is_shallow`, `snapshot`,
//! `golden`, …) hash a few machine words instead of cloning a full
//! [`TestInput`] per probe.
//!
//! Snapshot storage is bounded ([`PrefixCache::with_capacity`]) with
//! FIFO eviction: once full, the oldest retained snapshot is dropped to
//! admit the new one, so a pathological campaign cannot exhaust memory.
//! Evicting a snapshot never touches the shallow-veto memo (and vice
//! versa): the verdict memos are a few words per key and unbounded.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use crate::plan::RunPlan;
use swifi_core::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
use swifi_core::injector::FireLog;
use swifi_programs::input::TestInput;
use swifi_vm::defuse::DefUseTrace;
use swifi_vm::machine::RunOutcome;
use swifi_vm::ForkSnapshot;

/// A memoized fault-free run of the cached program on one input.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// How the fault-free run ended.
    pub outcome: RunOutcome,
    /// Guest instructions the fault-free run retired.
    pub retired: u64,
}

/// A memoized representative injected run: the complete corruption log
/// it applied plus how it ended. A later fault whose error operation
/// provably reproduces `log` event-for-event shares this record instead
/// of executing (outcome-equivalence collapse).
#[derive(Debug, Clone)]
pub struct CollapseClass {
    /// Every corruption the representative applied, in firing order.
    /// Always complete (truncated logs are refused at record time).
    pub log: Arc<FireLog>,
    /// How the representative run ended.
    pub outcome: RunOutcome,
    /// Whether the representative's fault fired.
    pub fired: bool,
    /// Guest instructions the representative retired.
    pub retired: u64,
}

/// Default bound on retained fork snapshots.
const DEFAULT_MAX_SNAPSHOTS: usize = 1024;

/// Bound on distinct collapse classes memoized per
/// `(input, pc, occurrence, target, firing)` key; campaigns generate only
/// a handful of error ops per location, so overflow means the key is
/// pathological and further representatives are simply not retained.
const MAX_COLLAPSE_PER_KEY: usize = 8;

/// (interned input, trigger pc, firing occurrence).
type SnapKey = (u32, u32, u64);

/// (interned input, trigger pc, firing occurrence, target, firing).
type CollapseKey = (u32, u32, u64, Target, Firing);

#[derive(Default)]
struct Inner {
    /// Input → small dense id; assigned on first write touching the
    /// input. Read paths that find no id know the cache holds nothing
    /// for that input.
    ids: HashMap<TestInput, u32>,
    /// (input id, trigger pc, firing occurrence) → paused golden state.
    snapshots: HashMap<SnapKey, Arc<ForkSnapshot>>,
    /// Insertion order of `snapshots` keys, for FIFO eviction.
    snap_order: VecDeque<SnapKey>,
    /// input id → memoized fault-free run.
    golden: HashMap<u32, GoldenRun>,
    /// (input id, trigger pc) → exact trigger-arrival count in the
    /// golden run (recorded only when a capture run finishes without
    /// hitting, which observes the full count).
    totals: HashMap<(u32, u32), u64>,
    /// input id → host-oracle expected output, shared across sessions.
    expected: HashMap<u32, Arc<Vec<u8>>>,
    /// Keys whose capture run found the prefix too shallow to be worth
    /// forking — later runs with these keys take the plain path without
    /// even attempting a capture. Unbounded like the other memos (a few
    /// words per fault).
    shallow: HashSet<SnapKey>,
    /// input id → def-use trace of the dedicated clean run. `Some(None)`
    /// memoizes a failed attempt (e.g. the clean run hit the watchdog)
    /// so it is not retried per fault.
    traces: HashMap<u32, Option<Arc<DefUseTrace>>>,
    /// Representative injected runs for outcome-equivalence collapse.
    collapse: HashMap<CollapseKey, Vec<CollapseClass>>,
    /// Memoized successful collapse probes: the exact probe key → the
    /// class that matched. Classes are append-only, so a hit never goes
    /// stale; misses are not cached (a later representative may match).
    collapse_memo: HashMap<(CollapseKey, ErrorOp), CollapseClass>,
    /// (input id, fault spec) → the adaptive planner's verdict. The plan
    /// is a pure function of the first-writer-wins def-use trace, so one
    /// occurrence walk serves every later run of the same pair.
    plans: HashMap<(u32, FaultSpec), RunPlan>,
    /// Candidate trigger PCs the campaign will inject at — the def-use
    /// recorder watches exactly these during the traced clean run.
    watch: Arc<Vec<u32>>,
}

impl Inner {
    fn id(&self, input: &TestInput) -> Option<u32> {
        self.ids.get(input).copied()
    }

    fn intern(&mut self, input: &TestInput) -> u32 {
        if let Some(&id) = self.ids.get(input) {
            return id;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(input.clone(), id);
        id
    }
}

/// Bounded, shared store of golden prefixes for one compiled program.
///
/// All methods take `&self`; the cache is internally locked and is
/// shared across the worker pool via [`Arc`].
pub struct PrefixCache {
    inner: Mutex<Inner>,
    max_snapshots: usize,
}

impl std::fmt::Debug for PrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        f.debug_struct("PrefixCache")
            .field("snapshots", &inner.snapshots.len())
            .field("golden", &inner.golden.len())
            .field("max_snapshots", &self.max_snapshots)
            .finish()
    }
}

impl Default for PrefixCache {
    fn default() -> PrefixCache {
        PrefixCache::new()
    }
}

impl PrefixCache {
    /// A cache with the default snapshot bound.
    pub fn new() -> PrefixCache {
        PrefixCache::with_capacity(DEFAULT_MAX_SNAPSHOTS)
    }

    /// A cache retaining at most `max_snapshots` fork snapshots (FIFO
    /// eviction beyond that). Golden, trigger-total, shallow, trace and
    /// collapse memos are not bounded the same way (they are a few words
    /// per key).
    pub fn with_capacity(max_snapshots: usize) -> PrefixCache {
        PrefixCache {
            inner: Mutex::new(Inner::default()),
            max_snapshots,
        }
    }

    /// A fresh cache wrapped for sharing across a worker pool.
    pub fn shared() -> Arc<PrefixCache> {
        Arc::new(PrefixCache::new())
    }

    /// Number of distinct inputs interned so far.
    pub fn interned_inputs(&self) -> usize {
        self.inner.lock().expect("prefix cache poisoned").ids.len()
    }

    /// The cached fork snapshot for `(input, pc, occurrence)`, if any.
    pub fn snapshot(&self, input: &TestInput, pc: u32, occ: u64) -> Option<Arc<ForkSnapshot>> {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.id(input)?;
        inner.snapshots.get(&(id, pc, occ)).cloned()
    }

    /// Retain a fork snapshot, evicting the oldest retained one when the
    /// bound is reached. Returns whether the snapshot was stored (an
    /// equal key may already be present when two workers raced on the
    /// same miss; the first one wins and the duplicate is dropped).
    pub fn insert_snapshot(
        &self,
        input: &TestInput,
        pc: u32,
        occ: u64,
        snapshot: Arc<ForkSnapshot>,
    ) -> bool {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.intern(input);
        let key = (id, pc, occ);
        if inner.snapshots.contains_key(&key) {
            return false;
        }
        while inner.snapshots.len() >= self.max_snapshots {
            match inner.snap_order.pop_front() {
                Some(oldest) => {
                    inner.snapshots.remove(&oldest);
                }
                // max_snapshots == 0: nothing to evict, nothing retained.
                None => return false,
            }
        }
        inner.snapshots.insert(key, snapshot);
        inner.snap_order.push_back(key);
        true
    }

    /// The memoized fault-free run for `input`, if one was recorded.
    pub fn golden(&self, input: &TestInput) -> Option<GoldenRun> {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.id(input)?;
        inner.golden.get(&id).cloned()
    }

    /// Record the fault-free run for `input` (first writer wins; a
    /// duplicate from a racing worker is identical by determinism).
    pub fn record_golden(&self, input: &TestInput, run: GoldenRun) {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.intern(input);
        inner.golden.entry(id).or_insert(run);
    }

    /// The exact number of golden-run arrivals at trigger `pc` on
    /// `input`, if a finished capture run has observed it.
    pub fn total_occurrences(&self, input: &TestInput, pc: u32) -> Option<u64> {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.id(input)?;
        inner.totals.get(&(id, pc)).copied()
    }

    /// Record the golden-run arrival count for `(input, pc)`.
    pub fn record_total(&self, input: &TestInput, pc: u32, total: u64) {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.intern(input);
        inner.totals.entry((id, pc)).or_insert(total);
    }

    /// Whether `(input, pc, occ)` was memoized as a shallow trigger —
    /// forking it costs more than it saves, so runs with this key take
    /// the plain fork-free path.
    pub fn is_shallow(&self, input: &TestInput, pc: u32, occ: u64) -> bool {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        match inner.id(input) {
            Some(id) => inner.shallow.contains(&(id, pc, occ)),
            None => false,
        }
    }

    /// Memoize `(input, pc, occ)` as a shallow trigger. The verdict is
    /// deterministic (it compares the paused prefix depth against the
    /// memoized golden run), so racing workers record the same answer.
    pub fn record_shallow(&self, input: &TestInput, pc: u32, occ: u64) {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.intern(input);
        inner.shallow.insert((id, pc, occ));
    }

    /// The def-use trace of `input`'s clean run: `None` if no traced run
    /// happened yet, `Some(None)` if one was attempted and memoized as
    /// unusable, `Some(Some(trace))` otherwise.
    #[allow(clippy::option_option)]
    pub fn trace(&self, input: &TestInput) -> Option<Option<Arc<DefUseTrace>>> {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.id(input)?;
        inner.traces.get(&id).cloned()
    }

    /// Record the def-use trace of `input`'s clean run (first writer
    /// wins). Pass `None` to memoize a failed attempt so it is not
    /// retried for every fault.
    pub fn record_trace(&self, input: &TestInput, trace: Option<Arc<DefUseTrace>>) {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.intern(input);
        inner.traces.entry(id).or_insert(trace);
    }

    /// A memoized representative run whose complete corruption log is
    /// exactly what `op` would apply: every logged event satisfies
    /// `op.apply(input) == output`. Sound by induction — identical
    /// corruptions applied to the identical pre-states reproduce the
    /// representative's entire trajectory. Non-deterministic ops
    /// ([`ErrorOp::ReplaceRandom`]) never match.
    pub fn collapse_match(
        &self,
        input: &TestInput,
        pc: u32,
        occ: u64,
        target: Target,
        when: Firing,
        op: &ErrorOp,
    ) -> Option<CollapseClass> {
        if matches!(op, ErrorOp::ReplaceRandom) {
            return None;
        }
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.id(input)?;
        let key = (id, pc, occ, target, when);
        if let Some(class) = inner.collapse_memo.get(&(key, *op)) {
            return Some(class.clone());
        }
        let classes = inner.collapse.get(&key)?;
        let class = classes
            .iter()
            .find(|c| {
                c.log
                    .events
                    .iter()
                    .all(|ev| op.apply(ev.input, 0) == ev.output)
            })
            .cloned()?;
        inner.collapse_memo.insert((key, *op), class.clone());
        Some(class)
    }

    /// The adaptive planner's memoized verdict for `(input, spec)`, if
    /// one was recorded ([`PrefixCache::record_plan`]).
    pub fn plan_memo(&self, input: &TestInput, spec: &FaultSpec) -> Option<RunPlan> {
        let inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.id(input)?;
        inner.plans.get(&(id, *spec)).copied()
    }

    /// Memoize the planner's verdict for `(input, spec)`. The verdict
    /// derives from the input's def-use trace, which is first-writer-wins
    /// and immutable once recorded — so one occurrence walk serves every
    /// later run of the pair, across all workers.
    pub fn record_plan(&self, input: &TestInput, spec: &FaultSpec, plan: RunPlan) {
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.intern(input);
        inner.plans.insert((id, *spec), plan);
    }

    /// Retain a fired run as the collapse representative for its key.
    /// Truncated logs are refused (they cannot prove equivalence); per
    /// key at most [`MAX_COLLAPSE_PER_KEY`] distinct classes are kept.
    /// Returns whether the class was stored (duplicates and overflow are
    /// dropped).
    pub fn record_collapse(
        &self,
        input: &TestInput,
        pc: u32,
        occ: u64,
        target: Target,
        when: Firing,
        class: CollapseClass,
    ) -> bool {
        if !class.log.complete() {
            return false;
        }
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.intern(input);
        let classes = inner
            .collapse
            .entry((id, pc, occ, target, when))
            .or_default();
        if classes.len() >= MAX_COLLAPSE_PER_KEY
            || classes.iter().any(|c| c.log.events == class.log.events)
        {
            return false;
        }
        classes.push(class);
        true
    }

    /// Declare the campaign's candidate trigger PCs. The traced clean
    /// run watches exactly these; drivers call this once, after
    /// generating the fault set and before starting the pool.
    pub fn set_watch_pcs(&self, mut pcs: Vec<u32>) {
        pcs.sort_unstable();
        pcs.dedup();
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        inner.watch = Arc::new(pcs);
    }

    /// The declared candidate trigger PCs (empty until
    /// [`PrefixCache::set_watch_pcs`]).
    pub fn watch_pcs(&self) -> Arc<Vec<u32>> {
        self.inner
            .lock()
            .expect("prefix cache poisoned")
            .watch
            .clone()
    }

    /// The host-oracle expected output for `input`, computed once across
    /// all sessions sharing this cache.
    pub fn expected_output(&self, input: &TestInput) -> Arc<Vec<u8>> {
        {
            let inner = self.inner.lock().expect("prefix cache poisoned");
            if let Some(v) = inner.id(input).and_then(|id| inner.expected.get(&id)) {
                return v.clone();
            }
        }
        // Compute outside the lock: the oracle run can be slow and two
        // workers racing here produce identical bytes.
        let computed = Arc::new(input.expected_output());
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let id = inner.intern(input);
        inner.expected.entry(id).or_insert(computed).clone()
    }

    /// Number of fork snapshots currently retained.
    pub fn snapshot_count(&self) -> usize {
        self.inner
            .lock()
            .expect("prefix cache poisoned")
            .snapshots
            .len()
    }
}

/// The distinct [`Trigger::OpcodeFetch`] PCs of a fault set — the watch
/// list campaign drivers hand to [`PrefixCache::set_watch_pcs`]. Faults
/// with other trigger shapes contribute nothing: the def-use machinery
/// only reasons about fetch-triggered corruption.
pub fn watch_pcs_of<'a>(specs: impl IntoIterator<Item = &'a FaultSpec>) -> Vec<u32> {
    specs
        .into_iter()
        .filter_map(|s| match s.trigger {
            Trigger::OpcodeFetch(pc) => Some(pc),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_core::injector::FireEvent;
    use swifi_lang::compile;
    use swifi_programs::program;
    use swifi_vm::inspect::Noop;
    use swifi_vm::machine::{Machine, MachineConfig};

    fn tiny_fork(src: &str) -> ForkSnapshot {
        let image = swifi_vm::asm::assemble(src).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        m.run(&mut Noop);
        m.fork_snapshot()
    }

    #[test]
    fn snapshot_store_evicts_fifo_at_the_bound() {
        let target = program("JB.team11").unwrap();
        let _ = compile(target.source_correct).unwrap();
        let inputs = target.family.test_case(3, 1);
        let cache = PrefixCache::with_capacity(2);
        let snap = Arc::new(tiny_fork("li r3, 0\nhalt"));
        assert!(cache.insert_snapshot(&inputs[0], 0x100, 1, snap.clone()));
        assert!(
            !cache.insert_snapshot(&inputs[0], 0x100, 1, snap.clone()),
            "duplicate key is dropped"
        );
        assert!(cache.insert_snapshot(&inputs[1], 0x100, 1, snap.clone()));
        assert!(
            cache.insert_snapshot(&inputs[2], 0x100, 1, snap.clone()),
            "bound reached: oldest is evicted, newcomer admitted"
        );
        assert_eq!(cache.snapshot_count(), 2);
        assert!(
            cache.snapshot(&inputs[0], 0x100, 1).is_none(),
            "FIFO evicts the oldest key"
        );
        assert!(cache.snapshot(&inputs[1], 0x100, 1).is_some());
        assert!(cache.snapshot(&inputs[2], 0x100, 1).is_some());
        assert!(cache.snapshot(&inputs[1], 0x104, 1).is_none());

        let empty = PrefixCache::with_capacity(0);
        assert!(
            !empty.insert_snapshot(&inputs[0], 0x100, 1, snap),
            "zero capacity retains nothing"
        );
    }

    #[test]
    fn evicting_a_snapshot_keeps_its_shallow_verdict() {
        let target = program("JB.team11").unwrap();
        let inputs = target.family.test_case(3, 1);
        let cache = PrefixCache::with_capacity(1);
        let snap = Arc::new(tiny_fork("li r3, 0\nhalt"));
        cache.record_shallow(&inputs[0], 0x100, 7);
        assert!(cache.insert_snapshot(&inputs[0], 0x100, 1, snap.clone()));
        // Evict inputs[0]'s snapshot by inserting under another key.
        assert!(cache.insert_snapshot(&inputs[1], 0x100, 1, snap));
        assert!(cache.snapshot(&inputs[0], 0x100, 1).is_none());
        assert!(
            cache.is_shallow(&inputs[0], 0x100, 7),
            "shallow verdict must survive snapshot eviction"
        );
    }

    #[test]
    fn shallow_verdicts_never_evict_snapshots() {
        let target = program("JB.team11").unwrap();
        let inputs = target.family.test_case(2, 1);
        let cache = PrefixCache::with_capacity(1);
        let snap = Arc::new(tiny_fork("li r3, 0\nhalt"));
        assert!(cache.insert_snapshot(&inputs[0], 0x100, 1, snap));
        // Flood the shallow memo well past the snapshot capacity.
        for occ in 1..64 {
            cache.record_shallow(&inputs[1], 0x104, occ);
        }
        assert!(
            cache.snapshot(&inputs[0], 0x100, 1).is_some(),
            "shallow recording must not disturb retained snapshots"
        );
        assert_eq!(cache.snapshot_count(), 1);
    }

    #[test]
    fn shallow_memo_is_keyed_per_occurrence() {
        let target = program("JB.team11").unwrap();
        let input = &target.family.test_case(1, 3)[0];
        let cache = PrefixCache::new();
        assert!(!cache.is_shallow(input, 0x100, 1));
        cache.record_shallow(input, 0x100, 1);
        assert!(cache.is_shallow(input, 0x100, 1));
        // A later occurrence of the same trigger is a deeper prefix and
        // keeps its own verdict.
        assert!(!cache.is_shallow(input, 0x100, 2));
        assert!(!cache.is_shallow(input, 0x104, 1));
    }

    #[test]
    fn golden_and_totals_memoize_first_writer() {
        let target = program("JB.team11").unwrap();
        let input = &target.family.test_case(1, 2)[0];
        let cache = PrefixCache::new();
        assert!(cache.golden(input).is_none());
        assert!(cache.total_occurrences(input, 0x100).is_none());
        cache.record_total(input, 0x100, 7);
        cache.record_total(input, 0x100, 99);
        assert_eq!(cache.total_occurrences(input, 0x100), Some(7));
        let expected = cache.expected_output(input);
        assert_eq!(*expected, input.expected_output());
        assert!(Arc::ptr_eq(&expected, &cache.expected_output(input)));
    }

    #[test]
    fn inputs_intern_to_stable_ids() {
        let target = program("JB.team11").unwrap();
        let inputs = target.family.test_case(2, 1);
        let cache = PrefixCache::new();
        assert_eq!(cache.interned_inputs(), 0);
        cache.record_total(&inputs[0], 0x100, 3);
        cache.record_shallow(&inputs[0], 0x100, 1);
        cache.record_total(&inputs[1], 0x100, 5);
        assert_eq!(cache.interned_inputs(), 2, "repeat writes reuse the id");
        assert_eq!(cache.total_occurrences(&inputs[0], 0x100), Some(3));
        assert_eq!(cache.total_occurrences(&inputs[1], 0x100), Some(5));
        assert!(cache.is_shallow(&inputs[0], 0x100, 1));
        assert!(!cache.is_shallow(&inputs[1], 0x100, 1));
    }

    #[test]
    fn collapse_matches_exact_corruption_logs_only() {
        let target = program("JB.team11").unwrap();
        let input = &target.family.test_case(1, 2)[0];
        let cache = PrefixCache::new();
        let key = (0x10C_u32, 1_u64, Target::DataBusStore, Firing::EveryTime);
        let class = CollapseClass {
            log: Arc::new(FireLog {
                events: vec![FireEvent {
                    input: 41,
                    output: 42,
                }],
                overflowed: false,
            }),
            outcome: RunOutcome::Completed {
                exit_code: 0,
                output: b"42".to_vec(),
            },
            fired: true,
            retired: 10,
        };
        cache.record_collapse(input, key.0, key.1, key.2, key.3, class);
        let hit = |op: &ErrorOp| cache.collapse_match(input, key.0, key.1, key.2, key.3, op);
        // Add(1) on 41 → 42 and Replace(42) on anything → 42: both
        // provably reproduce the representative's only corruption.
        assert!(hit(&ErrorOp::Add(1)).is_some());
        assert!(hit(&ErrorOp::Replace(42)).is_some());
        assert!(hit(&ErrorOp::Or(3)).is_none(), "41|3 = 43, not 42");
        assert!(hit(&ErrorOp::Add(2)).is_none());
        assert!(
            hit(&ErrorOp::ReplaceRandom).is_none(),
            "non-deterministic ops never collapse"
        );
        // Different occurrence / target / firing: separate keys.
        assert!(cache
            .collapse_match(input, key.0, 2, key.2, key.3, &ErrorOp::Add(1))
            .is_none());
        assert!(cache
            .collapse_match(
                input,
                key.0,
                key.1,
                Target::DataBusLoad,
                key.3,
                &ErrorOp::Add(1)
            )
            .is_none());
        let retired = hit(&ErrorOp::Add(1)).unwrap().retired;
        assert_eq!(retired, 10);

        // Truncated logs are refused at record time.
        let truncated = CollapseClass {
            log: Arc::new(FireLog {
                events: Vec::new(),
                overflowed: true,
            }),
            outcome: RunOutcome::Hang { output: Vec::new() },
            fired: true,
            retired: 1,
        };
        cache.record_collapse(input, 0x200, 1, key.2, key.3, truncated);
        assert!(cache
            .collapse_match(input, 0x200, 1, key.2, key.3, &ErrorOp::Add(1))
            .is_none());
    }

    #[test]
    fn trace_and_watch_memos() {
        let target = program("JB.team11").unwrap();
        let input = &target.family.test_case(1, 2)[0];
        let cache = PrefixCache::new();
        assert!(cache.watch_pcs().is_empty());
        cache.set_watch_pcs(vec![0x10C, 0x104, 0x10C]);
        assert_eq!(*cache.watch_pcs(), vec![0x104, 0x10C]);

        assert!(cache.trace(input).is_none(), "no traced run yet");
        cache.record_trace(input, None);
        assert!(
            matches!(cache.trace(input), Some(None)),
            "failed attempt memoized, not retried"
        );
        // First writer wins: a later success does not overwrite.
        let dummy = {
            let image = swifi_vm::asm::assemble("li r3, 0\nhalt").unwrap();
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            let rec = swifi_vm::DefUseRecorder::new(
                m.core(0),
                &image.code,
                &[],
                swifi_vm::InputTape::new(),
            );
            let mut rec = rec;
            let out = m.run(&mut rec);
            Arc::new(rec.finish(&out))
        };
        cache.record_trace(input, Some(dummy));
        assert!(matches!(cache.trace(input), Some(None)));
    }
}
