//! Campaign sharding: split a campaign's (fault, input) run schedule
//! into contiguous per-phase ranges, run each range against its own
//! checkpoint, and union the shard checkpoints back into one campaign.
//!
//! The whole design leans on the PR 4 invariant that the checkpoint *is*
//! the campaign: records key by `(phase, index)` and drivers fold their
//! reports from records, so a shard run simply produces a checkpoint
//! with a subset of the records. Merging is a set union under one
//! validated header, and the merged report is produced by a final
//! `resume = true` pass in which every item replays — byte-for-byte the
//! same fold an uninterrupted single-process campaign performs. That
//! makes shard equality true by construction, and makes a killed shard
//! free to recover: its missing records are simply executed by the
//! final pass like any other unrecorded item.

use std::ops::Range;
use std::path::{Path, PathBuf};

use serde::Value;

use crate::engine::{CampaignOptions, CheckpointHeader};

/// One shard's identity: `index` of `count` contiguous slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's position, `0 .. count`.
    pub index: u64,
    /// Total number of shards the campaign is split into.
    pub count: u64,
}

impl Shard {
    /// A validated shard identity.
    ///
    /// # Errors
    ///
    /// Rejects `count == 0` and `index >= count`.
    pub fn new(index: u64, count: u64) -> Result<Shard, String> {
        let s = Shard { index, count };
        s.validate()?;
        Ok(s)
    }

    /// Check the identity is well-formed.
    ///
    /// # Errors
    ///
    /// Rejects `count == 0` and `index >= count`.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if self.index >= self.count {
            return Err(format!(
                "shard index {} out of range for {} shard(s)",
                self.index, self.count
            ));
        }
        Ok(())
    }

    /// This shard's contiguous slice of a phase with `items` work items.
    ///
    /// The `⌊items·k/count⌋` split tiles `0..items` exactly — every item
    /// lands in one and only one shard — and balances within one item.
    pub fn range(&self, items: usize) -> Range<usize> {
        let n = items as u64;
        let lo = n * self.index / self.count;
        let hi = n * (self.index + 1) / self.count;
        lo as usize..hi as usize
    }
}

/// What [`merge_checkpoints`] found and wrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeSummary {
    /// Shard checkpoint files read.
    pub shards_read: usize,
    /// Shard paths that did not exist (killed before the header write);
    /// their records are executed by the final resume pass instead.
    pub shards_missing: usize,
    /// Distinct `(phase, index)` records written to the merged file.
    pub records: usize,
    /// Records seen in more than one shard file (first occurrence wins;
    /// duplicates only arise when shard ranges overlapped, e.g. after a
    /// resubmission with a different shard count).
    pub duplicates: usize,
}

/// Union shard checkpoint files into one merged checkpoint at `out`.
///
/// The header is taken from the first shard file present and every other
/// shard must carry the identical header (same campaign, seed, scale) —
/// mixing shards of different campaigns is refused, not silently merged.
/// A torn final line in a shard (the worker was killed mid-append) is
/// dropped exactly as `CheckpointLog::resume` drops it; a malformed line
/// anywhere else is corruption and errors naming the file.
///
/// # Errors
///
/// Rejects an empty shard list, mismatched headers, unreadable or
/// corrupt shard files, and I/O failures writing `out`.
pub fn merge_checkpoints(shards: &[PathBuf], out: &Path) -> Result<MergeSummary, String> {
    if shards.is_empty() {
        return Err("no shard checkpoints to merge".to_string());
    }
    let mut summary = MergeSummary::default();
    let mut header: Option<CheckpointHeader> = None;
    let mut merged: std::collections::BTreeMap<(String, u64), Value> =
        std::collections::BTreeMap::new();
    for path in shards {
        if !path.exists() {
            summary.shards_missing += 1;
            continue;
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read shard checkpoint `{}`: {e}", path.display()))?;
        if text.is_empty() {
            // Zero-byte shard: killed before the header write; same as
            // missing for merge purposes.
            summary.shards_missing += 1;
            continue;
        }
        summary.shards_read += 1;
        let line_end =
            |pos: usize| -> usize { text[pos..].find('\n').map_or(text.len(), |i| pos + i + 1) };
        let mut pos = line_end(0);
        let stored: CheckpointHeader = serde_json::from_str(text[..pos].trim_end())
            .map_err(|e| format!("shard `{}` has a bad header: {e}", path.display()))?;
        match &header {
            None => header = Some(stored),
            Some(h) if *h == stored => {}
            Some(h) => {
                return Err(format!(
                    "shard `{}` belongs to a different campaign: \
                     found {}/seed {}/scale {}, expected {}/seed {}/scale {}",
                    path.display(),
                    stored.campaign,
                    stored.seed,
                    stored.scale,
                    h.campaign,
                    h.seed,
                    h.scale,
                ));
            }
        }
        let mut line_no = 1;
        while pos < text.len() {
            let end = line_end(pos);
            let line = text[pos..end].trim_end();
            line_no += 1;
            if !line.is_empty() {
                match serde_json::from_str::<Value>(line) {
                    Ok(v) => {
                        let key = record_key(&v).map_err(|e| {
                            format!("shard `{}` line {line_no}: {e}", path.display())
                        })?;
                        match merged.entry(key) {
                            std::collections::btree_map::Entry::Occupied(_) => {
                                summary.duplicates += 1;
                            }
                            std::collections::btree_map::Entry::Vacant(slot) => {
                                slot.insert(v);
                            }
                        }
                    }
                    Err(e) if end == text.len() => {
                        // Torn tail from a mid-append kill; the final
                        // resume pass reruns the item.
                        let _ = e;
                    }
                    Err(e) => {
                        return Err(format!(
                            "shard `{}` line {line_no} is corrupt: {e}",
                            path.display(),
                        ));
                    }
                }
            }
            pos = end;
        }
    }
    let header = header.ok_or("no shard checkpoint produced a header (all missing or empty)")?;
    summary.records = merged.len();
    let mut text = serde_json::to_string(&header).map_err(|e| e.to_string())?;
    text.push('\n');
    for v in merged.values() {
        text.push_str(&serde_json::to_string(v).map_err(|e| e.to_string())?);
        text.push('\n');
    }
    std::fs::write(out, text)
        .map_err(|e| format!("cannot write merged checkpoint `{}`: {e}", out.display()))?;
    Ok(summary)
}

/// Run records per phase in a checkpoint file, in phase-name order.
/// The server streams these as `phase` progress events after a merge.
///
/// # Errors
///
/// Rejects an unreadable file, a bad header, or corrupt record lines
/// (a torn final line is dropped, as everywhere else).
pub fn phase_counts(path: &Path) -> Result<Vec<(String, u64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint `{}`: {e}", path.display()))?;
    let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    serde_json::from_str::<CheckpointHeader>(header)
        .map_err(|e| format!("checkpoint `{}` has a bad header: {e}", path.display()))?;
    let mut rest = lines.peekable();
    while let Some(line) = rest.next() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Value>(line) {
            Ok(v) => {
                let (phase, _) =
                    record_key(&v).map_err(|e| format!("checkpoint `{}`: {e}", path.display()))?;
                *counts.entry(phase).or_default() += 1;
            }
            Err(_) if rest.peek().is_none() && !text.ends_with('\n') => {} // torn tail
            Err(e) => {
                return Err(format!("checkpoint `{}` is corrupt: {e}", path.display()));
            }
        }
    }
    Ok(counts.into_iter().collect())
}

fn record_key(v: &Value) -> Result<(String, u64), String> {
    let obj = v.as_object().ok_or("checkpoint record is not an object")?;
    let phase = match serde::field(obj, "phase") {
        Ok(Value::Str(s)) => s.clone(),
        _ => return Err("checkpoint record has no string `phase`".to_string()),
    };
    let index = match serde::field(obj, "index") {
        Ok(Value::U64(u)) => *u,
        Ok(Value::I64(i)) if *i >= 0 => *i as u64,
        _ => return Err("checkpoint record has no integer `index`".to_string()),
    };
    Ok((phase, index))
}

/// Run one campaign sharded `count` ways entirely in this process: each
/// shard pass writes `dir/{tag}.shard{k}.jsonl`, the shards merge into
/// `dir/{tag}.merged.jsonl`, and a final `resume = true` pass over the
/// merged checkpoint folds the full report. `run` is the driver's
/// `*_campaign_with` entry point, invoked once per shard and once for
/// the merge pass.
///
/// This is the in-process reference implementation of the server's shard
/// orchestration (the server runs shard passes in worker processes but
/// merges through this same machinery), and what the shard-equality
/// tests drive directly.
///
/// # Errors
///
/// Propagates shard-pass, merge, and final-pass failures.
pub fn run_sharded<R>(
    base: &CampaignOptions,
    count: u64,
    dir: &Path,
    tag: &str,
    run: impl Fn(&CampaignOptions) -> Result<R, String>,
) -> Result<(R, MergeSummary), String> {
    Shard::new(count - 1, count)?; // validates count >= 1
    let paths = shard_paths(dir, tag, count);
    for (k, path) in paths.iter().enumerate() {
        let mut opts = base.clone();
        opts.checkpoint = Some(path.clone());
        opts.resume = false;
        opts.shard = Some(Shard::new(k as u64, count)?);
        run(&opts)?;
    }
    let merged = merged_path(dir, tag);
    let summary = merge_checkpoints(&paths, &merged)?;
    let mut opts = base.clone();
    opts.checkpoint = Some(merged);
    opts.resume = true;
    opts.shard = None;
    let result = run(&opts)?;
    Ok((result, summary))
}

/// The per-shard checkpoint paths `run_sharded` uses (shared with the
/// server so both layouts agree).
pub fn shard_paths(dir: &Path, tag: &str, count: u64) -> Vec<PathBuf> {
    (0..count)
        .map(|k| dir.join(format!("{tag}.shard{k}.jsonl")))
        .collect()
}

/// The merged checkpoint path `run_sharded` writes.
pub fn merged_path(dir: &Path, tag: &str) -> PathBuf {
    dir.join(format!("{tag}.merged.jsonl"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CampaignEngine, RunRecord, RunStatus};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("swifi-shard-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_ranges_tile_exactly() {
        for items in [0usize, 1, 2, 3, 7, 10, 100, 101] {
            for count in [1u64, 2, 3, 5, 8] {
                let mut covered = vec![false; items];
                for k in 0..count {
                    for i in Shard::new(k, count).unwrap().range(items) {
                        assert!(!covered[i], "item {i} in two shards");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "{items} items, {count} shards");
            }
        }
    }

    #[test]
    fn shard_identity_validates() {
        assert!(Shard::new(0, 0).is_err());
        assert!(Shard::new(3, 3).is_err());
        assert!(Shard::new(2, 3).is_ok());
    }

    /// A toy driver: sum of `3 * item` over 10 items, folded from
    /// records like the real drivers fold reports.
    fn toy_driver(opts: &CampaignOptions) -> Result<u64, String> {
        let items: Vec<u64> = (0..10).collect();
        let header = CheckpointHeader::new("toy", 1, items.len() as u64);
        let mut engine = CampaignEngine::new(header, opts)?;
        let (records, _) = engine.run_phase(
            "p",
            &items,
            || (),
            |(), _, &x| x * 3,
            |i, _| format!("item {i}"),
        )?;
        Ok(records
            .iter()
            .map(|r| match &r.status {
                RunStatus::Ok(v) => *v,
                RunStatus::Abnormal { .. } => 0,
            })
            .sum())
    }

    #[test]
    fn sharded_toy_campaign_equals_direct_run() {
        let dir = temp_dir("toy");
        let direct = toy_driver(&CampaignOptions::default()).unwrap();
        for count in [1u64, 2, 3, 7, 10, 16] {
            let (sharded, summary) =
                run_sharded(&CampaignOptions::default(), count, &dir, "toy", toy_driver).unwrap();
            assert_eq!(sharded, direct, "{count} shards");
            assert_eq!(summary.records, 10);
            assert_eq!(summary.duplicates, 0);
            assert_eq!(summary.shards_missing, 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_shard_recovers_in_the_final_pass() {
        let dir = temp_dir("killed");
        let direct = toy_driver(&CampaignOptions::default()).unwrap();

        // Run the shard passes by hand, then lose shard 1 entirely.
        let paths = shard_paths(&dir, "killed", 3);
        for (k, path) in paths.iter().enumerate() {
            let opts = CampaignOptions {
                checkpoint: Some(path.clone()),
                shard: Some(Shard::new(k as u64, 3).unwrap()),
                ..CampaignOptions::default()
            };
            toy_driver(&opts).unwrap();
        }
        std::fs::remove_file(&paths[1]).unwrap();

        let merged = merged_path(&dir, "killed");
        let summary = merge_checkpoints(&paths, &merged).unwrap();
        assert_eq!(summary.shards_missing, 1);
        assert!(summary.records < 10, "shard 1's records are gone");

        let opts = CampaignOptions {
            checkpoint: Some(merged),
            resume: true,
            ..CampaignOptions::default()
        };
        assert_eq!(toy_driver(&opts).unwrap(), direct);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_counts_fold_the_merged_checkpoint() {
        let dir = temp_dir("phases");
        let path = dir.join("c.jsonl");
        let header = CheckpointHeader::new("p", 1, 1);
        let mut log = crate::engine::CheckpointLog::create(&path, &header).unwrap();
        for (phase, index) in [("assign", 0u64), ("assign", 1), ("check", 0)] {
            log.append(&RunRecord {
                phase: phase.to_string(),
                index,
                elapsed_micros: 1,
                status: RunStatus::Ok(0),
            })
            .unwrap();
        }
        assert_eq!(
            phase_counts(&path).unwrap(),
            vec![("assign".to_string(), 2), ("check".to_string(), 1)]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_refuses_mismatched_shard_headers() {
        let dir = temp_dir("mismatch");
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        crate::engine::CheckpointLog::create(&a, &CheckpointHeader::new("x", 1, 1)).unwrap();
        crate::engine::CheckpointLog::create(&b, &CheckpointHeader::new("x", 2, 1)).unwrap();
        let err = merge_checkpoints(&[a, b], &dir.join("out.jsonl")).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_tolerates_torn_tails_and_counts_duplicates() {
        let dir = temp_dir("torn");
        let header = CheckpointHeader::new("t", 1, 1);
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        for (path, indices) in [(&a, vec![0u64, 1]), (&b, vec![1u64, 2])] {
            let mut log = crate::engine::CheckpointLog::create(path, &header).unwrap();
            for i in indices {
                log.append(&RunRecord {
                    phase: "p".to_string(),
                    index: i,
                    elapsed_micros: 1,
                    status: RunStatus::Ok(i as u32),
                })
                .unwrap();
            }
        }
        // Tear b's tail mid-append.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&b).unwrap();
            write!(f, "{{\"phase\":\"p\",\"ind").unwrap();
        }
        let out = dir.join("out.jsonl");
        let summary = merge_checkpoints(&[a, b], &out).unwrap();
        assert_eq!(summary.shards_read, 2);
        assert_eq!(summary.records, 3);
        assert_eq!(summary.duplicates, 1);
        // The merged file resumes cleanly with all three records.
        let log = crate::engine::CheckpointLog::resume(&out, &header).unwrap();
        assert_eq!(log.loaded_records(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_counts_header_only_shards_as_read_but_empty() {
        // A worker killed right after the header write leaves a shard
        // with a header and no records: the merge must treat it as a
        // present-but-empty shard, not a missing or corrupt one.
        let dir = temp_dir("header-only");
        let header = CheckpointHeader::new("h", 1, 1);
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        {
            let mut log = crate::engine::CheckpointLog::create(&a, &header).unwrap();
            log.append(&RunRecord {
                phase: "p".to_string(),
                index: 0,
                elapsed_micros: 1,
                status: RunStatus::Ok(7),
            })
            .unwrap();
        }
        crate::engine::CheckpointLog::create(&b, &header).unwrap();
        let out = dir.join("out.jsonl");
        let summary = merge_checkpoints(&[a, b], &out).unwrap();
        assert_eq!(summary.shards_read, 2);
        assert_eq!(summary.shards_missing, 0);
        assert_eq!(summary.records, 1);
        assert_eq!(summary.duplicates, 0);
        let log = crate::engine::CheckpointLog::resume(&out, &header).unwrap();
        assert_eq!(log.loaded_records(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_rejects_corrupt_middle_lines() {
        let dir = temp_dir("corrupt");
        let a = dir.join("a.jsonl");
        let header = CheckpointHeader::new("c", 1, 1);
        crate::engine::CheckpointLog::create(&a, &header).unwrap();
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&a).unwrap();
            writeln!(f, "garbage").unwrap();
            writeln!(
                f,
                "{{\"phase\":\"p\",\"index\":0,\"elapsed_micros\":1,\"status\":{{\"Ok\":1}}}}"
            )
            .unwrap();
        }
        let err = merge_checkpoints(std::slice::from_ref(&a), &dir.join("o.jsonl")).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
