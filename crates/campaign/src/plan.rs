//! The adaptive run planner: choose how to execute each injected run
//! from the golden def-use trace.
//!
//! PR 5's prefix forking applied one blanket policy (fork everything
//! with a fork point) and PR 7 bolted on a fixed ≥¼-of-the-run shallow
//! gate; both are blind to what the fault actually *does* at its
//! trigger occurrence. With a [`DefUseTrace`] of the clean run on file,
//! a [`RunPlanner`] can do better, per (program, fault, input):
//!
//! - **[`RunPlan::DormantSkip`]** — the fault provably cannot change
//!   architectural state: its required trigger occurrence never
//!   arrives, or every corruption it would apply lands on a *dead*
//!   location (overwritten before any use) or reproduces the golden
//!   instruction stream exactly. The run is answered with the clean
//!   run's outcome without executing. The proof obligations per target
//!   are documented on [`RunPlanner::prove_dormant`].
//! - **[`RunPlan::Fork`]** — the trigger occurrence sits deep enough in
//!   the run (measured, not guessed: the trace records the retire depth
//!   of every occurrence) that restoring a shared prefix snapshot beats
//!   re-executing the prefix.
//! - **[`RunPlan::Full`]** — everything else: execute normally.
//!
//! Outcome-equivalence *collapse* is not decided here: it needs the
//! corruption log of a previously executed representative, so the
//! session checks the [`crate::prefix::PrefixCache`] collapse store
//! between the planner verdict and execution.
//!
//! Soundness notes. Every `DormantSkip` proof is an induction on the
//! golden instruction stream: if occurrence *k*'s corruption leaves
//! architectural state bit-identical to the golden run, the stream
//! after it — and therefore every later occurrence's pre-state — is the
//! golden one, so per-occurrence proofs compose. Proofs are only
//! attempted on untainted traces ([`DefUseTrace::usable`]), and every
//! unprovable case falls through to Fork/Full rather than guessing.

use swifi_core::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
use swifi_vm::defuse::{DefUseTrace, OccEvent, OccRecord, SiteTrace};
use swifi_vm::isa::Instr;

/// How the session should execute one (fault, input) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPlan {
    /// Execute the run in full from the warm snapshot.
    Full,
    /// Restore (or capture) the shared prefix snapshot at the trigger
    /// occurrence and execute only the suffix.
    Fork,
    /// Provably outcome-equivalent to the clean run: skip execution and
    /// report the golden outcome. `fired` is the proven activation
    /// status (corrupting a dead location still *fires*; a trigger
    /// occurrence that never arrives does not).
    DormantSkip {
        /// Whether the fault would have fired in the skipped run.
        fired: bool,
    },
}

/// Plans runs from measured trigger depth and golden-run length.
#[derive(Debug, Clone, Copy)]
pub struct RunPlanner {
    /// Minimum retire depth of the fork occurrence for forking to pay:
    /// restoring a snapshot is not free, so prefixes shorter than this
    /// are re-executed even when they pass the fraction gate.
    pub min_fork_depth: u64,
    /// Fork only when `depth * shallow_denom >= golden_retired` — the
    /// prefix must be at least `1/shallow_denom` of the whole run
    /// (PR 7's measured break-even, now applied to the *exact* measured
    /// depth instead of a capture-run probe).
    pub shallow_denom: u64,
}

impl Default for RunPlanner {
    fn default() -> RunPlanner {
        RunPlanner {
            min_fork_depth: 64,
            shallow_denom: 4,
        }
    }
}

/// `op.apply` when it is input-deterministic; `None` for
/// [`ErrorOp::ReplaceRandom`].
fn deterministic_apply(op: ErrorOp, value: u32) -> Option<u32> {
    match op {
        ErrorOp::ReplaceRandom => None,
        _ => Some(op.apply(value, 0)),
    }
}

fn is_nop(instr: Instr) -> bool {
    matches!(
        instr,
        Instr::Ori {
            rd: 0,
            ra: 0,
            imm: 0
        }
    )
}

impl RunPlanner {
    /// Decide how to execute `spec` on the input whose clean run `trace`
    /// describes. `trace.retired` is the golden run length used by the
    /// depth gate.
    pub fn plan(&self, spec: &FaultSpec, trace: &DefUseTrace) -> RunPlan {
        let Trigger::OpcodeFetch(pc) = spec.trigger else {
            return RunPlan::Full;
        };
        if matches!(spec.target, Target::Memory(_)) {
            // Applied at prepare() time, before any trigger counting.
            return RunPlan::Full;
        }
        let Some(site) = trace.site(pc) else {
            return RunPlan::Full;
        };

        // Occurrence arithmetic is exact even on tainted traces, but a
        // tainted stream may diverge from the static image, so only an
        // untainted trace proves anything.
        if trace.usable() {
            let arrives = match spec.when {
                Firing::First | Firing::EveryTime => site.total >= 1,
                Firing::Nth(k) => k >= 1 && site.total >= k,
            };
            if !arrives {
                return RunPlan::DormantSkip { fired: false };
            }
            if let Some(fired) = self.prove_dormant(spec, pc, site) {
                return RunPlan::DormantSkip { fired };
            }
        }

        let Some((_, fork_occ)) = spec.fork_point() else {
            return RunPlan::Full;
        };
        let depth = match site.occ(fork_occ) {
            Some(rec) => rec.retired_before,
            // Occurrence beyond the recorded window: at least as deep as
            // the last recorded arrival.
            None => match site.occs.last() {
                Some(rec) => rec.retired_before,
                None => return RunPlan::Full,
            },
        };
        if depth >= self.min_fork_depth && depth.saturating_mul(self.shallow_denom) >= trace.retired
        {
            RunPlan::Fork
        } else {
            RunPlan::Full
        }
    }

    /// Try to prove every required firing occurrence of `spec` leaves
    /// architectural state bit-identical to the golden run. Returns the
    /// proven activation status, or `None` when any occurrence resists
    /// proof.
    ///
    /// Per-target obligations:
    ///
    /// - `DataBusStore` — the corrupted store value must be *dead*
    ///   (overwritten before any use; the trace's byte-granular liveness)
    ///   or the store must be the run-ending trap (the trap is decided by
    ///   the untouched address, the value never reaches memory). A
    ///   trigger instruction that performs no store never fires the value
    ///   hook at all.
    /// - `Gpr(r)` — the trigger instruction's register write must define
    ///   `r` dead, with `r ≠ 1` (corrupting a stack-pointer write can
    ///   flip the stack-floor trap). Instructions not writing `r`
    ///   through the write-back hook never fire.
    /// - `InstrBus` — the (deterministic) corrupted word must reproduce
    ///   the golden control flow exactly: the identical word, a dead
    ///   completed store replaced by NOP, or a branch whose successor
    ///   provably equals the recorded golden successor.
    ///
    /// All other targets (address-bus, load-value, latched
    /// `InstrMemory`) are never proven dormant here.
    pub fn prove_dormant(&self, spec: &FaultSpec, pc: u32, site: &SiteTrace) -> Option<bool> {
        let (lo, hi) = match spec.when {
            Firing::First => (1, 1),
            Firing::Nth(k) => (k, k),
            Firing::EveryTime => {
                if !site.complete() {
                    return None;
                }
                (1, site.total)
            }
        };
        let mut fired = false;
        for occ in lo..=hi {
            let rec = site.occ(occ)?;
            fired |= self.occ_preserves(spec, pc, site, rec)?;
        }
        Some(fired)
    }

    /// Whether one firing occurrence provably preserves golden state;
    /// the bool is whether the fault fires at it.
    fn occ_preserves(
        &self,
        spec: &FaultSpec,
        pc: u32,
        site: &SiteTrace,
        rec: &OccRecord,
    ) -> Option<bool> {
        match spec.target {
            Target::DataBusStore => match rec.event {
                OccEvent::Store {
                    completed: true,
                    dead: true,
                    ..
                } => Some(true),
                // Run-ending trapped store: the value hook fired, but the
                // trap is decided by the (untouched) address and the value
                // never landed.
                OccEvent::Store {
                    completed: false, ..
                } => Some(true),
                // Live store: corruption propagates.
                OccEvent::Store { .. } => None,
                // The trigger instruction performs no store, so the
                // store-value hook never fires for this spec.
                OccEvent::Branch { .. } | OccEvent::RegDef { .. } | OccEvent::Other => Some(false),
            },
            Target::Gpr(r) => match rec.event {
                OccEvent::RegDef { rd, dead } if rd == r => {
                    // r1 writes interact with the stack-floor trap check,
                    // which sees the corrupted value.
                    if dead && r != 1 {
                        Some(true)
                    } else {
                        None
                    }
                }
                // Write-back of a different register, or no hooked
                // register write at all (stores, branches, compares,
                // syscalls): the fault cannot fire here.
                OccEvent::RegDef { .. }
                | OccEvent::Store { .. }
                | OccEvent::Branch { .. }
                | OccEvent::Other => Some(false),
            },
            Target::InstrBus => {
                let corrupted = deterministic_apply(spec.what, site.word)?;
                if corrupted == site.word {
                    // The corruption reproduces the golden word bit-exactly.
                    return Some(true);
                }
                let golden = site.instr?;
                let m = swifi_vm::isa::decode(corrupted).ok()?;
                match golden {
                    // A dead, completed store elided by NOP: no
                    // architectural effect either way. (A *trapping*
                    // store must not be elided — the NOP would suppress
                    // the crash.)
                    Instr::Stw { .. } | Instr::Stb { .. }
                        if is_nop(m)
                            && matches!(
                                rec.event,
                                OccEvent::Store {
                                    completed: true,
                                    dead: true,
                                    ..
                                }
                            ) =>
                    {
                        Some(true)
                    }
                    // Unconditional branch: the golden successor is
                    // static, so agreement is decidable without a
                    // recorded event.
                    Instr::B { off } => {
                        let golden_next = pc.wrapping_add((off as u32).wrapping_mul(4));
                        let predicted = match m {
                            m if is_nop(m) => pc.wrapping_add(4),
                            Instr::B { off: off2 } => {
                                pc.wrapping_add((off2 as u32).wrapping_mul(4))
                            }
                            _ => return None,
                        };
                        (predicted == golden_next).then_some(true)
                    }
                    // Conditional branch: the recorded successor and
                    // shadow CR decide whether the mutated word takes the
                    // same edge.
                    Instr::Bc { .. } => {
                        let OccEvent::Branch {
                            next_pc: Some(next),
                            cr,
                            cr_valid,
                        } = rec.event
                        else {
                            return None;
                        };
                        let predicted = match m {
                            m if is_nop(m) => pc.wrapping_add(4),
                            Instr::B { off } => pc.wrapping_add((off as u32).wrapping_mul(4)),
                            Instr::Bc {
                                crf,
                                bit,
                                expect,
                                off,
                            } => {
                                let crf = crf & 7;
                                if (cr_valid >> crf) & 1 == 0 {
                                    return None;
                                }
                                let taken =
                                    ((cr >> (u32::from(crf) * 4 + bit.index())) & 1 == 1) == expect;
                                if taken {
                                    pc.wrapping_add((off as i32 as u32).wrapping_mul(4))
                                } else {
                                    pc.wrapping_add(4)
                                }
                            }
                            _ => return None,
                        };
                        (predicted == next).then_some(true)
                    }
                    _ => None,
                }
            }
            // Latched (InstrMemory), address-bus, and load-value
            // corruptions propagate in ways the trace does not bound.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_vm::isa::{encode, CrBit};

    const PC: u32 = 0x10C;

    fn spec(target: Target, what: ErrorOp, when: Firing) -> FaultSpec {
        FaultSpec {
            what,
            target,
            trigger: Trigger::OpcodeFetch(PC),
            when,
        }
    }

    fn store_site(occ_flags: &[(bool, bool)], word: u32) -> SiteTrace {
        SiteTrace {
            word,
            instr: swifi_vm::isa::decode(word).ok(),
            total: occ_flags.len() as u64,
            truncated: false,
            occs: occ_flags
                .iter()
                .enumerate()
                .map(|(i, &(completed, dead))| OccRecord {
                    retired_before: 100 * (i as u64 + 1),
                    event: OccEvent::Store {
                        addr: 0x200,
                        size: 4,
                        completed,
                        dead,
                    },
                })
                .collect(),
        }
    }

    fn trace_with(pc: u32, site: SiteTrace, retired: u64) -> DefUseTrace {
        DefUseTrace::from_sites(false, retired, [(pc, site)])
    }

    fn stw_word() -> u32 {
        encode(Instr::Stw { rs: 5, ra: 9, d: 0 })
    }

    #[test]
    fn missing_occurrence_is_dormant_unfired() {
        let planner = RunPlanner::default();
        let trace = trace_with(PC, store_site(&[(true, false)], stw_word()), 1000);
        let s = spec(Target::DataBusStore, ErrorOp::Add(1), Firing::Nth(5));
        assert_eq!(
            planner.plan(&s, &trace),
            RunPlan::DormantSkip { fired: false }
        );
        // Nth(0) never fires by definition.
        let s0 = spec(Target::DataBusStore, ErrorOp::Add(1), Firing::Nth(0));
        assert_eq!(
            planner.plan(&s0, &trace),
            RunPlan::DormantSkip { fired: false }
        );
    }

    #[test]
    fn dead_store_corruption_is_dormant_but_fired() {
        let planner = RunPlanner::default();
        let trace = trace_with(
            PC,
            store_site(&[(true, true), (true, true)], stw_word()),
            1000,
        );
        for when in [Firing::First, Firing::EveryTime, Firing::Nth(2)] {
            let s = spec(Target::DataBusStore, ErrorOp::ReplaceRandom, when);
            assert_eq!(
                planner.plan(&s, &trace),
                RunPlan::DormantSkip { fired: true },
                "{when:?}"
            );
        }
    }

    #[test]
    fn live_store_is_not_pruned() {
        let planner = RunPlanner::default();
        // Deep trigger (800 of 1000 retires) → fork; live value blocks
        // the dormancy proof.
        let mut site = store_site(&[(true, false)], stw_word());
        site.occs[0].retired_before = 800;
        let trace = trace_with(PC, site, 1000);
        let s = spec(Target::DataBusStore, ErrorOp::Add(1), Firing::First);
        assert_eq!(planner.plan(&s, &trace), RunPlan::Fork);
    }

    #[test]
    fn everytime_with_mixed_liveness_is_not_pruned() {
        let planner = RunPlanner::default();
        let trace = trace_with(
            PC,
            store_site(&[(true, true), (true, false)], stw_word()),
            1000,
        );
        let s = spec(Target::DataBusStore, ErrorOp::Add(1), Firing::EveryTime);
        assert_ne!(
            planner.plan(&s, &trace),
            RunPlan::DormantSkip { fired: true },
            "one live occurrence spoils the EveryTime proof"
        );
        // But Nth(1), targeting only the dead occurrence, prunes.
        let s1 = spec(Target::DataBusStore, ErrorOp::Add(1), Firing::Nth(1));
        assert_eq!(
            planner.plan(&s1, &trace),
            RunPlan::DormantSkip { fired: true }
        );
    }

    #[test]
    fn trapping_final_store_still_prunes_value_corruption() {
        let planner = RunPlanner::default();
        let trace = trace_with(
            PC,
            store_site(&[(true, true), (false, false)], stw_word()),
            1000,
        );
        let s = spec(Target::DataBusStore, ErrorOp::Add(1), Firing::EveryTime);
        assert_eq!(
            planner.plan(&s, &trace),
            RunPlan::DormantSkip { fired: true }
        );
    }

    #[test]
    fn gpr_liveness_rules() {
        let planner = RunPlanner::default();
        let mk = |rd, dead| {
            let site = SiteTrace {
                word: encode(Instr::Addi { rd, ra: 0, imm: 3 }),
                instr: None,
                total: 1,
                truncated: false,
                occs: vec![OccRecord {
                    retired_before: 10,
                    event: OccEvent::RegDef { rd, dead },
                }],
            };
            trace_with(PC, site, 1000)
        };
        // Dead def of the targeted register: dormant, fired.
        let s5 = spec(Target::Gpr(5), ErrorOp::Xor(0xFF), Firing::First);
        assert_eq!(
            planner.plan(&s5, &mk(5, true)),
            RunPlan::DormantSkip { fired: true }
        );
        // Live def: no proof (shallow depth 10 → Full).
        assert_eq!(planner.plan(&s5, &mk(5, false)), RunPlan::Full);
        // Different register written: the fault never fires.
        assert_eq!(
            planner.plan(&s5, &mk(7, true)),
            RunPlan::DormantSkip { fired: false }
        );
        // r1 writes interact with the stack-floor trap: never proven.
        let s1 = spec(Target::Gpr(1), ErrorOp::Xor(0xFF), Firing::First);
        assert_eq!(planner.plan(&s1, &mk(1, true)), RunPlan::Full);
    }

    #[test]
    fn instr_bus_branch_equivalence() {
        let planner = RunPlanner::default();
        let golden = Instr::Bc {
            crf: 0,
            bit: CrBit::Gt,
            expect: true,
            off: -3,
        };
        // Golden run: branch not taken (falls through), cr0.gt clear.
        let site = SiteTrace {
            word: encode(golden),
            instr: Some(golden),
            total: 1,
            truncated: false,
            occs: vec![OccRecord {
                retired_before: 10,
                event: OccEvent::Branch {
                    next_pc: Some(PC + 4),
                    cr: 0,
                    cr_valid: 0xFF,
                },
            }],
        };
        let trace = trace_with(PC, site, 1000);
        let nop = encode(Instr::Ori {
            rd: 0,
            ra: 0,
            imm: 0,
        });
        // NOP agrees with a fall-through.
        let s = spec(Target::InstrBus, ErrorOp::Replace(nop), Firing::First);
        assert_eq!(
            planner.plan(&s, &trace),
            RunPlan::DormantSkip { fired: true }
        );
        // A Bc testing the same (clear) bit with expect=false takes the
        // branch — disagrees.
        let taken = encode(Instr::Bc {
            crf: 0,
            bit: CrBit::Gt,
            expect: false,
            off: -3,
        });
        let s2 = spec(Target::InstrBus, ErrorOp::Replace(taken), Firing::First);
        assert_eq!(planner.plan(&s2, &trace), RunPlan::Full);
        // Identical-word corruption is trivially equivalent (and fires).
        let s3 = spec(
            Target::InstrBus,
            ErrorOp::Replace(encode(golden)),
            Firing::First,
        );
        assert_eq!(
            planner.plan(&s3, &trace),
            RunPlan::DormantSkip { fired: true }
        );
        // ReplaceRandom can never be proven.
        let s4 = spec(Target::InstrBus, ErrorOp::ReplaceRandom, Firing::First);
        assert_eq!(planner.plan(&s4, &trace), RunPlan::Full);
    }

    #[test]
    fn depth_gate_uses_measured_occurrence_depth() {
        let planner = RunPlanner::default();
        let mut deep = store_site(&[(true, false)], stw_word());
        deep.occs[0].retired_before = 900;
        let trace = trace_with(PC, deep, 1000);
        let s = spec(Target::DataBusStore, ErrorOp::Add(1), Firing::First);
        assert_eq!(planner.plan(&s, &trace), RunPlan::Fork);

        // Shallow (fails the fraction gate) → Full.
        let mut shallow = store_site(&[(true, false)], stw_word());
        shallow.occs[0].retired_before = 100;
        let trace = trace_with(PC, shallow, 1000);
        assert_eq!(planner.plan(&s, &trace), RunPlan::Full);

        // Deep fraction but tiny absolute depth (min_fork_depth) → Full.
        let mut tiny = store_site(&[(true, false)], stw_word());
        tiny.occs[0].retired_before = 30;
        let trace = trace_with(PC, tiny, 40);
        assert_eq!(planner.plan(&s, &trace), RunPlan::Full);
    }

    #[test]
    fn tainted_traces_only_gate_depth() {
        let planner = RunPlanner::default();
        let mut site = store_site(&[(true, true)], stw_word());
        site.occs[0].retired_before = 900;
        let trace = DefUseTrace::from_sites(true, 1000, [(PC, site)]);
        let s = spec(Target::DataBusStore, ErrorOp::Add(1), Firing::First);
        // Dead-store proof is off the table, but the measured depth may
        // still elect forking.
        assert_eq!(planner.plan(&s, &trace), RunPlan::Fork);
        // And an unwatched pc plans Full.
        let other = spec(Target::DataBusStore, ErrorOp::Add(1), Firing::First);
        let empty = DefUseTrace::from_sites(false, 1000, []);
        assert_eq!(planner.plan(&other, &empty), RunPlan::Full);
    }
}
