//! Golden encodings for the P601-lite ISA.
//!
//! The fault injector stores *absolute instruction words* in debug info
//! and campaign artefacts (corrupted `bc` encodings, NOP replacements), so
//! the encoding is a compatibility surface: silently changing it would
//! invalidate recorded experiments. These tests pin the exact words.

use swifi_vm::isa::{decode, encode, AluOp, CrBit, Instr, Syscall, NOP};

#[test]
fn golden_words() {
    let cases: &[(Instr, u32)] = &[
        (
            Instr::Addi {
                rd: 3,
                ra: 0,
                imm: 1,
            },
            0x0460_0001,
        ),
        (
            Instr::Addi {
                rd: 1,
                ra: 1,
                imm: -64,
            },
            0x0421_FFC0,
        ),
        (
            Instr::Addis {
                rd: 5,
                ra: 0,
                imm: 0x10,
            },
            0x08A0_0010,
        ),
        (
            Instr::Andi {
                rd: 2,
                ra: 2,
                imm: 0xFF,
            },
            0x1042_00FF,
        ),
        (
            Instr::Ori {
                rd: 0,
                ra: 0,
                imm: 0,
            },
            NOP,
        ),
        (
            Instr::Xori {
                rd: 31,
                ra: 31,
                imm: 0xFFFF,
            },
            0x1BFF_FFFF,
        ),
        (
            Instr::Cmpi {
                crf: 0,
                ra: 5,
                imm: 63,
            },
            0x1C05_003F,
        ),
        (
            Instr::Cmp {
                crf: 1,
                ra: 4,
                rb: 6,
            },
            0x4024_3000,
        ),
        (
            Instr::Lwz {
                rd: 3,
                ra: 1,
                d: 36,
            },
            0x2061_0024,
        ),
        (
            Instr::Stw {
                rs: 3,
                ra: 1,
                d: 36,
            },
            0x2461_0024,
        ),
        (
            Instr::Lbz {
                rd: 7,
                ra: 9,
                d: -1,
            },
            0x28E9_FFFF,
        ),
        (
            Instr::Stb {
                rs: 7,
                ra: 9,
                d: 80,
            },
            0x2CE9_0050,
        ),
        (Instr::B { off: -5 }, 0x33FF_FFFB),
        (Instr::Bl { off: 1000 }, 0x3400_03E8),
        (
            Instr::Bc {
                crf: 0,
                bit: CrBit::Lt,
                expect: false,
                off: 12,
            },
            0x3800_000C,
        ),
        (
            Instr::Bc {
                crf: 0,
                bit: CrBit::Gt,
                expect: true,
                off: 12,
            },
            0x3821_000C,
        ),
        (
            Instr::Alu {
                op: AluOp::Add,
                rd: 14,
                ra: 14,
                rb: 15,
            },
            0x3DCE_7800,
        ),
        (
            Instr::Alu {
                op: AluOp::Mullw,
                rd: 20,
                ra: 21,
                rb: 22,
            },
            0x3E95_B002,
        ),
        (Instr::Blr, 0x4400_0000),
        (Instr::Mflr { rd: 12 }, 0x5180_0000),
        (Instr::Mtlr { ra: 12 }, 0x540C_0000),
        (
            Instr::Sc {
                call: Syscall::PrintInt,
            },
            0x4800_0001,
        ),
        (
            Instr::Sc {
                call: Syscall::Barrier,
            },
            0x4800_000A,
        ),
        (Instr::Halt, 0x4C00_0000),
    ];
    for &(instr, word) in cases {
        assert_eq!(encode(instr), word, "encoding drifted for `{instr}`");
        assert_eq!(decode(word), Ok(instr), "decoding drifted for {word:#010x}");
    }
}

#[test]
fn nop_is_stable() {
    // The `no assign` error type replaces stores with this exact word.
    assert_eq!(NOP, 0x1400_0000);
}

#[test]
fn checking_mutations_differ_by_expected_fields() {
    // `<` false-branch is bc(lt, expect=1): mutating to `<=` false-branch
    // bc(gt, expect=0) must flip exactly the bit-selector and expect
    // fields — the single-word checking corruption of the paper's Fig. 5.
    let lt_false = encode(Instr::Bc {
        crf: 0,
        bit: CrBit::Lt,
        expect: false,
        off: 8,
    });
    let le_false = encode(Instr::Bc {
        crf: 0,
        bit: CrBit::Gt,
        expect: true,
        off: 8,
    });
    let diff = lt_false ^ le_false;
    // Only bits inside the BO/BI-like fields (bits 16..26) may differ.
    assert_eq!(
        diff & 0xFC00_FFFF,
        0,
        "mutation leaked outside the condition fields: {diff:#x}"
    );
}
