//! Property-based tests for the P601-lite ISA, assembler, allocator, and
//! machine determinism.

use proptest::prelude::*;
use swifi_vm::asm::{assemble, CodeBuilder};
use swifi_vm::inspect::Noop;
use swifi_vm::isa::{decode, encode, AluOp, CrBit, Instr, Syscall};
use swifi_vm::machine::{Machine, MachineConfig, RunOutcome};
use swifi_vm::mem::Allocator;

fn arb_reg() -> impl Strategy<Value = u8> {
    0u8..32
}

fn arb_crf() -> impl Strategy<Value = u8> {
    0u8..8
}

fn arb_crbit() -> impl Strategy<Value = CrBit> {
    prop_oneof![
        Just(CrBit::Lt),
        Just(CrBit::Gt),
        Just(CrBit::Eq),
        Just(CrBit::So)
    ]
}

fn arb_aluop() -> impl Strategy<Value = AluOp> {
    (0u32..16).prop_map(|c| AluOp::from_code(c).unwrap())
}

fn arb_syscall() -> impl Strategy<Value = Syscall> {
    (0u32..=10).prop_map(|c| Syscall::from_code(c).unwrap())
}

prop_compose! {
    fn arb_instr()(
        sel in 0usize..19,
        rd in arb_reg(),
        ra in arb_reg(),
        rb in arb_reg(),
        simm in any::<i16>(),
        uimm in any::<u16>(),
        off26 in -(1i32 << 25)..(1i32 << 25),
        crf in arb_crf(),
        bit in arb_crbit(),
        expect in any::<bool>(),
        alu in arb_aluop(),
        call in arb_syscall(),
    ) -> Instr {
        match sel {
            0 => Instr::Addi { rd, ra, imm: simm },
            1 => Instr::Addis { rd, ra, imm: simm },
            2 => Instr::Andi { rd, ra, imm: uimm },
            3 => Instr::Ori { rd, ra, imm: uimm },
            4 => Instr::Xori { rd, ra, imm: uimm },
            5 => Instr::Cmpi { crf, ra, imm: simm },
            6 => Instr::Cmp { crf, ra, rb },
            7 => Instr::Alu { op: alu, rd, ra, rb },
            8 => Instr::Lwz { rd, ra, d: simm },
            9 => Instr::Stw { rs: rd, ra, d: simm },
            10 => Instr::Lbz { rd, ra, d: simm },
            11 => Instr::Stb { rs: rd, ra, d: simm },
            12 => Instr::B { off: off26 },
            13 => Instr::Bl { off: off26 },
            14 => Instr::Bc { crf, bit, expect, off: simm },
            15 => Instr::Blr,
            16 => Instr::Mflr { rd },
            17 => Instr::Mtlr { ra },
            18 => Instr::Sc { call },
            _ => Instr::Halt,
        }
    }
}

proptest! {
    /// encode ∘ decode is the identity on valid instructions.
    #[test]
    fn encode_decode_round_trip(i in arb_instr()) {
        prop_assert_eq!(decode(encode(i)), Ok(i));
    }

    /// Any word that decodes re-encodes to itself: the decoder accepts no
    /// non-canonical encodings (important for the injector, which diffs
    /// instruction words).
    #[test]
    fn decode_is_canonical(w in any::<u32>()) {
        if let Ok(i) = decode(w) {
            prop_assert_eq!(encode(i), w);
        }
    }

    /// The assembler parses the `Display` form of any instruction back to
    /// the same word (numeric branch offsets included).
    #[test]
    fn display_assembles_back(i in arb_instr()) {
        let text = i.to_string();
        let mut b = CodeBuilder::new();
        b.push(i);
        let direct = b.finish().unwrap();
        let via_text = assemble(&text).unwrap();
        prop_assert_eq!(direct.code, via_text.code, "text was `{}`", text);
    }

    /// Random malloc/free sequences keep the allocator's invariants: no
    /// overlap between live blocks, everything inside the arena, frees of
    /// live pointers always succeed.
    #[test]
    fn allocator_invariants(ops in proptest::collection::vec((any::<bool>(), 1u32..512), 1..200)) {
        let base = 0x1000u32;
        let limit = 0x9000u32;
        let mut a = Allocator::new(base, limit);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for (do_free, size) in ops {
            if do_free && !live.is_empty() {
                let (ptr, _) = live.swap_remove(live.len() / 2);
                prop_assert!(a.free(ptr).is_ok());
            } else {
                let p = a.malloc(size);
                if p != 0 {
                    prop_assert!(p >= base && p + size <= limit, "block in arena");
                    prop_assert_eq!(p % 8, 0, "aligned");
                    for &(q, qs) in &live {
                        prop_assert!(p + size <= q || q + qs <= p, "no overlap");
                    }
                    live.push((p, size));
                }
            }
        }
        prop_assert_eq!(a.live_blocks(), live.len());
    }

    /// Running the same image twice on fresh machines gives identical
    /// outcomes — the determinism the reboot-per-injection methodology
    /// relies on. Uses random (usually trapping) code.
    #[test]
    fn machine_is_deterministic(words in proptest::collection::vec(any::<u32>(), 1..64)) {
        let image = swifi_vm::Image { code: words, data: vec![], entry: swifi_vm::CODE_BASE };
        let cfg = MachineConfig { budget: 10_000, ..MachineConfig::default() };
        let run = || {
            let mut m = Machine::new(cfg.clone());
            m.load(&image);
            m.run(&mut Noop)
        };
        prop_assert_eq!(run(), run());
    }

    /// The machine never panics on arbitrary code — every abnormal path is
    /// a typed outcome. (Running random words is exactly what heavy fault
    /// injection does.)
    #[test]
    fn machine_total_on_garbage(words in proptest::collection::vec(any::<u32>(), 1..256)) {
        let image = swifi_vm::Image { code: words, data: vec![], entry: swifi_vm::CODE_BASE };
        let mut m = Machine::new(MachineConfig { budget: 20_000, ..MachineConfig::default() });
        m.load(&image);
        match m.run(&mut Noop) {
            RunOutcome::Completed { .. } | RunOutcome::Trapped { .. } | RunOutcome::Hang { .. } => {}
        }
    }

    /// The blocks ≡ reference oracle on arbitrary code: the block
    /// interpreter, the line-cached interpreter, and the seed
    /// decode-every-fetch reference interpreter agree on the outcome,
    /// the retired-instruction count, and the final architectural state
    /// — both on the pristine program and after a mid-run code patch
    /// poked into a warm machine (where a stale translation would
    /// replay the unpatched block).
    #[test]
    fn block_interpreter_matches_reference_on_random_code(
        words in proptest::collection::vec(any::<u32>(), 1..128),
        patch_index in 0usize..128,
        patch_mask in 1u32..=u32::MAX,
    ) {
        let len = words.len();
        let image = swifi_vm::Image { code: words, data: vec![], entry: swifi_vm::CODE_BASE };
        let cfg = MachineConfig { budget: 20_000, ..MachineConfig::default() };
        let patch_addr = swifi_vm::CODE_BASE + ((patch_index % len) as u32) * 4;
        let observe = |m: &Machine, out: RunOutcome| {
            let c = m.core(0);
            (out, m.retired(), c.regs, c.pc, c.lr)
        };
        let run = |tier: usize| {
            let mut m = Machine::new(cfg.clone());
            match tier {
                0 => {}                              // blocks (default)
                1 => m.set_block_interp(false),      // line cache only
                _ => m.set_reference_interp(true),   // seed interpreter
            }
            m.load(&image);
            let snap = m.snapshot();
            let out = m.run(&mut Noop);
            let pristine = observe(&m, out);
            // Mid-campaign patch: warm-reboot the machine (translations
            // survive the restore) and flip a code word before rerunning.
            m.restore(&snap);
            let old = m.peek_u32(patch_addr).unwrap();
            m.poke_u32(patch_addr, old ^ patch_mask).unwrap();
            let out = m.run(&mut Noop);
            let patched = observe(&m, out);
            (pristine, patched)
        };
        let blocks = run(0);
        prop_assert_eq!(&blocks, &run(1), "blocks vs line cache");
        prop_assert_eq!(&blocks, &run(2), "blocks vs reference");
    }
}
