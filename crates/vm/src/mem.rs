//! Guest memory, executable images, and the guest heap allocator.
//!
//! The address space is flat and byte-addressed:
//!
//! ```text
//! 0x0000_0000 ┌──────────────┐
//!             │  null page   │  unmapped — dereferencing a corrupted/null
//! 0x0000_0100 ├──────────────┤  pointer traps (crash failure mode)
//!             │  code        │
//!             ├──────────────┤
//!             │  data        │  globals + string literals
//!             ├──────────────┤
//!             │  heap   ↓    │  malloc/free arena
//!             ├──────────────┤
//!             │  stacks ↑    │  one fixed-size stack per core, at the top
//!  mem_size   └──────────────┘
//! ```
//!
//! Words are stored little-endian. (The real PowerPC 601 is big-endian; the
//! choice is irrelevant to the reproduced experiments, which never depend on
//! byte order, and is documented here for completeness.)

use std::collections::BTreeMap;
use std::fmt;

use crate::machine::Trap;

/// First mapped address; everything below is the trapping null page.
pub const NULL_PAGE_END: u32 = 0x100;

/// Default load address for code (start of mapped memory).
pub const CODE_BASE: u32 = NULL_PAGE_END;

/// Flat guest memory with null-page protection.
///
/// All accessors return [`Trap`]-typed errors rather than panicking so that
/// wild accesses caused by injected faults surface as the paper's *crash*
/// failure mode.
#[derive(Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory").field("size", &self.bytes.len()).finish()
    }
}

impl Memory {
    /// Create a zeroed memory of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than one page (256 bytes) or not
    /// word-aligned; these are configuration errors, not runtime faults.
    pub fn new(size: u32) -> Memory {
        assert!(size >= 2 * NULL_PAGE_END, "memory too small: {size}");
        assert_eq!(size % 4, 0, "memory size must be word aligned");
        Memory { bytes: vec![0; size as usize] }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    #[inline]
    fn check(&self, addr: u32, len: u32) -> Result<(), Trap> {
        if addr < NULL_PAGE_END || (addr as u64) + (len as u64) > self.bytes.len() as u64 {
            return Err(Trap::Unmapped { addr });
        }
        Ok(())
    }

    /// Read a little-endian word.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] outside the mapped range, [`Trap::Misaligned`] for
    /// non-word-aligned addresses.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> Result<u32, Trap> {
        if addr % 4 != 0 {
            return Err(Trap::Misaligned { addr });
        }
        self.check(addr, 4)?;
        let i = addr as usize;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Write a little-endian word.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::read_u32`].
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), Trap> {
        if addr % 4 != 0 {
            return Err(Trap::Misaligned { addr });
        }
        self.check(addr, 4)?;
        self.bytes[addr as usize..addr as usize + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] outside the mapped range.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> Result<u8, Trap> {
        self.check(addr, 1)?;
        Ok(self.bytes[addr as usize])
    }

    /// Write one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] outside the mapped range.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), Trap> {
        self.check(addr, 1)?;
        self.bytes[addr as usize] = value;
        Ok(())
    }

    /// Copy a byte slice into memory.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] if any byte of the destination is unmapped.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), Trap> {
        self.check(addr, data.len() as u32)?;
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read a NUL-terminated string starting at `addr`, up to `max` bytes.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] if the string runs off mapped memory before a NUL.
    pub fn read_cstr(&self, addr: u32, max: u32) -> Result<Vec<u8>, Trap> {
        let mut out = Vec::new();
        let mut a = addr;
        while out.len() < max as usize {
            let b = self.read_u8(a)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            a = a.wrapping_add(1);
        }
        Ok(out)
    }
}

/// A linked executable: code, initialised data, and layout bookkeeping.
///
/// Produced by the assembler ([`crate::asm`]) or the MiniC compiler, and
/// consumed by [`crate::machine::Machine::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Instruction words, loaded at [`CODE_BASE`].
    pub code: Vec<u32>,
    /// Initialised data bytes, loaded immediately after the code
    /// (word-aligned).
    pub data: Vec<u8>,
    /// Entry point (defaults to [`CODE_BASE`]).
    pub entry: u32,
}

impl Image {
    /// Address at which the data segment is loaded.
    pub fn data_base(&self) -> u32 {
        CODE_BASE + self.code.len() as u32 * 4
    }

    /// First address past the static footprint, i.e. the heap base
    /// (word-aligned).
    pub fn static_end(&self) -> u32 {
        let end = self.data_base() + self.data.len() as u32;
        (end + 3) & !3
    }

    /// Address of the instruction at word index `i`.
    pub fn addr_of(&self, i: usize) -> u32 {
        CODE_BASE + i as u32 * 4
    }
}

/// First-fit guest heap allocator with host-side bookkeeping.
///
/// Block metadata lives outside guest memory so that memory corruption
/// cannot break the allocator itself, but misuse of the *interface*
/// (freeing an invalid pointer, double free) traps with
/// [`Trap::HeapFault`] — mirroring how a hardened `libc` aborts. Corrupted
/// pointers that are merely *dereferenced* still fault through the ordinary
/// memory checks, which is how the paper's dynamic-structure-heavy program
/// (C.team9) earns its high crash rate.
#[derive(Debug, Clone)]
pub struct Allocator {
    base: u32,
    limit: u32,
    brk: u32,
    live: BTreeMap<u32, u32>,
    free: BTreeMap<u32, u32>,
}

impl Allocator {
    /// Create an allocator over the guest range `[base, limit)`.
    pub fn new(base: u32, limit: u32) -> Allocator {
        let base = (base + 7) & !7;
        Allocator { base, limit, brk: base, live: BTreeMap::new(), free: BTreeMap::new() }
    }

    /// Allocate `size` bytes (8-byte aligned); returns the guest address or
    /// `0` when the arena is exhausted (like a C `malloc` returning NULL).
    pub fn malloc(&mut self, size: u32) -> u32 {
        let size = ((size.max(1)) + 7) & !7;
        // First fit from the free list.
        if let Some((&addr, &fsize)) = self.free.iter().find(|&(_, &s)| s >= size) {
            self.free.remove(&addr);
            if fsize > size {
                self.free.insert(addr + size, fsize - size);
            }
            self.live.insert(addr, size);
            return addr;
        }
        // Bump allocation.
        if self.brk.checked_add(size).is_none_or(|end| end > self.limit) {
            return 0;
        }
        let addr = self.brk;
        self.brk += size;
        self.live.insert(addr, size);
        addr
    }

    /// Release a block previously returned by [`Allocator::malloc`].
    ///
    /// # Errors
    ///
    /// [`Trap::HeapFault`] if `ptr` is not the base of a live block
    /// (wild free, double free).
    pub fn free(&mut self, ptr: u32) -> Result<(), Trap> {
        match self.live.remove(&ptr) {
            Some(size) => {
                // Coalesce with right neighbour.
                let mut addr = ptr;
                let mut size = size;
                if let Some(&next) = self.free.get(&(addr + size)) {
                    self.free.remove(&(addr + size));
                    size += next;
                }
                // Coalesce with left neighbour.
                if let Some((&prev, &psize)) = self.free.range(..addr).next_back() {
                    if prev + psize == addr {
                        self.free.remove(&prev);
                        addr = prev;
                        size += psize;
                    }
                }
                self.free.insert(addr, size);
                Ok(())
            }
            None => Err(Trap::HeapFault { addr: ptr }),
        }
    }

    /// Base address of the arena.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of live blocks (diagnostic).
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Total bytes currently allocated (diagnostic).
    pub fn live_bytes(&self) -> u64 {
        self.live.values().map(|&s| s as u64).sum()
    }

    /// Whether `addr` falls strictly inside a live block's payload.
    pub fn owns(&self, addr: u32) -> bool {
        self.live
            .range(..=addr)
            .next_back()
            .is_some_and(|(&base, &size)| addr >= base && addr < base + size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_page_traps() {
        let m = Memory::new(4096);
        assert_eq!(m.read_u32(0), Err(Trap::Unmapped { addr: 0 }));
        assert_eq!(m.read_u8(0xFF), Err(Trap::Unmapped { addr: 0xFF }));
        assert!(m.read_u8(0x100).is_ok());
    }

    #[test]
    fn out_of_range_traps() {
        let mut m = Memory::new(4096);
        assert!(m.read_u32(4096).is_err());
        assert!(m.read_u32(4094).is_err()); // straddles the end
        assert!(m.write_u8(4095, 1).is_ok());
    }

    #[test]
    fn misaligned_word_traps() {
        let m = Memory::new(4096);
        assert_eq!(m.read_u32(0x102), Err(Trap::Misaligned { addr: 0x102 }));
    }

    #[test]
    fn word_round_trip() {
        let mut m = Memory::new(4096);
        m.write_u32(0x200, 0xDEADBEEF).unwrap();
        assert_eq!(m.read_u32(0x200).unwrap(), 0xDEADBEEF);
        assert_eq!(m.read_u8(0x200).unwrap(), 0xEF); // little-endian
    }

    #[test]
    fn cstr_reads_until_nul() {
        let mut m = Memory::new(4096);
        m.write_bytes(0x300, b"hi\0zz").unwrap();
        assert_eq!(m.read_cstr(0x300, 64).unwrap(), b"hi".to_vec());
    }

    #[test]
    fn image_layout() {
        let img = Image { code: vec![0; 10], data: vec![1, 2, 3], entry: CODE_BASE };
        assert_eq!(img.data_base(), 0x100 + 40);
        assert_eq!(img.static_end(), 0x100 + 44); // 43 rounded up
        assert_eq!(img.addr_of(2), 0x108);
    }

    #[test]
    fn alloc_basic_and_reuse() {
        let mut a = Allocator::new(0x1000, 0x2000);
        let p1 = a.malloc(16);
        let p2 = a.malloc(16);
        assert_ne!(p1, 0);
        assert_ne!(p2, 0);
        assert_ne!(p1, p2);
        a.free(p1).unwrap();
        let p3 = a.malloc(8);
        assert_eq!(p3, p1, "freed block is reused first-fit");
    }

    #[test]
    fn alloc_exhaustion_returns_null() {
        let mut a = Allocator::new(0x1000, 0x1040);
        assert_ne!(a.malloc(32), 0);
        assert_ne!(a.malloc(32), 0);
        assert_eq!(a.malloc(8), 0);
    }

    #[test]
    fn double_free_traps() {
        let mut a = Allocator::new(0x1000, 0x2000);
        let p = a.malloc(8);
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(Trap::HeapFault { addr: p }));
    }

    #[test]
    fn wild_free_traps() {
        let mut a = Allocator::new(0x1000, 0x2000);
        let _ = a.malloc(8);
        assert!(a.free(0x1004).is_err());
        assert!(a.free(0xBEEF).is_err());
    }

    #[test]
    fn coalescing_allows_big_realloc() {
        let mut a = Allocator::new(0x1000, 0x1080);
        let p1 = a.malloc(64);
        let p2 = a.malloc(64);
        assert_ne!(p2, 0);
        assert_eq!(a.malloc(8), 0, "arena full");
        a.free(p1).unwrap();
        a.free(p2).unwrap();
        // After coalescing both halves, a 128-byte block must fit again.
        assert_ne!(a.malloc(128), 0);
    }

    #[test]
    fn owns_tracks_payload() {
        let mut a = Allocator::new(0x1000, 0x2000);
        let p = a.malloc(16);
        assert!(a.owns(p));
        assert!(a.owns(p + 15));
        assert!(!a.owns(p + 16));
        a.free(p).unwrap();
        assert!(!a.owns(p));
    }
}
