//! Guest memory, executable images, and the guest heap allocator.
//!
//! The address space is flat and byte-addressed:
//!
//! ```text
//! 0x0000_0000 ┌──────────────┐
//!             │  null page   │  unmapped — dereferencing a corrupted/null
//! 0x0000_0100 ├──────────────┤  pointer traps (crash failure mode)
//!             │  code        │
//!             ├──────────────┤
//!             │  data        │  globals + string literals
//!             ├──────────────┤
//!             │  heap   ↓    │  malloc/free arena
//!             ├──────────────┤
//!             │  stacks ↑    │  one fixed-size stack per core, at the top
//!  mem_size   └──────────────┘
//! ```
//!
//! Words are stored little-endian. (The real PowerPC 601 is big-endian; the
//! choice is irrelevant to the reproduced experiments, which never depend on
//! byte order, and is documented here for completeness.)

use std::collections::BTreeMap;
use std::fmt;

use crate::isa::{self, Instr};
use crate::machine::Trap;

/// First mapped address; everything below is the trapping null page.
pub const NULL_PAGE_END: u32 = 0x100;

/// Default load address for code (start of mapped memory).
pub const CODE_BASE: u32 = NULL_PAGE_END;

/// log2 of the dirty-tracking page size (4 KiB pages).
pub const PAGE_SHIFT: u32 = 12;

/// Dirty-tracking page size in bytes.
pub const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;

/// Counters describing the predecoded translation cache's behaviour.
///
/// Exposed per-machine through `Machine::decode_cache_stats` and rolled up
/// per-session by the campaign layer. All counters are cumulative since the
/// cache was (re)initialised by [`Memory::init_decode_cache`], i.e. since
/// program load — warm reboots deliberately do *not* reset them, so a
/// session's counters describe the whole campaign slice it executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Decoded lines materialised (including lines later invalidated and
    /// rebuilt, and lines recording an illegal word).
    pub lines_built: u64,
    /// Decoded/illegal lines reset to empty by a write into the code
    /// region (guest store, injector poke, or snapshot restore).
    pub lines_invalidated: u64,
    /// Instructions executed via the fetch→`on_fetch`→decode slow path
    /// (pinned PCs, reference mode, misaligned/out-of-range PCs).
    pub slow_fetches: u64,
}

/// One predecoded cache line, covering one word of the code region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Line {
    /// Not decoded yet (or invalidated); next fetch decodes and fills it.
    #[default]
    Empty,
    /// The word decoded cleanly; execute this without re-fetching.
    Decoded(Instr),
    /// The word does not decode; the slow path re-raises the precise trap.
    Illegal,
    /// An inspector may corrupt fetches from this PC: always take the slow
    /// path. Pins survive invalidation — a guest store to a pinned address
    /// changes the word but not the fact that the PC is armed.
    Pinned,
}

/// Lazily built predecoded instruction cache over the code region.
///
/// Indexed by `(pc - CODE_BASE) / 4`. Lives *inside* [`Memory`] so that the
/// only three mutating accessors ([`Memory::write_u32`],
/// [`Memory::write_u8`], [`Memory::write_bytes`]) and the dirty-page
/// rollback ([`Memory::restore_from`]) invalidate covering lines at the
/// source — self-modifying guests, injector pokes, and warm-reboot restores
/// all funnel through those four paths, so no staleness can escape.
#[derive(Clone, Default)]
struct ICache {
    /// One line per code word; empty vector means the cache is disabled.
    lines: Vec<Line>,
    /// First address past the cached region (`CODE_BASE + 4 * lines.len()`).
    limit: u32,
    stats: DecodeCacheStats,
    /// Pending code-write ranges (inclusive word indices) not yet applied
    /// to the basic-block cache. Every path that can change a code word or
    /// its fetch-pin state appends here; the block interpreter drains the
    /// log before each block dispatch (see `crate::blocks`).
    code_writes: Vec<(u32, u32)>,
    /// Set instead of growing `code_writes` past [`CODE_WRITE_LOG_CAP`];
    /// tells the drainer to flush every translated block. Sticky until the
    /// next drain, so writes made while no block interpreter is running
    /// are never lost.
    code_writes_overflow: bool,
}

/// Bound on the pending code-write log. Overflow degrades to a full block
/// flush, so the cap only trades precision for memory; 32 covers every
/// realistic burst (injector pokes touch 1–2 words, restores a few).
const CODE_WRITE_LOG_CAP: usize = 32;

impl ICache {
    /// Record that words `first..=last` changed (or changed pin state).
    #[inline]
    fn log_code_write(&mut self, first: u32, last: u32) {
        if self.code_writes.len() < CODE_WRITE_LOG_CAP {
            self.code_writes.push((first, last));
        } else {
            self.code_writes_overflow = true;
        }
    }
}

/// Flat guest memory with null-page protection and dirty-page tracking.
///
/// All accessors return [`Trap`]-typed errors rather than panicking so that
/// wild accesses caused by injected faults surface as the paper's *crash*
/// failure mode.
///
/// Every mutating accessor ([`Memory::write_u32`], [`Memory::write_u8`],
/// [`Memory::write_bytes`] — there are no others) marks the touched
/// [`PAGE_SIZE`]-byte page(s) in a fixed-size bitmap. A
/// [`MemorySnapshot`] taken after program load can then be restored in
/// O(pages touched since the snapshot) instead of O(memory size), which is
/// what makes the warm-reboot run engine cheap: a typical run of the
/// paper's workloads dirties a handful of stack/heap pages out of a
/// 512 KiB–1 MiB address space.
#[derive(Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    /// One bit per [`PAGE_SIZE`]-byte page, set by every write since the
    /// last [`Memory::snapshot`] / [`Memory::restore_from`].
    dirty: Vec<u64>,
    /// One bit per page overlaid by the last [`Memory::restore_fork_from`]:
    /// pages whose *current* contents differ from the base snapshot even
    /// though no write dirtied them afterwards. The next restore (plain or
    /// fork) must treat them exactly like dirty pages.
    restored_delta: Vec<u64>,
    /// Predecoded translation cache over the code region (disabled until
    /// [`Memory::init_decode_cache`]).
    icache: ICache,
}

/// A sparse copy of the pages that diverge from the base
/// [`MemorySnapshot`], produced by [`Memory::fork_delta`] and overlaid by
/// [`Memory::restore_fork_from`].
///
/// This is the memory half of a prefix-fork snapshot: a run paused at its
/// trigger point has touched only a handful of stack/heap pages, so the
/// delta stores just those pages instead of a second full-memory copy.
#[derive(Clone)]
pub struct MemoryDelta {
    /// `(page index, page contents)`, sorted by page index.
    pages: Vec<(u32, Box<[u8]>)>,
    /// Size of the memory the delta was taken from, for compatibility
    /// checks.
    size: u32,
}

impl fmt::Debug for MemoryDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryDelta")
            .field("pages", &self.pages.len())
            .field("size", &self.size)
            .finish()
    }
}

impl MemoryDelta {
    /// Number of pages stored in the delta.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Approximate heap footprint of the delta in bytes (for cache
    /// bounding diagnostics).
    pub fn byte_count(&self) -> usize {
        self.pages.iter().map(|(_, b)| b.len()).sum()
    }
}

/// A point-in-time full copy of guest memory, produced by
/// [`Memory::snapshot`] and consumed by [`Memory::restore_from`].
///
/// The snapshot itself is a plain byte copy; the *restore* is what is
/// incremental (only pages dirtied since the snapshot are copied back).
#[derive(Clone)]
pub struct MemorySnapshot {
    bytes: Vec<u8>,
}

impl fmt::Debug for MemorySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySnapshot")
            .field("size", &self.bytes.len())
            .finish()
    }
}

impl MemorySnapshot {
    /// Size of the snapshotted memory in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("size", &self.bytes.len())
            .finish()
    }
}

impl Memory {
    /// Create a zeroed memory of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than one page (256 bytes) or not
    /// word-aligned; these are configuration errors, not runtime faults.
    pub fn new(size: u32) -> Memory {
        assert!(size >= 2 * NULL_PAGE_END, "memory too small: {size}");
        assert_eq!(size % 4, 0, "memory size must be word aligned");
        let pages = (size as usize).div_ceil(PAGE_SIZE as usize);
        Memory {
            bytes: vec![0; size as usize],
            dirty: vec![0; pages.div_ceil(64)],
            restored_delta: vec![0; pages.div_ceil(64)],
            icache: ICache::default(),
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    #[inline]
    fn check(&self, addr: u32, len: u32) -> Result<(), Trap> {
        if addr < NULL_PAGE_END || (addr as u64) + (len as u64) > self.bytes.len() as u64 {
            return Err(Trap::Unmapped { addr });
        }
        Ok(())
    }

    /// Mark the pages covering `[addr, addr + len)` dirty. Callers pass
    /// already-bounds-checked ranges with `len >= 1`.
    #[inline]
    fn mark_dirty(&mut self, addr: u32, len: u32) {
        let first = (addr >> PAGE_SHIFT) as usize;
        let last = ((addr + len - 1) >> PAGE_SHIFT) as usize;
        for page in first..=last {
            self.dirty[page / 64] |= 1u64 << (page % 64);
        }
    }

    /// Take a full-copy snapshot of the current contents and reset the
    /// dirty bitmap, establishing the baseline that a later
    /// [`Memory::restore_from`] rolls back to.
    pub fn snapshot(&mut self) -> MemorySnapshot {
        self.dirty.iter_mut().for_each(|w| *w = 0);
        self.restored_delta.iter_mut().for_each(|w| *w = 0);
        MemorySnapshot {
            bytes: self.bytes.clone(),
        }
    }

    /// Copy `src` (the target contents for `[start, end)`) into place,
    /// word-diffing code pages first so only the lines whose words
    /// actually change are invalidated — one patched word costs one
    /// rebuilt line, not a whole page of them.
    fn copy_page_checked(&mut self, start: usize, end: usize, src: &[u8]) {
        if (start as u32) < self.icache.limit {
            let mut a = start;
            while a < end {
                if self.bytes[a..a + 4] != src[a - start..a - start + 4] {
                    self.invalidate_decoded(a as u32, 4);
                }
                a += 4;
            }
        }
        self.bytes[start..end].copy_from_slice(src);
    }

    /// Roll memory back to `snap`, copying **only the pages dirtied since
    /// the snapshot was taken** (or since the last restore), then clear
    /// the dirty bitmap.
    ///
    /// This is semantically identical to replacing the whole contents with
    /// the snapshot — provided `snap` was taken from *this* memory and no
    /// other snapshot baseline has been interleaved, which is the contract
    /// the warm-reboot engine maintains (one snapshot per loaded machine).
    ///
    /// # Panics
    ///
    /// Panics if `snap` has a different size (a configuration error).
    pub fn restore_from(&mut self, snap: &MemorySnapshot) {
        assert_eq!(
            self.bytes.len(),
            snap.bytes.len(),
            "snapshot/memory size mismatch: snapshot is for a different machine"
        );
        let size = self.bytes.len();
        for word_idx in 0..self.dirty.len() {
            // Pages overlaid by a fork restore diverge from the baseline
            // even when nothing wrote to them afterwards; fold them in.
            let mut w = self.dirty[word_idx] | self.restored_delta[word_idx];
            self.dirty[word_idx] = 0;
            self.restored_delta[word_idx] = 0;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                let page = word_idx * 64 + bit;
                let start = page << PAGE_SHIFT;
                let end = (start + PAGE_SIZE as usize).min(size);
                self.copy_page_checked(start, end, &snap.bytes[start..end]);
            }
        }
    }

    /// Capture the pages that currently diverge from the base snapshot
    /// (dirty since the last restore, plus any pages overlaid by a prior
    /// [`Memory::restore_fork_from`]) as a sparse [`MemoryDelta`].
    ///
    /// Non-destructive: the dirty bitmaps are left untouched, so the run
    /// that produced the state can simply continue.
    pub fn fork_delta(&self) -> MemoryDelta {
        let size = self.bytes.len();
        let mut pages = Vec::new();
        for word_idx in 0..self.dirty.len() {
            let mut w = self.dirty[word_idx] | self.restored_delta[word_idx];
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                let page = word_idx * 64 + bit;
                let start = page << PAGE_SHIFT;
                let end = (start + PAGE_SIZE as usize).min(size);
                pages.push((
                    page as u32,
                    self.bytes[start..end].to_vec().into_boxed_slice(),
                ));
            }
        }
        MemoryDelta {
            pages,
            size: size as u32,
        }
    }

    /// Restore to `base` *overlaid with* `delta`: the memory state a run
    /// had when [`Memory::fork_delta`] was captured.
    ///
    /// Cost is O(pages currently diverging from base + pages in the
    /// delta). Afterwards the dirty bitmap is clear and the delta's pages
    /// are remembered in `restored_delta`, so the next restore (plain or
    /// fork) knows to roll them back too. Decoded lines covering changed
    /// code words are invalidated exactly as in [`Memory::restore_from`].
    ///
    /// `delta` may come from a *different* `Memory` as long as both were
    /// loaded identically (same size, byte-identical base snapshot) —
    /// which is how pooled campaign workers share one prefix cache.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `delta` was taken from a different-size memory.
    pub fn restore_fork_from(&mut self, base: &MemorySnapshot, delta: &MemoryDelta) {
        assert_eq!(
            self.bytes.len(),
            base.bytes.len(),
            "snapshot/memory size mismatch: snapshot is for a different machine"
        );
        assert_eq!(
            self.bytes.len() as u32,
            delta.size,
            "fork delta/memory size mismatch: delta is for a different machine"
        );
        let size = self.bytes.len();
        let in_delta = |page: u32| delta.pages.binary_search_by_key(&page, |&(p, _)| p).is_ok();
        for word_idx in 0..self.dirty.len() {
            let mut w = self.dirty[word_idx] | self.restored_delta[word_idx];
            self.dirty[word_idx] = 0;
            self.restored_delta[word_idx] = 0;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                let page = word_idx * 64 + bit;
                if in_delta(page as u32) {
                    continue; // overlaid below
                }
                let start = page << PAGE_SHIFT;
                let end = (start + PAGE_SIZE as usize).min(size);
                self.copy_page_checked(start, end, &base.bytes[start..end]);
            }
        }
        for (page, bytes) in &delta.pages {
            let page = *page as usize;
            let start = page << PAGE_SHIFT;
            let end = (start + PAGE_SIZE as usize).min(size);
            self.copy_page_checked(start, end, bytes);
            self.restored_delta[page / 64] |= 1u64 << (page % 64);
        }
    }

    /// Number of pages currently marked dirty (diagnostic: a warm restore
    /// copies exactly this many pages).
    pub fn dirty_pages(&self) -> usize {
        self.dirty.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// (Re)initialise the predecoded translation cache over
    /// `[CODE_BASE, code_end)`, clearing all lines, pins, and statistics.
    ///
    /// Called by `Machine::load` once the code words are in place. Decoding
    /// is lazy: lines fill on first execution, so programs pay only for the
    /// code they actually run.
    pub fn init_decode_cache(&mut self, code_end: u32) {
        let words = ((code_end.max(CODE_BASE) - CODE_BASE) / 4) as usize;
        self.icache.lines.clear();
        self.icache.lines.resize(words, Line::Empty);
        self.icache.limit = CODE_BASE + words as u32 * 4;
        self.icache.stats = DecodeCacheStats::default();
        // `Machine::load` reinitialises the block cache alongside this,
        // so writes logged during image loading are moot.
        self.icache.code_writes.clear();
        self.icache.code_writes_overflow = false;
    }

    /// Whether any code words changed (or changed pin state) since the
    /// last [`Memory::drain_code_writes`]. Cheap enough for a per-dispatch
    /// check in the block interpreter.
    #[inline]
    pub(crate) fn has_code_writes(&self) -> bool {
        !self.icache.code_writes.is_empty() || self.icache.code_writes_overflow
    }

    /// Drain the pending code-write log, passing each changed range of
    /// word indices (inclusive) to `f`. Returns `true` when the log
    /// overflowed, in which case `f` is *not* called and the caller must
    /// conservatively flush every translated block.
    pub(crate) fn drain_code_writes(&mut self, mut f: impl FnMut(u32, u32)) -> bool {
        let overflow = self.icache.code_writes_overflow;
        self.icache.code_writes_overflow = false;
        if overflow {
            self.icache.code_writes.clear();
            return true;
        }
        for (first, last) in self.icache.code_writes.drain(..) {
            f(first, last);
        }
        false
    }

    /// Fetch the decoded instruction at `pc` from the translation cache,
    /// building the line on first touch.
    ///
    /// Returns `None` whenever the slow fetch→hook→decode path must run
    /// instead: `pc` outside or misaligned within the cached region, a
    /// pinned (fetch-armed) line, or a word that previously failed to
    /// decode (the slow path re-raises the precise `IllegalInstruction`
    /// trap with the offending word).
    #[inline]
    pub(crate) fn fetch_decoded(&mut self, pc: u32) -> Option<Instr> {
        // `pc < CODE_BASE` wraps to a huge offset and `pc >= limit` lands
        // past the vector, so a single length-checked `get` covers both
        // range tests; only alignment needs an explicit check.
        let off = pc.wrapping_sub(CODE_BASE);
        if off & 3 != 0 {
            return None;
        }
        let idx = (off >> 2) as usize;
        match self.icache.lines.get(idx).copied() {
            None => None,
            Some(Line::Decoded(i)) => Some(i),
            Some(Line::Empty) => self.build_line(pc, idx),
            Some(Line::Illegal) | Some(Line::Pinned) => None,
        }
    }

    /// Decode the code word at `pc` into line `idx` (first touch after
    /// load or invalidation). Out of line so the hot
    /// [`Memory::fetch_decoded`] path stays small enough to inline.
    #[cold]
    fn build_line(&mut self, pc: u32, idx: usize) -> Option<Instr> {
        let b = pc as usize;
        let word = u32::from_le_bytes([
            self.bytes[b],
            self.bytes[b + 1],
            self.bytes[b + 2],
            self.bytes[b + 3],
        ]);
        self.icache.stats.lines_built += 1;
        match isa::decode(word) {
            Ok(i) => {
                self.icache.lines[idx] = Line::Decoded(i);
                Some(i)
            }
            Err(_) => {
                self.icache.lines[idx] = Line::Illegal;
                None
            }
        }
    }

    /// Invalidate every decoded line covering `[addr, addr + len)`.
    ///
    /// Pinned lines stay pinned: a write to an armed PC changes the word
    /// but not the fact that fetches from it must take the slow path.
    /// The early-out makes this free for the overwhelmingly common case of
    /// stores above the code region (data/heap/stack).
    #[inline]
    fn invalidate_decoded(&mut self, addr: u32, len: u32) {
        if addr >= self.icache.limit || len == 0 || addr + len <= CODE_BASE {
            return;
        }
        let first = (addr.max(CODE_BASE) - CODE_BASE) as usize / 4;
        let last = (((addr + len - 1).min(self.icache.limit - 1)) - CODE_BASE) as usize / 4;
        // The block cache must see every write into code, even to words
        // whose lines are Empty or Pinned — a block can cover those too.
        self.icache.log_code_write(first as u32, last as u32);
        for line in &mut self.icache.lines[first..=last] {
            match *line {
                Line::Decoded(_) | Line::Illegal => {
                    *line = Line::Empty;
                    self.icache.stats.lines_invalidated += 1;
                }
                Line::Empty | Line::Pinned => {}
            }
        }
    }

    /// Pin `pc` to the slow fetch path (an inspector may corrupt fetches
    /// from it). No-op outside the cached region — the slow path already
    /// covers such PCs.
    pub(crate) fn pin_fetch_slow(&mut self, pc: u32) {
        if pc >= CODE_BASE && pc < self.icache.limit && pc.is_multiple_of(4) {
            let idx = ((pc - CODE_BASE) / 4) as usize;
            self.icache.lines[idx] = Line::Pinned;
            // Blocks covering a newly armed PC must die so fetches from it
            // funnel through the single-step slow path.
            self.icache.log_code_write(idx as u32, idx as u32);
        }
    }

    /// Remove a pin installed by [`Memory::pin_fetch_slow`], returning the
    /// line to the lazily-decoded state.
    pub(crate) fn unpin_fetch(&mut self, pc: u32) {
        if pc >= CODE_BASE && pc < self.icache.limit && pc.is_multiple_of(4) {
            let idx = ((pc - CODE_BASE) / 4) as usize;
            if self.icache.lines[idx] == Line::Pinned {
                self.icache.lines[idx] = Line::Empty;
                // Blocks truncated at the pin may now be extendable;
                // invalidating them lets translation take the longer form.
                self.icache.log_code_write(idx as u32, idx as u32);
            }
        }
    }

    /// Record one slow-path (fetch→hook→decode) instruction fetch.
    #[inline]
    pub(crate) fn note_slow_fetch(&mut self) {
        self.icache.stats.slow_fetches += 1;
    }

    /// Cumulative translation-cache counters since the last
    /// [`Memory::init_decode_cache`].
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.icache.stats
    }

    /// Read a little-endian word.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] outside the mapped range, [`Trap::Misaligned`] for
    /// non-word-aligned addresses.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> Result<u32, Trap> {
        if !addr.is_multiple_of(4) {
            return Err(Trap::Misaligned { addr });
        }
        self.check(addr, 4)?;
        let i = addr as usize;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Write a little-endian word.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::read_u32`].
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), Trap> {
        if !addr.is_multiple_of(4) {
            return Err(Trap::Misaligned { addr });
        }
        self.check(addr, 4)?;
        self.mark_dirty(addr, 4);
        self.invalidate_decoded(addr, 4);
        self.bytes[addr as usize..addr as usize + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] outside the mapped range.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> Result<u8, Trap> {
        self.check(addr, 1)?;
        Ok(self.bytes[addr as usize])
    }

    /// Write one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] outside the mapped range.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), Trap> {
        self.check(addr, 1)?;
        self.mark_dirty(addr, 1);
        self.invalidate_decoded(addr, 1);
        self.bytes[addr as usize] = value;
        Ok(())
    }

    /// Copy a byte slice into memory.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] if any byte of the destination is unmapped.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), Trap> {
        if data.is_empty() {
            return Ok(());
        }
        self.check(addr, data.len() as u32)?;
        self.mark_dirty(addr, data.len() as u32);
        self.invalidate_decoded(addr, data.len() as u32);
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read a NUL-terminated string starting at `addr`, up to `max` bytes.
    ///
    /// # Errors
    ///
    /// [`Trap::Unmapped`] if the string runs off mapped memory before a NUL.
    pub fn read_cstr(&self, addr: u32, max: u32) -> Result<Vec<u8>, Trap> {
        let mut out = Vec::new();
        let mut a = addr;
        while out.len() < max as usize {
            let b = self.read_u8(a)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            a = a.wrapping_add(1);
        }
        Ok(out)
    }
}

/// A linked executable: code, initialised data, and layout bookkeeping.
///
/// Produced by the assembler ([`crate::asm`]) or the MiniC compiler, and
/// consumed by [`crate::machine::Machine::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Instruction words, loaded at [`CODE_BASE`].
    pub code: Vec<u32>,
    /// Initialised data bytes, loaded immediately after the code
    /// (word-aligned).
    pub data: Vec<u8>,
    /// Entry point (defaults to [`CODE_BASE`]).
    pub entry: u32,
}

impl Image {
    /// Address at which the data segment is loaded.
    pub fn data_base(&self) -> u32 {
        CODE_BASE + self.code.len() as u32 * 4
    }

    /// First address past the static footprint, i.e. the heap base
    /// (word-aligned).
    pub fn static_end(&self) -> u32 {
        let end = self.data_base() + self.data.len() as u32;
        (end + 3) & !3
    }

    /// Address of the instruction at word index `i`.
    pub fn addr_of(&self, i: usize) -> u32 {
        CODE_BASE + i as u32 * 4
    }
}

/// First-fit guest heap allocator with host-side bookkeeping.
///
/// Block metadata lives outside guest memory so that memory corruption
/// cannot break the allocator itself, but misuse of the *interface*
/// (freeing an invalid pointer, double free) traps with
/// [`Trap::HeapFault`] — mirroring how a hardened `libc` aborts. Corrupted
/// pointers that are merely *dereferenced* still fault through the ordinary
/// memory checks, which is how the paper's dynamic-structure-heavy program
/// (C.team9) earns its high crash rate.
#[derive(Debug, Clone)]
pub struct Allocator {
    base: u32,
    limit: u32,
    brk: u32,
    live: BTreeMap<u32, u32>,
    free: BTreeMap<u32, u32>,
}

impl Allocator {
    /// Create an allocator over the guest range `[base, limit)`.
    pub fn new(base: u32, limit: u32) -> Allocator {
        let base = (base + 7) & !7;
        Allocator {
            base,
            limit,
            brk: base,
            live: BTreeMap::new(),
            free: BTreeMap::new(),
        }
    }

    /// Allocate `size` bytes (8-byte aligned); returns the guest address or
    /// `0` when the arena is exhausted (like a C `malloc` returning NULL).
    pub fn malloc(&mut self, size: u32) -> u32 {
        let size = ((size.max(1)) + 7) & !7;
        // First fit from the free list.
        if let Some((&addr, &fsize)) = self.free.iter().find(|&(_, &s)| s >= size) {
            self.free.remove(&addr);
            if fsize > size {
                self.free.insert(addr + size, fsize - size);
            }
            self.live.insert(addr, size);
            return addr;
        }
        // Bump allocation.
        if self
            .brk
            .checked_add(size)
            .is_none_or(|end| end > self.limit)
        {
            return 0;
        }
        let addr = self.brk;
        self.brk += size;
        self.live.insert(addr, size);
        addr
    }

    /// Release a block previously returned by [`Allocator::malloc`].
    ///
    /// # Errors
    ///
    /// [`Trap::HeapFault`] if `ptr` is not the base of a live block
    /// (wild free, double free).
    pub fn free(&mut self, ptr: u32) -> Result<(), Trap> {
        match self.live.remove(&ptr) {
            Some(size) => {
                // Coalesce with right neighbour.
                let mut addr = ptr;
                let mut size = size;
                if let Some(&next) = self.free.get(&(addr + size)) {
                    self.free.remove(&(addr + size));
                    size += next;
                }
                // Coalesce with left neighbour.
                if let Some((&prev, &psize)) = self.free.range(..addr).next_back() {
                    if prev + psize == addr {
                        self.free.remove(&prev);
                        addr = prev;
                        size += psize;
                    }
                }
                self.free.insert(addr, size);
                Ok(())
            }
            None => Err(Trap::HeapFault { addr: ptr }),
        }
    }

    /// Base address of the arena.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of live blocks (diagnostic).
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Total bytes currently allocated (diagnostic).
    pub fn live_bytes(&self) -> u64 {
        self.live.values().map(|&s| s as u64).sum()
    }

    /// Whether `addr` falls strictly inside a live block's payload.
    pub fn owns(&self, addr: u32) -> bool {
        self.live
            .range(..=addr)
            .next_back()
            .is_some_and(|(&base, &size)| addr >= base && addr < base + size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_page_traps() {
        let m = Memory::new(4096);
        assert_eq!(m.read_u32(0), Err(Trap::Unmapped { addr: 0 }));
        assert_eq!(m.read_u8(0xFF), Err(Trap::Unmapped { addr: 0xFF }));
        assert!(m.read_u8(0x100).is_ok());
    }

    #[test]
    fn out_of_range_traps() {
        let mut m = Memory::new(4096);
        assert!(m.read_u32(4096).is_err());
        assert!(m.read_u32(4094).is_err()); // straddles the end
        assert!(m.write_u8(4095, 1).is_ok());
    }

    #[test]
    fn misaligned_word_traps() {
        let m = Memory::new(4096);
        assert_eq!(m.read_u32(0x102), Err(Trap::Misaligned { addr: 0x102 }));
    }

    #[test]
    fn word_round_trip() {
        let mut m = Memory::new(4096);
        m.write_u32(0x200, 0xDEADBEEF).unwrap();
        assert_eq!(m.read_u32(0x200).unwrap(), 0xDEADBEEF);
        assert_eq!(m.read_u8(0x200).unwrap(), 0xEF); // little-endian
    }

    #[test]
    fn cstr_reads_until_nul() {
        let mut m = Memory::new(4096);
        m.write_bytes(0x300, b"hi\0zz").unwrap();
        assert_eq!(m.read_cstr(0x300, 64).unwrap(), b"hi".to_vec());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut m = Memory::new(64 * 1024);
        m.write_u32(0x200, 0x11111111).unwrap();
        let snap = m.snapshot();
        assert_eq!(m.dirty_pages(), 0, "snapshot clears the dirty bitmap");

        m.write_u32(0x200, 0x22222222).unwrap();
        m.write_u8(0x5000, 7).unwrap();
        m.write_bytes(0x8FFE, &[1, 2, 3, 4]).unwrap(); // straddles a page boundary
        assert_eq!(m.dirty_pages(), 4);

        m.restore_from(&snap);
        assert_eq!(m.read_u32(0x200).unwrap(), 0x11111111);
        assert_eq!(m.read_u8(0x5000).unwrap(), 0);
        assert_eq!(m.read_u8(0x8FFF).unwrap(), 0);
        assert_eq!(m.read_u8(0x9000).unwrap(), 0);
        assert_eq!(m.dirty_pages(), 0, "restore clears the dirty bitmap");
    }

    #[test]
    fn restore_is_equivalent_to_full_copy() {
        // Dirty a pseudo-random set of locations, restore, and compare
        // against a memory that never diverged.
        let mut m = Memory::new(128 * 1024);
        for i in 0..32u32 {
            m.write_u32(0x100 + i * 4096, i).unwrap();
        }
        let snap = m.snapshot();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = 0x100 + (state >> 33) as u32 % (128 * 1024 - 0x110);
            m.write_u8(addr, (state >> 16) as u8).unwrap();
        }
        m.restore_from(&snap);
        for i in 0..32u32 {
            assert_eq!(m.read_u32(0x100 + i * 4096).unwrap(), i);
        }
        // Every byte must match the snapshot, not just the probed words.
        for addr in (0x100..128 * 1024).step_by(97) {
            assert_eq!(m.read_u8(addr).unwrap(), snap.bytes[addr as usize]);
        }
    }

    #[test]
    fn repeated_restores_from_one_snapshot() {
        let mut m = Memory::new(16 * 1024);
        m.write_bytes(0x400, b"baseline").unwrap();
        let snap = m.snapshot();
        for round in 0..5u8 {
            m.write_bytes(0x400, &[round; 8]).unwrap();
            m.write_u8(0x3FF0 - u32::from(round) * 16, round + 1)
                .unwrap();
            m.restore_from(&snap);
            assert_eq!(m.read_cstr(0x400, 16).unwrap(), b"baseline".to_vec());
            assert_eq!(m.read_u8(0x3FF0 - u32::from(round) * 16).unwrap(), 0);
        }
    }

    #[test]
    fn fork_delta_round_trip() {
        let mut m = Memory::new(64 * 1024);
        m.write_bytes(0x400, b"base").unwrap();
        let base = m.snapshot();

        // "Prefix" run: dirty a couple of pages, capture the fork point.
        m.write_bytes(0x400, b"frk!").unwrap();
        m.write_u8(0x5000, 9).unwrap();
        let delta = m.fork_delta();
        assert_eq!(delta.page_count(), 2);
        assert!(delta.byte_count() > 0);

        // The capture is non-destructive: the run continues and dirties
        // another page, which the fork restore must roll back.
        m.write_u8(0x8000, 1).unwrap();

        m.restore_fork_from(&base, &delta);
        assert_eq!(m.read_cstr(0x400, 8).unwrap(), b"frk!".to_vec());
        assert_eq!(m.read_u8(0x5000).unwrap(), 9);
        assert_eq!(m.read_u8(0x8000).unwrap(), 0);
        assert_eq!(m.dirty_pages(), 0, "fork restore clears the dirty bitmap");

        // A plain restore afterwards recovers the baseline even though the
        // delta pages were never re-dirtied.
        m.restore_from(&base);
        assert_eq!(m.read_cstr(0x400, 8).unwrap(), b"base".to_vec());
        assert_eq!(m.read_u8(0x5000).unwrap(), 0);
    }

    #[test]
    fn back_to_back_fork_restores() {
        let mut m = Memory::new(64 * 1024);
        let base = m.snapshot();
        m.write_u8(0x5000, 1).unwrap();
        let d1 = m.fork_delta();
        m.restore_from(&base);
        m.write_u8(0x9000, 2).unwrap();
        let d2 = m.fork_delta();
        m.restore_fork_from(&base, &d1);
        // No plain restore in between: d1's overlay must be rolled back.
        m.restore_fork_from(&base, &d2);
        assert_eq!(m.read_u8(0x5000).unwrap(), 0, "d1 page rolled back");
        assert_eq!(m.read_u8(0x9000).unwrap(), 2);
    }

    #[test]
    fn fork_restore_invalidates_changed_code_words() {
        let mut m = Memory::new(16 * 1024);
        let nop = isa::NOP;
        let nop_i = isa::decode(nop).unwrap();
        m.write_u32(CODE_BASE, nop).unwrap();
        m.init_decode_cache(CODE_BASE + 4);
        let base = m.snapshot();
        m.write_u32(CODE_BASE, isa::encode(isa::Instr::Halt))
            .unwrap();
        let delta = m.fork_delta();
        m.restore_from(&base);
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(nop_i));
        m.restore_fork_from(&base, &delta);
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(isa::Instr::Halt));
        m.restore_from(&base);
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(nop_i));
    }

    #[test]
    fn foreign_fork_delta_applies_to_identical_twin() {
        // Two identically-initialised memories (pooled workers): a delta
        // captured on one must restore correctly on the other.
        let mut a = Memory::new(32 * 1024);
        let mut b = Memory::new(32 * 1024);
        a.write_bytes(0x400, b"twin").unwrap();
        b.write_bytes(0x400, b"twin").unwrap();
        let _base_a = a.snapshot();
        let base_b = b.snapshot();
        a.write_u8(0x2000, 5).unwrap();
        let delta = a.fork_delta();
        b.write_u8(0x3000, 9).unwrap(); // b has its own divergence
        b.restore_fork_from(&base_b, &delta);
        assert_eq!(b.read_u8(0x2000).unwrap(), 5);
        assert_eq!(b.read_u8(0x3000).unwrap(), 0);
        assert_eq!(b.read_cstr(0x400, 8).unwrap(), b"twin".to_vec());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn restore_rejects_foreign_snapshot() {
        let mut a = Memory::new(4096);
        let mut b = Memory::new(8192);
        let snap = a.snapshot();
        b.restore_from(&snap);
    }

    #[test]
    fn empty_write_is_a_no_op() {
        let mut m = Memory::new(4096);
        let snap = m.snapshot();
        m.write_bytes(0x200, &[]).unwrap();
        assert_eq!(m.dirty_pages(), 0);
        m.restore_from(&snap);
    }

    #[test]
    fn decode_cache_builds_lazily_and_hits() {
        let mut m = Memory::new(4096);
        let nop = isa::NOP;
        let nop_i = isa::decode(nop).unwrap();
        m.write_u32(CODE_BASE, nop).unwrap();
        m.write_u32(CODE_BASE + 4, nop).unwrap();
        m.init_decode_cache(CODE_BASE + 8);

        assert_eq!(m.decode_cache_stats().lines_built, 0);
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(nop_i));
        assert_eq!(m.decode_cache_stats().lines_built, 1);
        // Second fetch is a hit: no new line built.
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(nop_i));
        assert_eq!(m.decode_cache_stats().lines_built, 1);
        // Outside the cached region / misaligned → slow path.
        assert_eq!(m.fetch_decoded(CODE_BASE + 8), None);
        assert_eq!(m.fetch_decoded(CODE_BASE + 2), None);
        assert_eq!(m.fetch_decoded(0), None);
    }

    #[test]
    fn decode_cache_records_illegal_words() {
        let mut m = Memory::new(4096);
        m.write_u32(CODE_BASE, 0).unwrap(); // zero word is illegal
        m.init_decode_cache(CODE_BASE + 4);
        assert_eq!(m.fetch_decoded(CODE_BASE), None);
        assert_eq!(m.decode_cache_stats().lines_built, 1);
        // Stays on the slow path without rebuilding the line.
        assert_eq!(m.fetch_decoded(CODE_BASE), None);
        assert_eq!(m.decode_cache_stats().lines_built, 1);
    }

    #[test]
    fn writes_into_code_invalidate_covering_lines() {
        let mut m = Memory::new(4096);
        let nop = isa::NOP;
        let nop_i = isa::decode(nop).unwrap();
        for i in 0..4 {
            m.write_u32(CODE_BASE + i * 4, nop).unwrap();
        }
        m.init_decode_cache(CODE_BASE + 16);
        for i in 0..4 {
            assert!(m.fetch_decoded(CODE_BASE + i * 4).is_some());
        }

        // Word write: exactly one line invalidated, then rebuilt with the
        // new contents.
        let halt = isa::encode(isa::Instr::Halt);
        m.write_u32(CODE_BASE + 4, halt).unwrap();
        assert_eq!(m.decode_cache_stats().lines_invalidated, 1);
        assert_eq!(m.fetch_decoded(CODE_BASE + 4), Some(isa::Instr::Halt));
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(nop_i));

        // Byte write invalidates the covering word line.
        m.write_u8(CODE_BASE + 9, 0xFF).unwrap();
        assert_eq!(m.decode_cache_stats().lines_invalidated, 2);

        // Writes above the cached region never invalidate.
        let before = m.decode_cache_stats().lines_invalidated;
        m.write_u32(0x800, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.decode_cache_stats().lines_invalidated, before);
    }

    #[test]
    fn restore_invalidates_restored_code_pages() {
        let mut m = Memory::new(16 * 1024);
        let nop = isa::NOP;
        let nop_i = isa::decode(nop).unwrap();
        m.write_u32(CODE_BASE, nop).unwrap();
        m.init_decode_cache(CODE_BASE + 4);
        let snap = m.snapshot();

        // Patch the code, decode the patched word, then roll back.
        m.write_u32(CODE_BASE, isa::encode(isa::Instr::Halt))
            .unwrap();
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(isa::Instr::Halt));
        m.restore_from(&snap);
        // The restored word must be re-decoded, not served stale.
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(nop_i));
    }

    #[test]
    fn pinned_lines_stay_slow_and_survive_invalidation() {
        let mut m = Memory::new(4096);
        let nop = isa::NOP;
        let nop_i = isa::decode(nop).unwrap();
        m.write_u32(CODE_BASE, nop).unwrap();
        m.init_decode_cache(CODE_BASE + 4);

        m.pin_fetch_slow(CODE_BASE);
        assert_eq!(m.fetch_decoded(CODE_BASE), None, "pinned → slow path");
        // A write to the pinned word must not quietly unpin it.
        m.write_u32(CODE_BASE, nop).unwrap();
        assert_eq!(m.fetch_decoded(CODE_BASE), None, "pin survives writes");

        m.unpin_fetch(CODE_BASE);
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(nop_i));
        // Unpinning a non-pinned (now decoded) line is a no-op.
        m.unpin_fetch(CODE_BASE);
        assert_eq!(m.fetch_decoded(CODE_BASE), Some(nop_i));
    }

    #[test]
    fn code_write_log_records_stores_pins_and_overflow() {
        let mut m = Memory::new(8 * 1024);
        let nop = isa::NOP;
        for i in 0..64u32 {
            m.write_u32(CODE_BASE + i * 4, nop).unwrap();
        }
        m.init_decode_cache(CODE_BASE + 64 * 4);
        assert!(!m.has_code_writes(), "init clears the log");

        m.write_u32(CODE_BASE + 8, nop).unwrap();
        m.write_u8(CODE_BASE + 13, 1).unwrap();
        m.pin_fetch_slow(CODE_BASE + 20);
        m.unpin_fetch(CODE_BASE + 20);
        assert!(m.has_code_writes());
        let mut ranges = Vec::new();
        let overflow = m.drain_code_writes(|a, b| ranges.push((a, b)));
        assert!(!overflow);
        assert_eq!(ranges, vec![(2, 2), (3, 3), (5, 5), (5, 5)]);
        assert!(!m.has_code_writes(), "drain empties the log");

        // Stores above the code region never log.
        m.write_u32(0x1000, 7).unwrap();
        assert!(!m.has_code_writes());

        // Unpinning a non-pinned line does not log.
        m.unpin_fetch(CODE_BASE + 24);
        assert!(!m.has_code_writes());

        // Overflow degrades to a flush-all signal and stays sticky until
        // drained.
        for i in 0..40u32 {
            m.write_u32(CODE_BASE + i * 4, nop).unwrap();
        }
        assert!(m.has_code_writes());
        let mut calls = 0;
        assert!(m.drain_code_writes(|_, _| calls += 1));
        assert_eq!(calls, 0, "overflow drain reports no ranges");
        assert!(!m.has_code_writes());
    }

    #[test]
    fn image_layout() {
        let img = Image {
            code: vec![0; 10],
            data: vec![1, 2, 3],
            entry: CODE_BASE,
        };
        assert_eq!(img.data_base(), 0x100 + 40);
        assert_eq!(img.static_end(), 0x100 + 44); // 43 rounded up
        assert_eq!(img.addr_of(2), 0x108);
    }

    #[test]
    fn alloc_basic_and_reuse() {
        let mut a = Allocator::new(0x1000, 0x2000);
        let p1 = a.malloc(16);
        let p2 = a.malloc(16);
        assert_ne!(p1, 0);
        assert_ne!(p2, 0);
        assert_ne!(p1, p2);
        a.free(p1).unwrap();
        let p3 = a.malloc(8);
        assert_eq!(p3, p1, "freed block is reused first-fit");
    }

    #[test]
    fn alloc_exhaustion_returns_null() {
        let mut a = Allocator::new(0x1000, 0x1040);
        assert_ne!(a.malloc(32), 0);
        assert_ne!(a.malloc(32), 0);
        assert_eq!(a.malloc(8), 0);
    }

    #[test]
    fn double_free_traps() {
        let mut a = Allocator::new(0x1000, 0x2000);
        let p = a.malloc(8);
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(Trap::HeapFault { addr: p }));
    }

    #[test]
    fn wild_free_traps() {
        let mut a = Allocator::new(0x1000, 0x2000);
        let _ = a.malloc(8);
        assert!(a.free(0x1004).is_err());
        assert!(a.free(0xBEEF).is_err());
    }

    #[test]
    fn coalescing_allows_big_realloc() {
        let mut a = Allocator::new(0x1000, 0x1080);
        let p1 = a.malloc(64);
        let p2 = a.malloc(64);
        assert_ne!(p2, 0);
        assert_eq!(a.malloc(8), 0, "arena full");
        a.free(p1).unwrap();
        a.free(p2).unwrap();
        // After coalescing both halves, a 128-byte block must fit again.
        assert_ne!(a.malloc(128), 0);
    }

    #[test]
    fn owns_tracks_payload() {
        let mut a = Allocator::new(0x1000, 0x2000);
        let p = a.malloc(16);
        assert!(a.owns(p));
        assert!(a.owns(p + 15));
        assert!(!a.owns(p + 16));
        a.free(p).unwrap();
        assert!(!a.owns(p));
    }
}
